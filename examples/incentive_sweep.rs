//! Explore how misreporting changes one household's utility — a compact
//! version of the paper's Figure 7 experiment.
//!
//! The subject's true preference is the narrow evening window (18, 20, 2);
//! we compare the truthful report against characteristic misreports:
//! shifting away (forces defection), narrowing is impossible (zero slack),
//! and over-widening (gambles on an allocation outside the truth).
//!
//! Run with: `cargo run --example incentive_sweep`

use enki::prelude::*;

fn main() -> Result<(), enki::Error> {
    let config = IncentiveConfig {
        n: 25,
        repetitions: 20,
        ..IncentiveConfig::default()
    };
    let outcome = run_incentive(&config)?;

    let lookup = |b: u8, e: u8| -> f64 {
        outcome
            .points
            .iter()
            .find(|p| p.report.begin() == b && p.report.end() == e)
            .map(|p| p.utility.mean)
            .expect("candidate is inside the sweep")
    };

    println!("Mean utility of household 1 per reported interval (truth = (18, 20, 2)):\n");
    let cases = [
        (18u8, 20u8, "the truth"),
        (18, 21, "slightly wider (gamble)"),
        (18, 24, "much wider (big gamble)"),
        (16, 18, "shifted before the truth (always defects)"),
        (20, 22, "shifted after the truth (always defects)"),
        (16, 24, "the whole tolerated window"),
    ];
    for (b, e, label) in cases {
        println!("  report ({b:>2}, {e:>2}): {:>8.2}   {label}", lookup(b, e));
    }

    println!(
        "\nBest response: {} with mean utility {:.2}",
        outcome.best_report,
        outcome
            .points
            .iter()
            .map(|p| p.utility.mean)
            .fold(f64::NEG_INFINITY, f64::max)
    );
    println!("Truthful utility: {:.2}", outcome.truthful_utility);

    // Reports disjoint from the truth are always strictly worse: the
    // allocation can never satisfy the true preference and the defection
    // penalty kicks in.
    assert!(lookup(16, 18) < outcome.truthful_utility);
    assert!(lookup(20, 22) < outcome.truthful_utility);
    println!("\nMisreports outside the truth are strictly dominated — Enki's deterrent works.");
    Ok(())
}
