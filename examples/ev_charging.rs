//! Electric-vehicle overnight charging — the paper's motivating
//! application (§III: "One possible application could be charging electric
//! vehicles").
//!
//! A block of 30 EV owners comes home in the evening and must each charge
//! for a few hours before their morning departure. Without coordination
//! everyone plugs in on arrival and the transformer sees a huge spike;
//! with Enki the center spreads the charging through the night, flexible
//! owners (long plug-in windows) pay less, and the neighborhood's
//! quadratic wholesale bill drops.
//!
//! Run with: `cargo run --example ev_charging`

use enki::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> Result<(), enki::Error> {
    let mut rng = StdRng::seed_from_u64(7);
    let enki = Enki::new(EnkiConfig::builder().rate(7.0).build()?); // 7 kW chargers

    // Each owner arrives between 17:00 and 21:00 and needs 2-4 hours of
    // charge before midnight-ish; commuters with late departures tolerate
    // any slot up to midnight.
    let mut reports = Vec::new();
    let mut arrivals = Vec::new();
    for i in 0..30u32 {
        let arrival = rng.random_range(17..=20u8);
        let need = rng.random_range(2..=4u8);
        let deadline = rng.random_range((arrival + need).max(22)..=24u8);
        reports.push(Report::new(
            HouseholdId::new(i),
            Preference::new(arrival, deadline, need)?,
        ));
        arrivals.push(arrival);
    }

    // Baseline: everyone charges on arrival (no mechanism).
    let naive: Vec<Interval> = reports
        .iter()
        .zip(&arrivals)
        .map(|(r, &a)| Interval::with_duration(a, r.preference.duration()))
        .collect::<Result<_, _>>()?;
    let baseline = enki.proportional_settlement(&naive)?;

    // Enki: coordinated charging.
    let outcome = enki.allocate(&reports, &mut rng)?;
    let consumption: Vec<Interval> =
        outcome.assignments.iter().map(|a| a.window).collect();
    let settlement = enki.settle(&reports, &outcome, &consumption)?;

    println!("EV charging for 30 vehicles (7 kW chargers)\n");
    println!(
        "  plug-in-on-arrival: peak {:>6.1} kW, cost ${:>8.2}",
        baseline.load.peak(),
        baseline.total_cost
    );
    println!(
        "  Enki coordination:  peak {:>6.1} kW, cost ${:>8.2}",
        settlement.load.peak(),
        settlement.total_cost
    );
    println!(
        "  peak reduction: {:.0}%, cost reduction: {:.0}%\n",
        100.0 * (1.0 - settlement.load.peak() / baseline.load.peak()),
        100.0 * (1.0 - settlement.total_cost / baseline.total_cost)
    );

    // Hourly load picture.
    println!("  hour | arrival-rush load | Enki load");
    for h in 16..24u8 {
        println!(
            "    {:>2} | {:>17.1} | {:>9.1}",
            h,
            baseline.load.at(h),
            settlement.load.at(h)
        );
    }

    assert!(settlement.load.peak() <= baseline.load.peak());
    assert!(settlement.total_cost <= baseline.total_cost + 1e-9);

    // Flexibility discount: compare the widest and tightest windows.
    let most_flexible = settlement
        .entries
        .iter()
        .max_by(|a, b| a.flexibility.total_cmp(&b.flexibility))
        .expect("non-empty");
    let least_flexible = settlement
        .entries
        .iter()
        .filter(|e| e.consumption.len() == most_flexible.consumption.len())
        .min_by(|a, b| a.flexibility.total_cmp(&b.flexibility))
        .expect("non-empty");
    println!(
        "\n  flexibility discount (same energy): {} pays ${:.2}, {} pays ${:.2}",
        most_flexible.household,
        most_flexible.payment,
        least_flexible.household,
        least_flexible.payment
    );
    Ok(())
}
