//! Replays the §VII user study and prints one subject's round-by-round
//! experience plus the headline analyses.
//!
//! Run with: `cargo run --example user_study`

use enki::prelude::*;

fn main() -> Result<(), enki::Error> {
    let outcome = run_user_study(&StudyConfig::default())?;

    // Watch subject 7 (one of the two who "understood the game well") learn.
    let p7 = outcome
        .logs
        .iter()
        .find(|l| l.subject == 7)
        .expect("subject 7 played");
    println!("Subject P7 ({:?}), treatment {}:\n", p7.model, p7.treatment);
    println!("  round | truth      | submitted  | allocated | defected | flex | score");
    for r in &p7.rounds {
        println!(
            "   {:>4} | {} | {} | {}  | {:>8} | {:.2} | {:>5.1}",
            r.round,
            r.truth,
            r.submission,
            r.allocation,
            r.defected,
            r.flexibility_ratio,
            r.score
        );
    }

    let rates = outcome.table2_defection_rates();
    println!(
        "\nAverage defection rate (20 subjects): overall {:.3}, initial {:.3}, cooperate {:.3}",
        rates.overall, rates.initial, rates.cooperate
    );

    let fig8 = outcome.fig8_true_interval();
    println!(
        "True-interval selecting ratio rises from {:.3} (Initial) to {:.3} (Cooperate), p = {:.4}",
        fig8.mean_initial_all, fig8.mean_cooperate_all, fig8.test.p_value
    );

    // P7's Cooperate-stage behaviour is perfectly truthful.
    let cooperate_truthful = p7
        .rounds
        .iter()
        .filter(|r| r.round > 8)
        .all(|r| r.chose_exact_truth);
    assert!(cooperate_truthful);
    println!("\nP7 sticks to the exact true interval once it understands the game.");
    Ok(())
}
