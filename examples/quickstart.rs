//! Quickstart: one day in an Enki neighborhood.
//!
//! Five households report tomorrow's consumption windows, the center
//! allocates, everyone consumes, and the day is settled: flexible
//! households pay less, the center never runs a deficit.
//!
//! Run with: `cargo run --example quickstart`

use enki::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), enki::Error> {
    // The paper's parameters: σ = 0.3, k = 1, ξ = 1.2, r = 2 kW.
    let enki = Enki::new(EnkiConfig::default());

    // Five households declare (begin, end, duration): "I need `duration`
    // hours of power somewhere inside [begin, end)".
    let reports = vec![
        Report::new(HouseholdId::new(0), Preference::new(18, 20, 2)?), // rigid
        Report::new(HouseholdId::new(1), Preference::new(18, 24, 2)?), // flexible
        Report::new(HouseholdId::new(2), Preference::new(17, 23, 3)?),
        Report::new(HouseholdId::new(3), Preference::new(19, 22, 1)?),
        Report::new(HouseholdId::new(4), Preference::new(16, 24, 2)?), // most flexible
    ];

    let mut rng = StdRng::seed_from_u64(42);
    let outcome = enki.allocate(&reports, &mut rng)?;

    println!("Suggested allocations (least flexible placed first):");
    for (report, assignment) in reports.iter().zip(&outcome.assignments) {
        println!(
            "  {}: reported {} -> allocated {}",
            report.household, report.preference, assignment.window
        );
    }
    println!(
        "\nPlanned load peak: {:.1} kWh (PAR {:.2})",
        outcome.planned_load.peak(),
        outcome.planned_load.peak_to_average()
    );

    // Everyone follows the plan; settle the day.
    let consumption: Vec<Interval> =
        outcome.assignments.iter().map(|a| a.window).collect();
    let settlement = enki.settle(&reports, &outcome, &consumption)?;

    println!("\nSettlement:");
    for entry in &settlement.entries {
        println!(
            "  {}: flexibility {:.3}, social cost {:.3}, pays ${:.2}",
            entry.household, entry.flexibility, entry.social_cost.psi, entry.payment
        );
    }
    println!(
        "\nNeighborhood cost ${:.2}, revenue ${:.2}, center utility ${:.2} (>= 0: Theorem 1)",
        settlement.total_cost, settlement.revenue, settlement.center_utility
    );

    // The most flexible household pays less than the rigid one.
    let rigid = settlement.entry_for(HouseholdId::new(0)).expect("settled");
    let flexible = settlement.entry_for(HouseholdId::new(4)).expect("settled");
    assert!(flexible.payment < rigid.payment);
    println!("\nFlexibility pays: h4 (${:.2}) < h0 (${:.2})", flexible.payment, rigid.payment);
    Ok(())
}
