//! The paper's Figure 1 architecture, end to end: household ECC agents and
//! the neighborhood controller exchanging protocol messages over a lossy
//! local network, with retries, re-broadcasts, and smart-meter fallbacks.
//!
//! Run with: `cargo run --example distributed_day`

use enki::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2017);
    let config = ProfileConfig::default();

    // Twelve ECC agents; their reports come from the learned usage pattern
    // once the predictor has history, widened by a 2-hour margin.
    let households: Vec<HouseholdAgent> = (0..12)
        .map(|i| {
            HouseholdAgent::new(
                HouseholdId::new(i),
                UsageProfile::generate(&mut rng, &config),
                TruthSource::Wide,
                ReportStrategy::TruthfulWide,
                ReportSource::Ecc { margin: 2 },
            )
        })
        .collect();

    let center = CenterAgent::new(
        Enki::default(),
        (0..12).map(HouseholdId::new).collect(),
        DayPlan::default(),
        2017,
    );

    // A 20%-loss network: the protocol's retries and re-broadcasts must
    // carry the day.
    let network = SimNetwork::new(NetworkConfig::lossy(0.2), 2017);
    let mut runtime = Runtime::new(network, center, households);
    runtime.run_days(7, 100);

    println!("One week over a 20%-loss network:\n");
    for record in runtime.records() {
        let st = record.settlement.as_ref();
        println!(
            "  day {}: {} participants, {} lost reports, {} lost readings, cost ${:.2}, center +${:.2}",
            record.day,
            record.participants.len(),
            record.missing_reports.len(),
            record.missing_readings.len(),
            st.map(|s| s.total_cost).unwrap_or(0.0),
            st.map(|s| s.center_utility).unwrap_or(0.0),
        );
    }

    let stats = runtime.network_stats();
    println!(
        "\nnetwork: {} sent, {} delivered, {} dropped ({:.0}% loss)",
        stats.sent,
        stats.delivered,
        stats.dropped,
        100.0 * stats.dropped as f64 / stats.sent as f64
    );

    // Every settled day is budget balanced despite the chaos.
    assert!(runtime
        .records()
        .iter()
        .filter_map(|r| r.settlement.as_ref())
        .all(|s| s.center_utility >= -1e-9));
    println!("\nEvery settled day stayed budget balanced (Theorem 1 under packet loss).");

    // The same protocol on real threads (reliable channels).
    let mut rng = StdRng::seed_from_u64(7);
    let specs: Vec<ThreadedHousehold> = (0..8)
        .map(|i| ThreadedHousehold {
            id: HouseholdId::new(i),
            profile: UsageProfile::generate(&mut rng, &config),
            truth_source: TruthSource::Wide,
            strategy: ReportStrategy::TruthfulWide,
            fault: ThreadedFault::None,
        })
        .collect();
    let days = run_threaded_days(
        Enki::default(),
        specs,
        1,
        7,
        std::time::Duration::from_secs(5),
    )
    .expect("threaded day completes");
    println!(
        "\nThreaded deployment: {} households settled concurrently, cost ${:.2}.",
        days[0].settlement.entries.len(),
        days[0].settlement.total_cost
    );
}
