//! The §III multi-appliance extension: households with several shiftable
//! appliances and a nonshiftable base load, settled with the
//! [`MultiEnki`] mechanism.
//!
//! Run with: `cargo run --example smart_home`

use enki::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), enki::Error> {
    let enki = MultiEnki::new(EnkiConfig::default());

    // Three smart homes; every home has a fridge (base load), an EV, and
    // a dishwasher or laundry machine.
    let mut fridge = LoadProfile::new();
    fridge.add_window(Interval::new(0, 24)?, 0.15);

    let reports = vec![
        MultiReport::new(
            HouseholdId::new(0),
            vec![
                Appliance::new("EV charger", Preference::new(18, 24, 3)?, 7.0)?,
                Appliance::new("dishwasher", Preference::new(19, 23, 1)?, 1.5)?,
            ],
            fridge,
        )?,
        MultiReport::new(
            HouseholdId::new(1),
            vec![
                Appliance::new("EV charger", Preference::new(17, 24, 4)?, 7.0)?,
                Appliance::new("laundry", Preference::new(8, 20, 2)?, 2.0)?,
            ],
            fridge,
        )?,
        MultiReport::new(
            HouseholdId::new(2),
            vec![Appliance::new("heat pump boost", Preference::new(16, 22, 2)?, 3.0)?],
            fridge,
        )?,
    ];

    let mut rng = StdRng::seed_from_u64(11);
    let allocation = enki.allocate(&reports, &mut rng)?;

    println!("Suggested appliance schedules:");
    for (report, assignment) in reports.iter().zip(&allocation.assignments) {
        println!("  {}:", report.household);
        for (appliance, window) in report.appliances.iter().zip(&assignment.windows) {
            println!(
                "    {:<16} {} kW for {}h -> {}",
                appliance.label,
                appliance.rate,
                appliance.preference.duration(),
                window
            );
        }
    }
    println!(
        "\nPlanned peak {:.1} kWh (cost ${:.2})",
        allocation.planned_load.peak(),
        allocation.planned_cost
    );

    // Everyone follows the plan; settle the day.
    let consumption: Vec<Vec<Interval>> = allocation
        .assignments
        .iter()
        .map(|a| a.windows.clone())
        .collect();
    let settlement = enki.settle(&reports, &allocation, &consumption)?;

    println!("\nBills (base + shiftable):");
    for entry in &settlement.entries {
        println!(
            "  {}: ${:.2} = ${:.2} base + ${:.2} shiftable (flexibility {:.3})",
            entry.household,
            entry.payment,
            entry.base_payment,
            entry.shiftable_payment,
            entry.flexibility
        );
    }
    println!(
        "\nCenter utility ${:.2} (>= 0: the budget-balance guarantee survives the extension)",
        settlement.center_utility
    );
    assert!(settlement.center_utility >= 0.0);
    Ok(())
}
