//! Property-based integration tests of the mechanism's theorems.
//!
//! Theorem 1 (ex ante budget balance), the normalization bounds behind
//! Eq. 6, and structural invariants of the allocate → settle pipeline are
//! checked over arbitrary neighborhoods.

use enki::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a legal preference (begin, end, duration).
fn preference() -> impl Strategy<Value = Preference> {
    (0u8..23, 1u8..=4)
        .prop_flat_map(|(begin, duration)| {
            let max_begin = 24 - duration;
            let begin = begin.min(max_begin);
            ((begin + duration)..=24u8)
                .prop_map(move |end| Preference::new(begin, end, duration).unwrap())
        })
}

/// Strategy: a neighborhood of 1–20 reports.
fn reports() -> impl Strategy<Value = Vec<Report>> {
    proptest::collection::vec(preference(), 1..20).prop_map(|prefs| {
        prefs
            .into_iter()
            .enumerate()
            .map(|(i, p)| Report::new(HouseholdId::new(i as u32), p))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: for any neighborhood and any consumption behaviour the
    /// center's utility is exactly (ξ−1)·κ(ω) ≥ 0.
    #[test]
    fn budget_balance_holds_for_any_behaviour(
        rs in reports(),
        seed in any::<u64>(),
        defect_mask in any::<u32>(),
        xi in 1.0f64..3.0,
    ) {
        let enki = Enki::new(EnkiConfig::builder().xi(xi).build().unwrap());
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = enki.allocate(&rs, &mut rng).unwrap();
        // Some households defect by sliding their window inside the report.
        let consumption: Vec<Interval> = outcome
            .assignments
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let pref = rs[i].preference;
                if defect_mask & (1 << (i % 32)) != 0 && pref.slack() > 0 {
                    let d = (a.window.begin() - pref.begin() + 1) % (pref.slack() + 1);
                    pref.window_at_deferment(d).unwrap()
                } else {
                    a.window
                }
            })
            .collect();
        let st = enki.settle(&rs, &outcome, &consumption).unwrap();
        prop_assert!(st.center_utility >= -1e-9);
        prop_assert!((st.center_utility - (xi - 1.0) * st.total_cost).abs() < 1e-6);
        prop_assert!((st.revenue - xi * st.total_cost).abs() < 1e-6);
    }

    /// Every allocation respects its report: correct duration, inside the
    /// reported window.
    #[test]
    fn allocations_respect_reports(rs in reports(), seed in any::<u64>()) {
        let enki = Enki::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = enki.allocate(&rs, &mut rng).unwrap();
        for (r, a) in rs.iter().zip(&outcome.assignments) {
            prop_assert!(r.preference.validate_window(a.window).is_ok());
        }
    }

    /// Normalized scores stay in [0.5, 1.5] and Ψ in [k/3, 3k].
    #[test]
    fn social_cost_scores_are_bounded(rs in reports(), seed in any::<u64>()) {
        let enki = Enki::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = enki.allocate(&rs, &mut rng).unwrap();
        let consumption: Vec<Interval> =
            outcome.assignments.iter().map(|a| a.window).collect();
        let st = enki.settle(&rs, &outcome, &consumption).unwrap();
        for e in &st.entries {
            let sc = e.social_cost;
            prop_assert!((0.5..=1.5).contains(&sc.normalized_flexibility));
            prop_assert!((0.5..=1.5).contains(&sc.normalized_defection));
            prop_assert!(sc.psi >= 1.0 / 3.0 - 1e-9 && sc.psi <= 3.0 + 1e-9);
            prop_assert!(e.payment >= 0.0);
        }
    }

    /// Payments sum to ξ·κ(ω) regardless of scores (Eq. 7 is a share rule).
    #[test]
    fn payments_always_sum_to_scaled_cost(rs in reports(), seed in any::<u64>()) {
        let enki = Enki::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = enki.allocate(&rs, &mut rng).unwrap();
        let consumption: Vec<Interval> =
            outcome.assignments.iter().map(|a| a.window).collect();
        let st = enki.settle(&rs, &outcome, &consumption).unwrap();
        let total: f64 = st.entries.iter().map(|e| e.payment).sum();
        prop_assert!((total - 1.2 * st.total_cost).abs() < 1e-6);
    }

    /// Cooperating households never carry a defection score, and their
    /// overlap is exactly 1.
    #[test]
    fn cooperators_have_zero_defection(rs in reports(), seed in any::<u64>()) {
        let enki = Enki::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = enki.allocate(&rs, &mut rng).unwrap();
        let consumption: Vec<Interval> =
            outcome.assignments.iter().map(|a| a.window).collect();
        let st = enki.settle(&rs, &outcome, &consumption).unwrap();
        for e in &st.entries {
            prop_assert!(!e.defected);
            prop_assert_eq!(e.defection, 0.0);
            prop_assert_eq!(e.overlap, 1.0);
        }
    }

    /// The realized load profile of a settlement equals the profile
    /// rebuilt from its consumption windows.
    #[test]
    fn settlement_load_is_consistent(rs in reports(), seed in any::<u64>()) {
        let enki = Enki::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = enki.allocate(&rs, &mut rng).unwrap();
        let consumption: Vec<Interval> =
            outcome.assignments.iter().map(|a| a.window).collect();
        let st = enki.settle(&rs, &outcome, &consumption).unwrap();
        let rebuilt = LoadProfile::from_windows(&consumption, 2.0);
        prop_assert_eq!(st.load, rebuilt);
        let expected_energy: f64 =
            consumption.iter().map(|w| f64::from(w.len()) * 2.0).sum();
        prop_assert!((st.load.total() - expected_energy).abs() < 1e-9);
    }
}

/// The §III multi-appliance extension keeps budget balance (Theorem 1
/// survives the extension) for arbitrary cooperative neighborhoods.
mod multi_appliance {
    use super::*;
    use enki_core::appliances::{Appliance, MultiEnki, MultiReport};

    fn appliance() -> impl Strategy<Value = Appliance> {
        (super::preference(), 0.5f64..8.0)
            .prop_map(|(p, rate)| Appliance::new("job", p, rate).unwrap())
    }

    fn multi_reports() -> impl Strategy<Value = Vec<MultiReport>> {
        proptest::collection::vec(
            (proptest::collection::vec(appliance(), 1..4), 0.0f64..0.5),
            1..8,
        )
        .prop_map(|households| {
            households
                .into_iter()
                .enumerate()
                .map(|(i, (appliances, base_rate))| {
                    let mut base = LoadProfile::new();
                    if base_rate > 0.0 {
                        base.add_window(Interval::full_day(), base_rate);
                    }
                    MultiReport::new(HouseholdId::new(i as u32), appliances, base).unwrap()
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn multi_appliance_budget_balance(reports in multi_reports(), seed in any::<u64>()) {
            let enki = MultiEnki::new(EnkiConfig::default());
            let mut rng = StdRng::seed_from_u64(seed);
            let allocation = enki.allocate(&reports, &mut rng).unwrap();
            let consumption: Vec<Vec<Interval>> = allocation
                .assignments
                .iter()
                .map(|a| a.windows.clone())
                .collect();
            let st = enki.settle(&reports, &allocation, &consumption).unwrap();
            prop_assert!(st.center_utility >= -1e-6);
            prop_assert!((st.revenue - 1.2 * st.total_cost).abs() < 1e-6 * (1.0 + st.total_cost));
            let paid: f64 = st.entries.iter().map(|e| e.payment).sum();
            prop_assert!((paid - st.revenue).abs() < 1e-6 * (1.0 + st.revenue));
            for e in &st.entries {
                prop_assert!(!e.defected);
                prop_assert!(e.payment >= -1e-9);
                prop_assert!(e.base_payment >= -1e-9);
            }
        }
    }
}
