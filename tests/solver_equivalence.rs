//! Cross-solver integration tests: the branch-and-bound optimum agrees
//! with exhaustive enumeration, lower-bounds the greedy allocation, and is
//! never beaten by local search.

use enki::prelude::*;
use enki_solver::brute::brute_force;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_preference() -> impl Strategy<Value = Preference> {
    // Keep windows small so brute force stays cheap.
    (0u8..20, 1u8..=3, 0u8..=3).prop_map(|(begin, duration, slack)| {
        let begin = begin.min(24 - duration - slack);
        Preference::new(begin, begin + duration + slack, duration).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The exact solver matches brute force on every random instance.
    #[test]
    fn branch_and_bound_matches_brute_force(
        prefs in proptest::collection::vec(small_preference(), 1..6),
    ) {
        let problem = AllocationProblem::new(prefs, 2.0, 0.3).unwrap();
        let exact = BranchAndBound::new().solve(&problem).unwrap();
        let brute = brute_force(&problem).unwrap();
        prop_assert!(exact.proven_optimal);
        prop_assert!(
            (exact.solution.objective - brute.objective).abs() < 1e-9,
            "B&B {} != brute {}",
            exact.solution.objective,
            brute.objective
        );
    }

    /// The optimum lower-bounds Enki's greedy allocation (the gap is what
    /// Figures 4-5 measure).
    #[test]
    fn optimum_lower_bounds_greedy(
        prefs in proptest::collection::vec(small_preference(), 1..6),
        seed in any::<u64>(),
    ) {
        let problem = AllocationProblem::new(prefs.clone(), 2.0, 0.3).unwrap();
        let exact = BranchAndBound::new().solve(&problem).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let greedy =
            greedy_allocation(&prefs, 2.0, &QuadraticPricing::default(), &mut rng).unwrap();
        let greedy_cost = problem.cost_of_windows(&greedy.windows);
        prop_assert!(exact.solution.objective <= greedy_cost + 1e-9);
    }

    /// Local search never reports a better-than-optimal objective, and its
    /// solutions are feasible.
    #[test]
    fn local_search_is_feasible_and_bounded(
        prefs in proptest::collection::vec(small_preference(), 1..6),
        seed in any::<u64>(),
    ) {
        let problem = AllocationProblem::new(prefs, 2.0, 0.3).unwrap();
        let exact = BranchAndBound::new().solve(&problem).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let local = LocalSearch::new().solve(&problem, 3, &mut rng).unwrap();
        prop_assert!(local.objective >= exact.solution.objective - 1e-9);
        for (p, w) in problem.preferences().iter().zip(&local.windows) {
            prop_assert!(p.validate_window(*w).is_ok());
        }
    }

    /// The solver's reported objective always matches a recomputation from
    /// its windows.
    #[test]
    fn reported_objective_is_recomputable(
        prefs in proptest::collection::vec(small_preference(), 1..6),
    ) {
        let problem = AllocationProblem::new(prefs, 2.0, 0.3).unwrap();
        let exact = BranchAndBound::new().solve(&problem).unwrap();
        let recomputed = problem.cost_of_windows(&exact.solution.windows);
        prop_assert!((recomputed - exact.solution.objective).abs() < 1e-9);
    }
}

/// The paper's tractability claim in miniature: greedy cost is within a
/// modest constant of optimal on evening-peaked workloads.
#[test]
fn greedy_approximation_quality_on_paper_workloads() {
    use enki_sim::prelude::*;
    let config = ProfileConfig::default();
    let mut worst_ratio: f64 = 1.0;
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let prefs: Vec<Preference> = (0..12)
            .map(|_| UsageProfile::generate(&mut rng, &config).wide())
            .collect();
        let problem = AllocationProblem::new(prefs.clone(), 2.0, 0.3).unwrap();
        let exact = BranchAndBound::new().solve(&problem).unwrap();
        let greedy =
            greedy_allocation(&prefs, 2.0, &QuadraticPricing::default(), &mut rng).unwrap();
        let ratio = problem.cost_of_windows(&greedy.windows) / exact.solution.objective;
        worst_ratio = worst_ratio.max(ratio);
    }
    assert!(
        worst_ratio < 1.25,
        "greedy within 25% of optimal (worst ratio {worst_ratio:.3})"
    );
}
