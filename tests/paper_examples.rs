//! End-to-end reproductions of the paper's worked examples (§IV-B) and
//! theorem scenarios (§V), run through the full public API.

use enki::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn reports_of(prefs: &[(u8, u8, u8)]) -> Vec<Report> {
    prefs
        .iter()
        .enumerate()
        .map(|(i, &(b, e, v))| {
            Report::new(HouseholdId::new(i as u32), Preference::new(b, e, v).unwrap())
        })
        .collect()
}

fn cooperate(enki: &Enki, reports: &[Report], seed: u64) -> Settlement {
    let mut rng = StdRng::seed_from_u64(seed);
    let outcome = enki.allocate(reports, &mut rng).unwrap();
    let consumption: Vec<Interval> =
        outcome.assignments.iter().map(|a| a.window).collect();
    enki.settle(reports, &outcome, &consumption).unwrap()
}

/// Example 1: identical true preferences ⇒ equal payments.
#[test]
fn example1_equal_preferences_equal_payments() {
    let enki = Enki::default();
    let rs = reports_of(&[(18, 20, 1), (18, 20, 1), (18, 20, 1)]);
    let st = cooperate(&enki, &rs, 1);
    for pair in st.entries.windows(2) {
        assert!((pair[0].payment - pair[1].payment).abs() < 1e-9);
    }
}

/// Example 2: A's narrower truthful interval ⇒ A pays more; the paper's
/// worked numbers (N_B = 2.5, f_B = 0.8) hold.
#[test]
fn example2_narrow_interval_pays_more() {
    let enki = Enki::default();
    let rs = reports_of(&[(18, 19, 1), (18, 20, 1), (18, 20, 1)]);
    let st = cooperate(&enki, &rs, 2);
    assert!((st.entries[1].flexibility - 0.8).abs() < 1e-12);
    assert!(st.entries[0].payment > st.entries[1].payment);
    assert!((st.entries[1].payment - st.entries[2].payment).abs() < 1e-9);
}

/// Example 3 / Figure 2: the off-peak household A is most flexible, never
/// causes the peak, and pays less.
#[test]
fn example3_off_peak_household_avoids_peak_and_pays_less() {
    let enki = Enki::default();
    let rs = reports_of(&[(16, 18, 2), (18, 21, 2), (18, 21, 2)]);
    for seed in 0..10 {
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = enki.allocate(&rs, &mut rng).unwrap();
        // A keeps (16, 18) and is never at the peak hour.
        assert_eq!(
            outcome.assignments[0].window,
            Interval::new(16, 18).unwrap()
        );
        let peak_hour = outcome.planned_load.peak_hour().unwrap();
        assert!(!outcome.assignments[0].window.contains_slot(peak_hour));
        let consumption: Vec<Interval> =
            outcome.assignments.iter().map(|a| a.window).collect();
        let st = enki.settle(&rs, &outcome, &consumption).unwrap();
        assert!(st.entries[0].payment < st.entries[1].payment);
        assert!(st.entries[0].payment < st.entries[2].payment);
    }
}

/// Example 4 / Figure 3: B defects onto A's hour and pays more.
#[test]
fn example4_defector_pays_more() {
    let enki = Enki::default();
    let rs = reports_of(&[(18, 20, 1), (18, 20, 1)]);
    let mut rng = StdRng::seed_from_u64(4);
    let outcome = enki.allocate(&rs, &mut rng).unwrap();
    let a_hour = outcome.assignments[0].window;
    let st = enki
        .settle(&rs, &outcome, &[a_hour, a_hour])
        .unwrap();
    assert!(!st.entries[0].defected);
    assert!(st.entries[1].defected);
    assert_eq!(st.entries[1].flexibility, 0.0);
    assert!(st.entries[1].defection > 0.0);
    assert!(st.entries[1].payment > st.entries[0].payment);
}

/// §V-B's Theorem 2 scenario: household A with true preference (18, 20, 2)
/// misreports (14, 20, 2), is allocated the quiet (14, 16), and defects to
/// consume its true (18, 20). With identical consumption in both scenarios,
/// the truthful report yields at least the misreport's utility.
#[test]
fn theorem2_scenario_truth_dominates_equal_consumption_misreport() {
    let enki = Enki::default();
    let truth = Preference::new(18, 20, 2).unwrap();
    let ty = HouseholdType::new(truth, 5.0).unwrap();

    // 30 truthful others packed into the evening (hours 17-23), so the
    // early hours 14-16 are quiet and the wide misreport is allocated
    // there, exactly as the paper's scenario postulates.
    let others: Vec<Preference> = (0..30)
        .map(|i| {
            let begin = 17 + (i % 4) as u8;
            let v = 1 + (i % 3) as u8;
            Preference::new(begin, (begin + v + 1).min(23), v).unwrap()
        })
        .collect();

    let run = |report: Preference, seed: u64| -> f64 {
        let mut rs = vec![Report::new(HouseholdId::new(0), report)];
        for (i, &p) in others.iter().enumerate() {
            rs.push(Report::new(HouseholdId::new(i as u32 + 1), p));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = enki.allocate(&rs, &mut rng).unwrap();
        let consumption: Vec<Interval> = outcome
            .assignments
            .iter()
            .enumerate()
            .map(|(i, a)| {
                if i == 0 {
                    truth.closest_window(a.window) // subject consumes its truth
                } else {
                    a.window
                }
            })
            .collect();
        let st = enki.settle(&rs, &outcome, &consumption).unwrap();
        enki.utility(&ty, &st.entries[0])
    };

    let misreport = Preference::new(14, 20, 2).unwrap();
    let avg = |report: Preference| -> f64 {
        (0..10).map(|s| run(report, s)).sum::<f64>() / 10.0
    };
    let truthful_utility = avg(truth);
    let misreport_utility = avg(misreport);
    assert!(
        truthful_utility >= misreport_utility,
        "truth {truthful_utility} vs misreport {misreport_utility}"
    );
}

/// Theorem 5: the average household utility is higher with Enki than under
/// the proportional no-mechanism baseline.
#[test]
fn theorem5_average_utility_higher_with_enki() {
    use enki_sim::prelude::*;
    let config = ProfileConfig::default();
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let households: Vec<SimHousehold> = (0..15)
            .map(|i| {
                SimHousehold::new(
                    HouseholdId::new(i),
                    UsageProfile::generate(&mut rng, &config),
                    TruthSource::Wide,
                    ReportStrategy::TruthfulWide,
                )
            })
            .collect();
        let nb = SimNeighborhood::new(Enki::default(), households);
        let day = nb.run_day(&mut rng).unwrap();
        let (baseline_utilities, baseline) = nb.run_baseline_day().unwrap();
        let with_enki = day.utilities.iter().sum::<f64>() / 15.0;
        let without = baseline_utilities.iter().sum::<f64>() / 15.0;
        assert!(baseline.total_cost >= day.cost() - 1e-9, "greedy flattens");
        assert!(
            with_enki >= without - 1e-9,
            "seed {seed}: Enki {with_enki} vs baseline {without}"
        );
    }
}

/// Theorem 6: the most flexible household gains at least its baseline
/// utility.
#[test]
fn theorem6_flexible_household_prefers_enki() {
    use enki_sim::prelude::*;
    // Same energy for everyone; household 0 is most flexible.
    let mk = |b: u8, e: u8| {
        UsageProfile::new(
            Preference::new(b, (b + 3).min(e), 2).unwrap(),
            Preference::new(b, e, 2).unwrap(),
            5.0,
        )
        .unwrap()
    };
    let households = vec![
        SimHousehold::new(
            HouseholdId::new(0),
            mk(14, 24), // most flexible
            TruthSource::Wide,
            ReportStrategy::TruthfulWide,
        ),
        SimHousehold::new(HouseholdId::new(1), mk(18, 21), TruthSource::Wide, ReportStrategy::TruthfulWide),
        SimHousehold::new(HouseholdId::new(2), mk(18, 21), TruthSource::Wide, ReportStrategy::TruthfulWide),
        SimHousehold::new(HouseholdId::new(3), mk(19, 22), TruthSource::Wide, ReportStrategy::TruthfulWide),
    ];
    let nb = SimNeighborhood::new(Enki::default(), households);
    let mut rng = StdRng::seed_from_u64(6);
    let day = nb.run_day(&mut rng).unwrap();
    let (baseline_utilities, _) = nb.run_baseline_day().unwrap();
    assert!(
        day.utilities[0] >= baseline_utilities[0] - 1e-9,
        "flexible household: Enki {} vs baseline {}",
        day.utilities[0],
        baseline_utilities[0]
    );
}

/// Theorem 4's counterpoint: Enki is *not* individually rational — a
/// negative utility is possible when the peak is expensive.
#[test]
fn theorem4_negative_utility_is_possible() {
    let enki = Enki::default();
    // Many rigid households stacked on one evening hour: huge κ, small V.
    let rs = reports_of(&[(18, 20, 2); 12]);
    let st = cooperate(&enki, &rs, 7);
    let ty = HouseholdType::new(Preference::new(18, 20, 2).unwrap(), 1.0).unwrap();
    let u = enki.utility(&ty, &st.entries[0]);
    assert!(u < 0.0, "expected a negative utility, got {u}");
}
