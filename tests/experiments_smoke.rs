//! Smoke tests of every experiment runner: the full §VI and §VII
//! pipelines execute end to end at reduced scale and reproduce the
//! paper's qualitative shapes.

use std::time::Duration;

use enki::prelude::*;

#[test]
fn social_welfare_sweep_reproduces_fig4_fig5_fig6_shapes() {
    let config = SocialWelfareConfig {
        populations: vec![5, 15],
        days: 3,
        optimal_time_limit: Duration::from_millis(800),
        seed: 42,
        ..SocialWelfareConfig::default()
    };
    let rows = run_social_welfare(&config).unwrap();
    assert_eq!(rows.len(), 2);

    for row in &rows {
        // Fig. 4 shape: both PARs are modest and close.
        assert!(row.enki_par.mean >= 1.0);
        assert!(row.enki_par.mean <= row.optimal_par.mean * 1.6);
        // Fig. 5 shape: greedy is near-optimal on cost.
        assert!(row.enki_cost.mean >= row.optimal_cost.mean * 0.95 - 1e-9);
        assert!(row.enki_cost.mean <= row.optimal_cost.mean * 1.25 + 1e-9);
        // Fig. 6 shape: the optimal solver is orders of magnitude slower.
        assert!(row.time_ratio() > 1.0);
    }
    // Cost grows with the population.
    assert!(rows[1].enki_cost.mean > rows[0].enki_cost.mean);
}

#[test]
fn incentive_sweep_reproduces_fig7_shape() {
    let config = IncentiveConfig {
        n: 20,
        repetitions: 5,
        seed: 11,
        ..IncentiveConfig::default()
    };
    let out = run_incentive(&config).unwrap();
    let truth = config.subject_truth;

    // Weak incentive compatibility: truth is (close to) the best response.
    let best = out
        .points
        .iter()
        .map(|p| p.utility.mean)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(out.truth_is_best_response(&truth, 0.1 * best.abs().max(1.0)));

    // Reports disjoint from the truth are strictly dominated.
    for p in &out.points {
        if p.report.window().overlap(&truth.window()) == 0 {
            assert!(
                p.utility.mean < out.truthful_utility,
                "disjoint report {} not dominated",
                p.report
            );
        }
    }
}

#[test]
fn user_study_reproduces_table_and_figure_shapes() {
    let outcome = run_user_study(&StudyConfig::default()).unwrap();

    // Table II shape.
    let rates = outcome.table2_defection_rates();
    assert!(rates.overall < 0.5);
    assert!(rates.initial > rates.overall);
    assert!(rates.cooperate < rates.defect);

    // Table III shape: Overall significant, Initial the weakest.
    let tests = outcome.table3_defection_tests();
    let p = |stage: Stage| {
        tests
            .iter()
            .find(|r| r.stage == stage)
            .unwrap()
            .test
            .p_value
    };
    assert!(p(Stage::Overall) < 0.001);
    assert!(p(Stage::Initial) > p(Stage::Overall));

    // Table IV shape: the solo treatment defects less once agents
    // cooperate.
    let (t1, t2) = outcome.table4_treatment_rates();
    assert!(t2.cooperate <= t1.cooperate + 1e-9);

    // Fig. 8 shape.
    let fig8 = outcome.fig8_true_interval();
    assert!(fig8.mean_cooperate_all > fig8.mean_initial_all);
    assert!(fig8.test.p_value < 0.05);

    // Fig. 9 shape.
    let fig9 = outcome.fig9_flexibility();
    assert!(fig9.p7[12..].iter().all(|&f| f == 1.0));
    let early: f64 = fig9.intermediate_mean[..4].iter().sum::<f64>() / 4.0;
    let late: f64 = fig9.intermediate_mean[12..].iter().sum::<f64>() / 4.0;
    assert!(late > early);
}

#[test]
fn ecc_pipeline_feeds_the_mechanism() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // A household's ECC learns its pattern from a week of history, then
    // reports; the mechanism allocates within the predicted window.
    let mut ecc = EccPredictor::new(0.3).unwrap();
    for _ in 0..7 {
        ecc.observe(Interval::new(19, 21).unwrap());
    }
    let predicted = ecc.predict(2, 2).expect("has history");
    assert!(predicted.window().contains(&Interval::new(19, 21).unwrap()));

    let enki = Enki::default();
    let reports = vec![
        Report::new(HouseholdId::new(0), predicted),
        Report::new(HouseholdId::new(1), Preference::new(18, 22, 2).unwrap()),
    ];
    let mut rng = StdRng::seed_from_u64(3);
    let outcome = enki.allocate(&reports, &mut rng).unwrap();
    assert!(predicted.validate_window(outcome.assignments[0].window).is_ok());
}
