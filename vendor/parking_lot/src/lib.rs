//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` with parking_lot's panic-free lock API (no
//! poisoning: a lock held by a panicking thread is simply recovered).

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

/// RAII guard; the lock is released on drop.
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a lock around `value`.
    #[must_use]
    pub fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the lock, returning the inner value.
    #[must_use]
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
