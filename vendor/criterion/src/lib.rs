//! Offline vendored stand-in for `criterion`.
//!
//! A timing-only bench harness with criterion's API shape (`Criterion`,
//! `benchmark_group`, `bench_with_input`, `criterion_group!` /
//! `criterion_main!`). Each benchmark runs a short calibrated loop and
//! prints a mean per-iteration time; there is no statistical analysis,
//! HTML report, or baseline comparison.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The bench context handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Hook kept for API compatibility; CLI arguments are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string() }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the time budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` against one input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id labelled only by a parameter value.
    #[must_use]
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self(parameter.to_string())
    }

    /// An id with a function name and a parameter value.
    #[must_use]
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        Self(format!("{function}/{parameter}"))
    }
}

/// Timing loop driver passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the calibrated iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: run once, scale the iteration count toward ~0.2 s,
    // capped to keep slow benches bounded.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(200);
    let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
    let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / iters as f64;
    println!("bench {label}: {:.3} µs/iter ({iters} iters)", per_iter * 1e6);
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
