//! Offline vendored stand-in for `proptest`.
//!
//! Implements the API subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, `proptest::collection::vec`, [`any`], the [`proptest!`]
//! macro (with optional `#![proptest_config(...)]`), and the
//! `prop_assert*` / `prop_assume!` macros. Cases are generated from a
//! deterministic per-test seed (an FNV-1a hash of the test name), so runs
//! are reproducible. Unlike upstream proptest there is **no shrinking**:
//! a failing case reports its case number and message only.

#![forbid(unsafe_code)]

pub use rand::RngExt as __Rng;

/// Strategy combinators and generation.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, RngExt};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Discards generated values failing the predicate (rejection
        /// sampling with a bounded number of attempts).
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f, reason }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) reason: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn new_value(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates: {}", self.reason);
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$n.new_value(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
        (0 A, 1 B, 2 C, 3 D, 4 E),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    );

    /// Full-range strategy for [`crate::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        pub(crate) _marker: ::std::marker::PhantomData<T>,
    }

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.random::<f64>()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A size specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for vectors of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running the given number of cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!`; it is not counted.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    /// Executes the closure over `config.cases` generated cases.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner.
        #[must_use]
        pub fn new(config: ProptestConfig) -> Self {
            Self { config }
        }

        /// Deterministic per-test seed: FNV-1a over the test name (stable
        /// across processes, unlike `DefaultHasher`).
        fn seed_for(name: &str) -> u64 {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            hash
        }

        /// Runs the property; panics on the first failing case.
        ///
        /// # Panics
        ///
        /// Panics when a case fails or when `prop_assume!` rejects too
        /// many candidate cases.
        pub fn run_named<F>(&mut self, name: &str, body: F)
        where
            F: Fn(&mut StdRng) -> Result<(), TestCaseError>,
        {
            let env_cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse::<u32>().ok());
            let cases = env_cases.unwrap_or(self.config.cases);
            let mut rng = StdRng::seed_from_u64(Self::seed_for(name));
            let mut passed = 0;
            let mut rejected = 0u32;
            while passed < cases {
                match body(&mut rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < cases.saturating_mul(20).max(1_000),
                            "property `{name}`: too many cases rejected by prop_assume! \
                             ({rejected} rejections for {passed} passes)"
                        );
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{name}` failed at case {index}: {msg}",
                            index = passed + 1
                        );
                    }
                }
            }
        }
    }
}

/// Generates an unconstrained value of `T`.
#[must_use]
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any { _marker: std::marker::PhantomData }
}

/// Everything a property test needs.
pub mod prelude {
    pub use crate::any;
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Mirrors upstream proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u8..10, seed in any::<u64>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($config);
                runner.run_named(stringify!($name), |__proptest_rng| {
                    $(
                        let $pat = $crate::strategy::Strategy::new_value(
                            &($strategy),
                            __proptest_rng,
                        );
                    )*
                    #[allow(clippy::redundant_closure_call)]
                    let __proptest_result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __proptest_result
                });
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // No `format!` here: stringified conditions may contain braces.
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    concat!("assertion failed: ", stringify!($cond)).to_string(),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case (it is regenerated, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Reject(
                    concat!("assumption failed: ", stringify!($cond)).to_string(),
                ),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u8> {
        (0u8..10).prop_map(|v| v * 2)
    }

    proptest! {
        #[test]
        fn ranges_generate_in_bounds(x in 3u32..17, y in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn combinators_compose(v in collection::vec(small(), 1..5), z in any::<u64>()) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for item in &v {
                prop_assert!(item % 2 == 0);
            }
            let _ = z;
        }

        #[test]
        fn flat_map_respects_dependency(pair in (1u8..10).prop_flat_map(|n| (Just(n), 0u8..n))) {
            let (n, below) = pair;
            prop_assert!(below < n);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0u8..10) {
                prop_assert!(x < 5, "x = {x} too big");
            }
        }
        inner();
    }
}
