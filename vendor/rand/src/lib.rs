//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! crate re-implements exactly the API subset the workspace uses:
//! [`Rng`] / [`RngExt`], [`SeedableRng`], and [`rngs::StdRng`]. The
//! generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for simulation work and fully deterministic for a given seed,
//! which is the property every seeded test in this repository relies on.
//! It makes no attempt to be stream-compatible with upstream `rand`.

#![forbid(unsafe_code)]

/// A source of randomness: the core trait.
///
/// Implementors only supply the raw generator; the convenience
/// methods live on [`RngExt`], which is blanket-implemented for every
/// `Rng`. Code that only threads a generator through as a bound needs
/// just `Rng`; code that draws values also imports `RngExt`.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience draws on top of [`Rng`], mirroring `rand 0.10`'s
/// `Rng`/`RngExt` split. Blanket-implemented for every generator.
pub trait RngExt: Rng {
    /// Returns a uniformly random value of a supported type.
    ///
    /// Integers cover their whole range; `f64`/`f32` are uniform in
    /// `[0, 1)`; `bool` is a fair coin.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Returns a uniformly random value from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by rejection sampling (no modulo
/// bias).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let offset = uniform_below(rng, span);
                ((self.start as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = uniform_below(rng, span + 1);
                ((start as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let unit: $t = Standard::from_rng(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let unit: $t = Standard::from_rng(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw generator state (for checkpointing).
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`StdRng::state`] output.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0
                .wrapping_add(s3)
                .rotate_left(23)
                .wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(3u8..7);
            assert!((3..7).contains(&v));
            let w = rng.random_range(-3..=3i16);
            assert!((-3..=3).contains(&w));
            let u = rng.random_range(0u64..=0);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn range_distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.random_range(0usize..5)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(9);
        a.next_u64();
        let mut b = StdRng::from_state(a.state());
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
