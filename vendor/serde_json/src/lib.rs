//! Offline vendored stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde` [`Value`] tree as JSON. The
//! API surface matches what the workspace uses: [`to_string`],
//! [`to_string_pretty`], and [`from_str`], with an error type that
//! converts into `std::io::Error` so `?` works in io contexts.

#![forbid(unsafe_code)]

use std::fmt;

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.0)
    }
}

/// Convenience alias mirroring `serde_json::Result`.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Returns an error when the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to indented JSON.
///
/// # Errors
///
/// Returns an error when the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON into a deserializable type.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(input: &str) -> Result<T> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::deserialize_value(&value)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if !v.is_finite() {
                return Err(Error(format!("non-finite float {v} is not valid JSON")));
            }
            // `{:?}` prints the shortest representation that round-trips,
            // always with a decimal point or exponent.
            out.push_str(&format!("{v:?}"));
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("bad \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u escape".to_string()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".to_string()))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);

        let pairs = vec![(1u8, 0.5f64), (2, 1.5)];
        let json = to_string(&pairs).unwrap();
        assert_eq!(from_str::<Vec<(u8, f64)>>(&json).unwrap(), pairs);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = vec![vec![1u8], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn float_fidelity_survives_round_trip() {
        for &x in &[0.1, 1.0 / 3.0, 1e-300, 1.7976931348623157e308] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x, "json = {json}");
        }
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u32>("[1").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<Vec<u8>>("{\"a\":}").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
