//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no network access to crates.io, so this
//! crate provides the API subset the workspace uses: the `Serialize` /
//! `Deserialize` traits (plus `de::DeserializeOwned`) and the derive
//! macros behind the `derive` feature. Instead of upstream serde's
//! visitor-based data model, everything funnels through a simple JSON-like
//! [`Value`] tree; the vendored `serde_json` crate renders and parses it.
//! The wire format is self-consistent (everything this workspace writes,
//! it can read back) but not byte-compatible with upstream serde_json for
//! exotic types (e.g. maps serialize as `[key, value]` pair arrays).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    String(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object value.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array value.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn serialize_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an error when the tree does not match the type's shape.
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

/// Deserialization helpers mirroring `serde::de`.
pub mod de {
    pub use crate::Deserialize;

    /// Owned deserialization marker, as in upstream serde.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Support functions used by the derive macros (not a public API).
pub mod value {
    use super::Value;

    /// A `Null` with `'static` lifetime for missing-field lookups.
    pub static NULL: Value = Value::Null;

    /// Looks up a field, yielding `Null` when absent so `Option` fields
    /// deserialize to `None`.
    #[must_use]
    pub fn field<'a>(fields: &'a [(String, Value)], name: &str) -> &'a Value {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .map_or(&NULL, |(_, v)| v)
    }

    /// For an externally-tagged enum value `{"Variant": inner}`, returns
    /// the inner value when the tag matches.
    #[must_use]
    pub fn variant<'a>(value: &'a Value, name: &str) -> Option<&'a Value> {
        match value {
            Value::Object(fields) if fields.len() == 1 && fields[0].0 == name => {
                Some(&fields[0].1)
            }
            _ => None,
        }
    }

    /// Array element lookup, yielding `Null` when absent.
    #[must_use]
    pub fn element(items: &[Value], index: usize) -> &Value {
        items.get(index).unwrap_or(&NULL)
    }
}

// ---------------------------------------------------------------------
// Serialize implementations
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize_value(&self) -> Value {
        let v = *self as i64;
        if v >= 0 {
            Value::UInt(v as u64)
        } else {
            Value::Int(v)
        }
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for std::time::Duration {
    fn serialize_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.serialize_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    /// Maps serialize as an array of `[key, value]` pairs so non-string
    /// keys round-trip.
    fn serialize_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| {
                    Value::Array(vec![k.serialize_value(), v.serialize_value()])
                })
                .collect(),
        )
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
    )+};
}
impl_serialize_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);

// ---------------------------------------------------------------------
// Deserialize implementations
// ---------------------------------------------------------------------

fn expect<T>(value: &Value, what: &str) -> Result<T, Error> {
    Err(Error::custom(format!("expected {what}, found {value:?}")))
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            #[allow(clippy::cast_possible_truncation, clippy::float_cmp)]
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom(format!("{v} out of range"))),
                    Value::Int(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom(format!("{v} out of range"))),
                    Value::Float(v) if v.fract() == 0.0 => {
                        let as_int = *v as i64;
                        <$t>::try_from(as_int)
                            .map_err(|_| Error::custom(format!("{v} out of range")))
                    }
                    other => expect(other, "an integer"),
                }
            }
        }
    )*};
}
impl_deserialize_int!(u8, u16, u32, i8, i16, i32, i64);

impl Deserialize for u64 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::UInt(v) => Ok(*v),
            Value::Int(v) => u64::try_from(*v)
                .map_err(|_| Error::custom(format!("{v} out of range"))),
            other => expect(other, "an unsigned integer"),
        }
    }
}

impl Deserialize for usize {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        u64::deserialize_value(value).and_then(|v| {
            usize::try_from(v).map_err(|_| Error::custom(format!("{v} out of range")))
        })
    }
}

impl Deserialize for f64 {
    #[allow(clippy::cast_precision_loss)]
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(v) => Ok(*v),
            Value::UInt(v) => Ok(*v as f64),
            Value::Int(v) => Ok(*v as f64),
            other => expect(other, "a number"),
        }
    }
}

impl Deserialize for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        f64::deserialize_value(value).map(|v| v as f32)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(v) => Ok(*v),
            other => expect(other, "a boolean"),
        }
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => expect(other, "a string"),
        }
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let fields = value
            .as_object()
            .ok_or_else(|| Error::custom("expected an object for Duration"))?;
        let secs = u64::deserialize_value(crate::value::field(fields, "secs"))?;
        let nanos = u32::deserialize_value(crate::value::field(fields, "nanos"))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => expect(other, "an array"),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize_value(value)?;
        let len = items.len();
        items.try_into().map_err(|_| {
            Error::custom(format!("expected an array of length {N}, found {len}"))
        })
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let Value::Array(items) = value else {
            return expect(value, "an array of [key, value] pairs");
        };
        let mut out = BTreeMap::new();
        for item in items {
            let Value::Array(pair) = item else {
                return expect(item, "a [key, value] pair");
            };
            if pair.len() != 2 {
                return Err(Error::custom("expected a [key, value] pair"));
            }
            out.insert(K::deserialize_value(&pair[0])?, V::deserialize_value(&pair[1])?);
        }
        Ok(out)
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:expr; $($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let Value::Array(items) = value else {
                    return expect(value, "a tuple array");
                };
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected a tuple of length {}, found {}", $len, items.len()
                    )));
                }
                Ok(($($t::deserialize_value(&items[$n])?,)+))
            }
        }
    )+};
}
impl_deserialize_tuple!(
    (1; 0 A),
    (2; 0 A, 1 B),
    (3; 0 A, 1 B, 2 C),
    (4; 0 A, 1 B, 2 C, 3 D)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u8::deserialize_value(&42u8.serialize_value()).unwrap(), 42);
        assert_eq!(
            i16::deserialize_value(&(-3i16).serialize_value()).unwrap(),
            -3
        );
        assert_eq!(
            f64::deserialize_value(&1.5f64.serialize_value()).unwrap(),
            1.5
        );
        assert_eq!(
            String::deserialize_value(&"hi".serialize_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::deserialize_value(&Value::Null).unwrap(),
            None
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize_value(&v.serialize_value()).unwrap(), v);
        let arr = [1.0f64, 2.0, 3.0];
        assert_eq!(
            <[f64; 3]>::deserialize_value(&arr.serialize_value()).unwrap(),
            arr
        );
        let mut map = BTreeMap::new();
        map.insert(3u32, "three".to_string());
        assert_eq!(
            BTreeMap::<u32, String>::deserialize_value(&map.serialize_value()).unwrap(),
            map
        );
        let pair = (7u8, 2.5f64);
        assert_eq!(
            <(u8, f64)>::deserialize_value(&pair.serialize_value()).unwrap(),
            pair
        );
    }

    #[test]
    fn missing_field_lookup_is_null() {
        let fields = vec![("a".to_string(), Value::UInt(1))];
        assert_eq!(value::field(&fields, "a"), &Value::UInt(1));
        assert_eq!(value::field(&fields, "b"), &Value::Null);
    }
}
