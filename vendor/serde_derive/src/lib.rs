//! Offline vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses — non-generic structs (named,
//! tuple, unit) and enums (unit, tuple, and struct variants) — by parsing
//! the item's token stream directly (no `syn`/`quote`, which are not
//! available offline) and emitting impls of the vendored `serde` traits.
//! Enums use serde's externally-tagged representation; generic types are
//! rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().expect("literal parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips any number of outer attributes (`#[...]`).
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Bracket {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skips a `pub` / `pub(...)` visibility qualifier.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("serde derive: expected identifier, found {other:?}")),
        }
    }

    /// Skips tokens until a top-level comma (angle-bracket aware), then
    /// consumes the comma. Used to skip field types and discriminants.
    fn skip_until_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(tree) = self.peek() {
            if let TokenTree::Punct(p) = tree {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' if angle_depth > 0 => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        self.pos += 1;
                        return;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cursor = Cursor::new(input);
    cursor.skip_attributes();
    cursor.skip_visibility();
    let kind = cursor.expect_ident()?;
    let name = cursor.expect_ident()?;
    if let Some(TokenTree::Punct(p)) = cursor.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde derive (vendored): generic type `{name}` is not supported"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match cursor.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = cursor.peek() else {
                return Err(format!("serde derive: enum `{name}` has no body"));
            };
            let variants = parse_variants(g.stream())?;
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("serde derive: unsupported item kind `{other}`")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Fields {
    let mut cursor = Cursor::new(stream);
    let mut names = Vec::new();
    loop {
        cursor.skip_attributes();
        cursor.skip_visibility();
        match cursor.next() {
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                // Skip the `:` and the type.
                cursor.skip_until_comma();
            }
            _ => break,
        }
    }
    Fields::Named(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cursor = Cursor::new(stream);
    if cursor.peek().is_none() {
        return 0;
    }
    let mut count = 0;
    while cursor.peek().is_some() {
        cursor.skip_until_comma();
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut cursor = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cursor.skip_attributes();
        let Some(TokenTree::Ident(id)) = cursor.peek() else {
            break;
        };
        let name = id.to_string();
        cursor.pos += 1;
        let fields = match cursor.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                cursor.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                cursor.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        cursor.skip_until_comma();
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::serialize_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => {
                    "::serde::Serialize::serialize_value(&self.0)".to_string()
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(variant, fields)| {
                    let tag = format!("::std::string::String::from({variant:?})");
                    match fields {
                        Fields::Unit => format!(
                            "{name}::{variant} => ::serde::Value::String({tag}),"
                        ),
                        Fields::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::serialize_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| {
                                        format!("::serde::Serialize::serialize_value({b})")
                                    })
                                    .collect();
                                format!(
                                    "::serde::Value::Array(::std::vec![{}])",
                                    items.join(", ")
                                )
                            };
                            format!(
                                "{name}::{variant}({binds}) => \
                                 ::serde::Value::Object(::std::vec![({tag}, {inner})]),",
                                binds = binders.join(", ")
                            )
                        }
                        Fields::Named(field_names) => {
                            let entries: Vec<String> = field_names
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::serialize_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{variant} {{ {binds} }} => \
                                 ::serde::Value::Object(::std::vec![({tag}, \
                                 ::serde::Value::Object(::std::vec![{entries}]))]),",
                                binds = field_names.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}",
                arms = arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
            Fields::Named(names) => {
                let inits: Vec<String> = names
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::deserialize_value(\
                             ::serde::value::field(fields, {f:?}))?"
                        )
                    })
                    .collect();
                format!(
                    "let fields = value.as_object().ok_or_else(|| \
                     ::serde::Error::custom(\"expected an object for {name}\"))?;\n\
                     ::std::result::Result::Ok({name} {{ {inits} }})",
                    inits = inits.join(", ")
                )
            }
            Fields::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(\
                 ::serde::Deserialize::deserialize_value(value)?))"
            ),
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::deserialize_value(\
                             ::serde::value::element(items, {i}))?"
                        )
                    })
                    .collect();
                format!(
                    "let items = value.as_array().ok_or_else(|| \
                     ::serde::Error::custom(\"expected an array for {name}\"))?;\n\
                     ::std::result::Result::Ok({name}({inits}))",
                    inits = inits.join(", ")
                )
            }
        },
        Item::Enum { name, variants } => {
            let mut parts = Vec::new();
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| {
                    format!("{v:?} => return ::std::result::Result::Ok({name}::{v}),")
                })
                .collect();
            if !unit_arms.is_empty() {
                parts.push(format!(
                    "if let ::serde::Value::String(tag) = value {{\n\
                         match tag.as_str() {{ {arms} _ => {{}} }}\n\
                     }}",
                    arms = unit_arms.join("\n")
                ));
            }
            for (variant, fields) in variants {
                match fields {
                    Fields::Unit => {}
                    Fields::Tuple(1) => parts.push(format!(
                        "if let ::std::option::Option::Some(inner) = \
                         ::serde::value::variant(value, {variant:?}) {{\n\
                             return ::std::result::Result::Ok({name}::{variant}(\
                             ::serde::Deserialize::deserialize_value(inner)?));\n\
                         }}"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::deserialize_value(\
                                     ::serde::value::element(items, {i}))?"
                                )
                            })
                            .collect();
                        parts.push(format!(
                            "if let ::std::option::Option::Some(inner) = \
                             ::serde::value::variant(value, {variant:?}) {{\n\
                                 let items = inner.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\
                                 \"expected an array for {name}::{variant}\"))?;\n\
                                 return ::std::result::Result::Ok(\
                                 {name}::{variant}({inits}));\n\
                             }}",
                            inits = inits.join(", ")
                        ));
                    }
                    Fields::Named(field_names) => {
                        let inits: Vec<String> = field_names
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::deserialize_value(\
                                     ::serde::value::field(fields, {f:?}))?"
                                )
                            })
                            .collect();
                        parts.push(format!(
                            "if let ::std::option::Option::Some(inner) = \
                             ::serde::value::variant(value, {variant:?}) {{\n\
                                 let fields = inner.as_object().ok_or_else(|| \
                                 ::serde::Error::custom(\
                                 \"expected an object for {name}::{variant}\"))?;\n\
                                 return ::std::result::Result::Ok(\
                                 {name}::{variant} {{ {inits} }});\n\
                             }}",
                            inits = inits.join(", ")
                        ));
                    }
                }
            }
            parts.push(format!(
                "::std::result::Result::Err(::serde::Error::custom(format!(\
                 \"unknown variant for {name}: {{value:?}}\")))"
            ));
            parts.join("\n")
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(value: &::serde::Value) -> \
             ::std::result::Result<Self, ::serde::Error> {{\n\
                 #[allow(unused_variables)]\n\
                 {{ {body} }}\n\
             }}\n\
         }}"
    )
}
