//! Offline vendored stand-in for `crossbeam`.
//!
//! Provides the `channel` API subset this workspace uses (`unbounded`,
//! `Sender`, `Receiver`, `RecvTimeoutError`) backed by `std::sync::mpsc`.
//! Semantics relevant here match crossbeam: unbounded buffering, cloneable
//! senders, `recv` erroring once every sender is dropped.

#![forbid(unsafe_code)]

/// Multi-producer channels.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError};

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; errors only if the receiver is gone.
        ///
        /// # Errors
        ///
        /// Returns the message back when the channel is disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        ///
        /// # Errors
        ///
        /// Returns an error when the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        ///
        /// Returns `Timeout` when nothing arrived in time, or
        /// `Disconnected` when every sender is gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Receives without blocking.
        ///
        /// # Errors
        ///
        /// Returns an error when no message is ready.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn messages_flow_and_disconnect_is_reported() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            drop(tx);
            drop(tx2);
            assert!(rx.recv().is_err());
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
