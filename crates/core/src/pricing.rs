//! Pricing models for the neighborhood's wholesale cost `κ(ω)`.
//!
//! The paper adopts a superlinear (quadratic) hourly price
//! `P_h(l_h) = σ·l_h²` (Eq. 1) and notes that any strictly convex increasing
//! price would serve, citing the two-step piecewise function of
//! Mohsenian-Rad et al. as an alternative. We expose a [`Pricing`] trait with
//! the paper's [`QuadraticPricing`] as the canonical implementation and
//! [`TwoStepPricing`] as the cited alternative, used in ablation benches.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::load::LoadProfile;

/// An hourly convex pricing rule. The neighborhood's daily cost is the sum
/// of hourly costs over a [`LoadProfile`].
pub trait Pricing {
    /// Cost of carrying `load` kWh in a single hour (`P_h(l_h)`).
    fn hourly_cost(&self, load: f64) -> f64;

    /// Daily cost of a load profile (`κ = Σ_h P_h(l_h)`).
    fn cost(&self, profile: &LoadProfile) -> f64 {
        profile.iter().map(|(_, l)| self.hourly_cost(l)).sum()
    }
}

/// The paper's quadratic pricing `P_h(l_h) = σ·l_h²` with `σ > 0`.
///
/// # Examples
///
/// ```
/// # use enki_core::pricing::{Pricing, QuadraticPricing};
/// # fn main() -> Result<(), enki_core::Error> {
/// let pricing = QuadraticPricing::new(0.3)?;
/// assert_eq!(pricing.hourly_cost(4.0), 4.8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuadraticPricing {
    sigma: f64,
}

impl QuadraticPricing {
    /// Creates a quadratic pricing rule with scaling factor `σ`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] unless `σ` is positive and finite.
    #[must_use = "dropping the Result discards the pricing rule and skips sigma validation"]
    pub fn new(sigma: f64) -> Result<Self> {
        if !sigma.is_finite() || sigma <= 0.0 {
            return Err(Error::InvalidConfig {
                parameter: "sigma",
                constraint: "a positive finite number",
            });
        }
        Ok(Self { sigma })
    }

    /// The scaling factor `σ`.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Cost implied by a precomputed `Σ_h l_h²` (`κ = σ·Σl²`). Because the
    /// quadratic price is linear in the sum of squares, a `Σl²` delta from
    /// incremental evaluation (e.g. [`crate::load::IncrementalCost`]) maps
    /// to a cost delta through this same scaling.
    #[must_use]
    pub fn cost_of_sum_of_squares(&self, sum_of_squares: f64) -> f64 {
        self.sigma * sum_of_squares
    }
}

impl Default for QuadraticPricing {
    /// The paper's simulation value `σ = 0.3` (§VI).
    fn default() -> Self {
        Self { sigma: 0.3 }
    }
}

impl Pricing for QuadraticPricing {
    fn hourly_cost(&self, load: f64) -> f64 {
        self.sigma * load * load
    }
}

/// A two-step piecewise-linear convex price: `a·l` up to a threshold load,
/// then a steeper `b` rate for the excess (`b > a`), as suggested by
/// Mohsenian-Rad et al. and mentioned in §III of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoStepPricing {
    base_rate: f64,
    peak_rate: f64,
    threshold: f64,
}

impl TwoStepPricing {
    /// Creates a two-step price: `base_rate` per kWh below `threshold`,
    /// `peak_rate` per kWh above.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] unless
    /// `0 < base_rate < peak_rate` and `threshold ≥ 0`, all finite.
    #[must_use = "dropping the Result discards the pricing rule and skips its validation"]
    pub fn new(base_rate: f64, peak_rate: f64, threshold: f64) -> Result<Self> {
        if !base_rate.is_finite() || base_rate <= 0.0 {
            return Err(Error::InvalidConfig {
                parameter: "base_rate",
                constraint: "a positive finite number",
            });
        }
        if !peak_rate.is_finite() || peak_rate <= base_rate {
            return Err(Error::InvalidConfig {
                parameter: "peak_rate",
                constraint: "finite and strictly greater than base_rate",
            });
        }
        if !threshold.is_finite() || threshold < 0.0 {
            return Err(Error::InvalidConfig {
                parameter: "threshold",
                constraint: "a non-negative finite number",
            });
        }
        Ok(Self {
            base_rate,
            peak_rate,
            threshold,
        })
    }

    /// Base (off-peak) rate per kWh.
    #[must_use]
    pub fn base_rate(&self) -> f64 {
        self.base_rate
    }

    /// Peak rate per kWh charged above the threshold.
    #[must_use]
    pub fn peak_rate(&self) -> f64 {
        self.peak_rate
    }

    /// Hourly load threshold where the peak rate starts.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Pricing for TwoStepPricing {
    fn hourly_cost(&self, load: f64) -> f64 {
        if load <= self.threshold {
            self.base_rate * load
        } else {
            self.base_rate * self.threshold + self.peak_rate * (load - self.threshold)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Interval;

    #[test]
    fn quadratic_rejects_bad_sigma() {
        assert!(QuadraticPricing::new(0.0).is_err());
        assert!(QuadraticPricing::new(-1.0).is_err());
        assert!(QuadraticPricing::new(f64::INFINITY).is_err());
        assert!(QuadraticPricing::new(0.3).is_ok());
    }

    #[test]
    fn quadratic_default_is_paper_sigma() {
        assert_eq!(QuadraticPricing::default().sigma(), 0.3);
    }

    #[test]
    fn quadratic_cost_sums_hours() {
        let pricing = QuadraticPricing::new(0.5).unwrap();
        let mut profile = LoadProfile::new();
        profile.add_window(Interval::new(10, 12).unwrap(), 2.0);
        profile.add_window(Interval::new(11, 13).unwrap(), 2.0);
        // loads: 2, 4, 2 -> 0.5 * (4 + 16 + 4) = 12
        assert!((pricing.cost(&profile) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_rewards_leveling() {
        // Superlinearity: a flat profile with the same energy is cheaper.
        let pricing = QuadraticPricing::default();
        let mut peaked = LoadProfile::new();
        peaked.add_at(18, 8.0);
        let mut flat = LoadProfile::new();
        for h in 16..20 {
            flat.add_at(h, 2.0);
        }
        assert_eq!(peaked.total(), flat.total());
        assert!(pricing.cost(&flat) < pricing.cost(&peaked));
    }

    #[test]
    fn cost_of_sum_of_squares_agrees_with_profile_cost() {
        let pricing = QuadraticPricing::new(0.3).unwrap();
        let mut profile = LoadProfile::new();
        profile.add_window(Interval::new(7, 11).unwrap(), 1.5);
        profile.add_window(Interval::new(9, 13).unwrap(), 2.5);
        assert!(
            (pricing.cost(&profile) - pricing.cost_of_sum_of_squares(profile.sum_of_squares()))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn two_step_validates_parameters() {
        assert!(TwoStepPricing::new(1.0, 0.5, 4.0).is_err());
        assert!(TwoStepPricing::new(0.0, 2.0, 4.0).is_err());
        assert!(TwoStepPricing::new(1.0, 2.0, -1.0).is_err());
        assert!(TwoStepPricing::new(1.0, 2.0, 4.0).is_ok());
    }

    #[test]
    fn two_step_kinks_at_threshold() {
        let p = TwoStepPricing::new(1.0, 3.0, 4.0).unwrap();
        assert_eq!(p.hourly_cost(2.0), 2.0);
        assert_eq!(p.hourly_cost(4.0), 4.0);
        assert_eq!(p.hourly_cost(6.0), 4.0 + 3.0 * 2.0);
    }

    #[test]
    fn two_step_is_convex_on_samples() {
        let p = TwoStepPricing::new(0.8, 2.5, 5.0).unwrap();
        // midpoint convexity on a grid straddling the kink
        for i in 0..20 {
            for j in 0..20 {
                let (x, y) = (f64::from(i) * 0.7, f64::from(j) * 0.7);
                let mid = p.hourly_cost((x + y) / 2.0);
                let avg = (p.hourly_cost(x) + p.hourly_cost(y)) / 2.0;
                assert!(mid <= avg + 1e-12);
            }
        }
    }
}
