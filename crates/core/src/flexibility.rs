//! Flexibility scores (Eq. 4).
//!
//! `f_i = ((β_i − α_i)/v_i) · (1/N_i)` where
//! `N_i = (Σ_{h ∈ [α_i, β_i)} n_h) / (β_i − α_i)` is the average demand
//! density over household `i`'s reported interval and `n_h` counts the
//! households (including `i` itself) whose reported interval covers hour `h`.
//!
//! The demand-density form reproduces the paper's worked examples: in
//! Example 2 (`χ_A = (18,19,1)`, `χ_B = χ_C = (18,20,1)`), `N_B = 2.5` and
//! `f_B = 0.8`, with `f_A < f_B = f_C`; in Example 3 the off-peak household A
//! scores *higher* than the wider-but-peak households B and C.
//!
//! Flexibility is used twice by the mechanism: as the *predicted* score that
//! orders households in the greedy allocation (§IV-C, always computed from
//! reports), and as the *realized* score in the payment (§IV-B3, zeroed for
//! a household that defects).

use crate::household::Preference;
use crate::time::HOURS_PER_DAY;

/// Per-hour demand density `n_h`: the number of preferences whose window
/// covers each hour.
///
/// # Examples
///
/// ```
/// # use enki_core::flexibility::coverage;
/// # use enki_core::household::Preference;
/// # fn main() -> Result<(), enki_core::Error> {
/// let prefs = vec![
///     Preference::new(18, 19, 1)?,
///     Preference::new(18, 20, 1)?,
///     Preference::new(18, 20, 1)?,
/// ];
/// let n = coverage(&prefs);
/// assert_eq!(n[18], 3);
/// assert_eq!(n[19], 2);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn coverage<'a, I>(preferences: I) -> [u32; HOURS_PER_DAY]
where
    I: IntoIterator<Item = &'a Preference>,
{
    let mut n = [0u32; HOURS_PER_DAY];
    for pref in preferences {
        for h in pref.window().slots() {
            n[usize::from(h)] += 1;
        }
    }
    n
}

/// The flexibility score `f_i` of one preference against a demand-density
/// vector that already includes the preference itself.
///
/// Returns 0 when the preference's interval carries no demand at all (which
/// can only happen if `coverage` was computed over a set excluding the
/// preference — callers should include it, as [`flexibility_scores`] does).
#[must_use]
pub fn flexibility_score(preference: &Preference, coverage: &[u32; HOURS_PER_DAY]) -> f64 {
    let width = f64::from(preference.window().len());
    let demand: u32 = preference
        .window()
        .slots()
        .map(|h| coverage[usize::from(h)])
        .sum();
    if demand == 0 {
        return 0.0;
    }
    // f = (width / v) · 1/N with N = demand/width  ⇒  f = width² / (v·demand)
    width * width / (f64::from(preference.duration()) * f64::from(demand))
}

/// Flexibility scores for a whole neighborhood of reported preferences, in
/// input order. This is the *predicted* flexibility of §IV-C: it assumes
/// every report is truthful and every household will follow its allocation.
#[must_use]
pub fn flexibility_scores(preferences: &[Preference]) -> Vec<f64> {
    let n = coverage(preferences);
    preferences
        .iter()
        .map(|p| flexibility_score(p, &n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pref(b: u8, e: u8, v: u8) -> Preference {
        Preference::new(b, e, v).unwrap()
    }

    #[test]
    fn example2_scores_match_paper() {
        // Example 2: χ_A = (18,19,1), χ_B = χ_C = (18,20,1).
        let prefs = vec![pref(18, 19, 1), pref(18, 20, 1), pref(18, 20, 1)];
        let f = flexibility_scores(&prefs);
        // Paper: N_B = (3+2)/2 = 2.5 and f_B = 0.8.
        assert!((f[1] - 0.8).abs() < 1e-12);
        assert!((f[2] - 0.8).abs() < 1e-12);
        // f_A = (1/1)·(1/3).
        assert!((f[0] - 1.0 / 3.0).abs() < 1e-12);
        // Property 1 / Example 2 conclusion: f_A < f_B = f_C.
        assert!(f[0] < f[1]);
        assert_eq!(f[1], f[2]);
    }

    #[test]
    fn example3_off_peak_household_is_more_flexible() {
        // Example 3: χ_A = (16,18,2), χ_B = χ_C = (18,21,2).
        let prefs = vec![pref(16, 18, 2), pref(18, 21, 2), pref(18, 21, 2)];
        let f = flexibility_scores(&prefs);
        // A's interval has density 1, B/C's has density 2.
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f[1] - 0.75).abs() < 1e-12);
        // Example 3 conclusion: f_B = f_C < f_A.
        assert!(f[1] < f[0]);
        assert_eq!(f[1], f[2]);
    }

    #[test]
    fn example1_identical_preferences_score_equally() {
        let prefs = vec![pref(18, 20, 1); 3];
        let f = flexibility_scores(&prefs);
        assert!(f.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
    }

    #[test]
    fn wider_truthful_interval_scores_higher_all_else_equal() {
        // Property 1: widening one household's interval (into quiet hours)
        // raises its score.
        let narrow = vec![pref(18, 20, 2), pref(18, 20, 2)];
        let wide = vec![pref(16, 22, 2), pref(18, 20, 2)];
        let f_narrow = flexibility_scores(&narrow);
        let f_wide = flexibility_scores(&wide);
        assert!(f_wide[0] > f_narrow[0]);
    }

    #[test]
    fn off_peak_interval_scores_higher_all_else_equal() {
        // Property 2: same width, but household 0 prefers quiet hours.
        let prefs = vec![
            pref(2, 6, 2),   // off-peak: nobody else there
            pref(18, 22, 2), // peak: shared with two others
            pref(18, 22, 2),
            pref(18, 22, 2),
        ];
        let f = flexibility_scores(&prefs);
        assert!(f[0] > f[1]);
    }

    #[test]
    fn singleton_household_score_is_width_over_duration() {
        let prefs = vec![pref(10, 16, 2)];
        let f = flexibility_scores(&prefs);
        // n_h = 1 everywhere in its interval ⇒ N = 1 ⇒ f = width/v = 3.
        assert!((f[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_sums_to_total_interval_hours() {
        let prefs = vec![pref(0, 24, 4), pref(6, 12, 2), pref(20, 24, 1)];
        let n = coverage(&prefs);
        let total: u32 = n.iter().sum();
        assert_eq!(total, 24 + 6 + 4);
    }

    #[test]
    fn zero_coverage_yields_zero_score() {
        let n = [0u32; HOURS_PER_DAY];
        assert_eq!(flexibility_score(&pref(1, 5, 2), &n), 0.0);
    }

    #[test]
    fn scores_are_positive_and_finite_for_any_population() {
        let prefs: Vec<Preference> = (0..30)
            .map(|i| pref((i % 20) as u8, ((i % 20) + 4) as u8, 1 + (i % 4) as u8))
            .collect();
        for f in flexibility_scores(&prefs) {
            assert!(f.is_finite());
            assert!(f > 0.0);
        }
    }
}
