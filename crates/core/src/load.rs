//! Hourly load profiles (`l_h` in the paper).
//!
//! A [`LoadProfile`] is the aggregated consumption of the neighborhood for
//! each hour of the day, in kWh. It is the input to the pricing function
//! `κ(ω) = Σ_h σ·l_h²` and to the peak-to-average-ratio metric reported in
//! Figure 4.

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

use crate::time::{Interval, HOURS_PER_DAY};

/// Aggregated hourly load over one day, in kWh per hour slot.
///
/// # Examples
///
/// ```
/// # use enki_core::load::LoadProfile;
/// # use enki_core::time::Interval;
/// # fn main() -> Result<(), enki_core::Error> {
/// let mut load = LoadProfile::new();
/// load.add_window(Interval::new(18, 20)?, 2.0);
/// load.add_window(Interval::new(19, 21)?, 2.0);
/// assert_eq!(load.peak(), 4.0);
/// assert_eq!(load.total(), 8.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadProfile {
    hours: [f64; HOURS_PER_DAY],
}

impl LoadProfile {
    /// An empty (all-zero) profile.
    #[must_use]
    pub fn new() -> Self {
        Self {
            hours: [0.0; HOURS_PER_DAY],
        }
    }

    /// Builds a profile from per-hour loads.
    #[must_use]
    pub fn from_hours(hours: [f64; HOURS_PER_DAY]) -> Self {
        Self { hours }
    }

    /// Builds the profile of a set of consumption windows, each drawing
    /// `rate` kW while active.
    #[must_use]
    pub fn from_windows<'a, I>(windows: I, rate: f64) -> Self
    where
        I: IntoIterator<Item = &'a Interval>,
    {
        let mut profile = Self::new();
        for w in windows {
            profile.add_window(*w, rate);
        }
        profile
    }

    /// Load at hour `h` in kWh.
    ///
    /// # Panics
    ///
    /// Panics if `h >= 24`.
    #[must_use]
    pub fn at(&self, h: u8) -> f64 {
        self.hours[usize::from(h)]
    }

    /// Adds `rate` kWh to every hour covered by `window`.
    pub fn add_window(&mut self, window: Interval, rate: f64) {
        for h in window.slots() {
            self.hours[usize::from(h)] += rate;
        }
    }

    /// Removes `rate` kWh from every hour covered by `window`.
    pub fn remove_window(&mut self, window: Interval, rate: f64) {
        for h in window.slots() {
            self.hours[usize::from(h)] -= rate;
        }
    }

    /// Adds `amount` kWh at a single hour.
    ///
    /// # Panics
    ///
    /// Panics if `h >= 24`.
    pub fn add_at(&mut self, h: u8, amount: f64) {
        self.hours[usize::from(h)] += amount;
    }

    /// Maximum hourly load (the peak).
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.hours.iter().copied().fold(0.0_f64, f64::max)
    }

    /// Total daily energy (`Σ_h l_h`).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.hours.iter().sum()
    }

    /// Mean hourly load over the 24 slots.
    #[must_use]
    pub fn average(&self) -> f64 {
        self.total() / HOURS_PER_DAY as f64
    }

    /// Mean hourly load over the hours that carry any load at all.
    ///
    /// The paper's peak-to-average ratio divides by the average over *active*
    /// hours; otherwise small neighborhoods with short nightly quiet periods
    /// would inflate the PAR mechanically.
    #[must_use]
    pub fn active_average(&self) -> f64 {
        let active: Vec<f64> = self
            .hours
            .iter()
            .copied()
            .filter(|&l| l > 0.0)
            .collect();
        if active.is_empty() {
            0.0
        } else {
            active.iter().sum::<f64>() / active.len() as f64
        }
    }

    /// Peak-to-average ratio over active hours. Zero for an empty profile.
    #[must_use]
    pub fn peak_to_average(&self) -> f64 {
        let avg = self.active_average();
        if crate::float::approx_zero(avg) {
            0.0
        } else {
            self.peak() / avg
        }
    }

    /// Sum of squared hourly loads (`Σ_h l_h²`), the σ-free part of the
    /// quadratic cost. Useful as an allocation tie-break objective.
    #[must_use]
    pub fn sum_of_squares(&self) -> f64 {
        self.hours.iter().map(|l| l * l).sum()
    }

    /// Change in [`sum_of_squares`](Self::sum_of_squares) if `rate` kWh
    /// were added to every hour of `window` (pass a negative `rate` for a
    /// removal). Does not mutate; costs O(window duration) instead of a
    /// full 24-hour recompute, which is what makes move evaluation in the
    /// solvers O(duration) per candidate.
    #[must_use]
    pub fn sum_of_squares_delta(&self, window: Interval, rate: f64) -> f64 {
        window
            .slots()
            .map(|h| {
                let l = self.at(h);
                (l + rate) * (l + rate) - l * l
            })
            .sum()
    }

    /// Iterator over `(hour, load)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u8, f64)> + '_ {
        self.hours
            .iter()
            .enumerate()
            .map(|(h, &l)| (h as u8, l))
    }

    /// The raw per-hour loads.
    #[must_use]
    pub fn hours(&self) -> &[f64; HOURS_PER_DAY] {
        &self.hours
    }

    /// The hour with the maximum load (first one on ties), or `None` when
    /// the profile is all-zero.
    #[must_use]
    pub fn peak_hour(&self) -> Option<u8> {
        let peak = self.peak();
        if crate::float::approx_zero(peak) {
            return None;
        }
        self.hours
            .iter()
            .position(|&l| l == peak)
            .map(|h| h as u8)
    }
}

impl Default for LoadProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl Add for LoadProfile {
    type Output = LoadProfile;

    fn add(mut self, rhs: LoadProfile) -> LoadProfile {
        self += rhs;
        self
    }
}

impl AddAssign for LoadProfile {
    fn add_assign(&mut self, rhs: LoadProfile) {
        for (l, r) in self.hours.iter_mut().zip(rhs.hours.iter()) {
            *l += r;
        }
    }
}

impl fmt::Display for LoadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (h, l) in self.iter() {
            if h > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l:.1}")?;
        }
        write!(f, "]")
    }
}

impl<'a> FromIterator<&'a Interval> for LoadProfile {
    /// Collects unit-rate (1 kWh) windows into a profile.
    fn from_iter<I: IntoIterator<Item = &'a Interval>>(iter: I) -> Self {
        Self::from_windows(iter, 1.0)
    }
}

/// Aggregate load together with its running `Σ_h l_h²`, maintained
/// incrementally: adding or removing a window updates both in
/// O(window duration), so evaluating a candidate move never needs the
/// full 24-hour recompute. In debug builds every mutation cross-checks
/// the running sum against [`LoadProfile::sum_of_squares`].
///
/// # Examples
///
/// ```
/// # use enki_core::load::IncrementalCost;
/// # use enki_core::time::Interval;
/// # fn main() -> Result<(), enki_core::Error> {
/// let mut cost = IncrementalCost::new();
/// let w = Interval::new(18, 20)?;
/// let delta = cost.add_window(w, 2.0);
/// assert_eq!(delta, 8.0);
/// assert_eq!(cost.sum_of_squares(), 8.0);
/// cost.remove_window(w, 2.0);
/// assert_eq!(cost.sum_of_squares(), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncrementalCost {
    load: LoadProfile,
    sumsq: f64,
}

impl IncrementalCost {
    /// Empty state: zero load, zero cost.
    #[must_use]
    pub fn new() -> Self {
        Self {
            load: LoadProfile::new(),
            sumsq: 0.0,
        }
    }

    /// Starts from an existing profile (one full recompute, then
    /// everything is incremental).
    #[must_use]
    pub fn from_profile(load: LoadProfile) -> Self {
        let sumsq = load.sum_of_squares();
        Self { load, sumsq }
    }

    /// Builds the state of a set of consumption windows at `rate` kW.
    #[must_use]
    pub fn from_windows<'a, I>(windows: I, rate: f64) -> Self
    where
        I: IntoIterator<Item = &'a Interval>,
    {
        Self::from_profile(LoadProfile::from_windows(windows, rate))
    }

    /// The aggregate load profile.
    #[must_use]
    pub fn load(&self) -> &LoadProfile {
        &self.load
    }

    /// The running `Σ_h l_h²`.
    #[must_use]
    pub fn sum_of_squares(&self) -> f64 {
        self.sumsq
    }

    /// `Σl²` change if `rate` kWh were added over `window` — a pure
    /// preview, no mutation. O(window duration).
    #[must_use]
    pub fn preview_add(&self, window: Interval, rate: f64) -> f64 {
        self.load.sum_of_squares_delta(window, rate)
    }

    /// Adds a window, updating load and running cost; returns the `Σl²`
    /// delta (equal to what [`preview_add`](Self::preview_add) reported).
    pub fn add_window(&mut self, window: Interval, rate: f64) -> f64 {
        let delta = self.load.sum_of_squares_delta(window, rate);
        self.load.add_window(window, rate);
        self.sumsq += delta;
        self.cross_check();
        delta
    }

    /// Removes a window, updating load and running cost; returns the
    /// (typically negative) `Σl²` delta.
    pub fn remove_window(&mut self, window: Interval, rate: f64) -> f64 {
        let delta = self.load.sum_of_squares_delta(window, -rate);
        self.load.remove_window(window, rate);
        self.sumsq += delta;
        self.cross_check();
        delta
    }

    fn cross_check(&self) {
        debug_assert!(
            crate::float::approx_eq(self.sumsq, self.load.sum_of_squares()),
            "incremental Σl² drifted from the full recompute: {} vs {}",
            self.sumsq,
            self.load.sum_of_squares(),
        );
    }
}

impl Default for IncrementalCost {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Interval;

    fn iv(b: u8, e: u8) -> Interval {
        Interval::new(b, e).unwrap()
    }

    #[test]
    fn empty_profile_is_zero_everywhere() {
        let p = LoadProfile::new();
        assert_eq!(p.total(), 0.0);
        assert_eq!(p.peak(), 0.0);
        assert_eq!(p.peak_to_average(), 0.0);
        assert_eq!(p.peak_hour(), None);
    }

    #[test]
    fn add_window_accumulates() {
        let mut p = LoadProfile::new();
        p.add_window(iv(18, 20), 2.0);
        p.add_window(iv(19, 21), 2.0);
        assert_eq!(p.at(18), 2.0);
        assert_eq!(p.at(19), 4.0);
        assert_eq!(p.at(20), 2.0);
        assert_eq!(p.at(21), 0.0);
        assert_eq!(p.peak_hour(), Some(19));
    }

    #[test]
    fn remove_window_undoes_add() {
        let mut p = LoadProfile::new();
        p.add_window(iv(5, 9), 2.0);
        p.remove_window(iv(5, 9), 2.0);
        assert_eq!(p, LoadProfile::new());
    }

    #[test]
    fn from_windows_matches_manual_accumulation() {
        let windows = vec![iv(18, 20), iv(18, 20), iv(20, 22)];
        let p = LoadProfile::from_windows(&windows, 2.0);
        assert_eq!(p.at(18), 4.0);
        assert_eq!(p.at(20), 2.0);
        assert_eq!(p.total(), 12.0);
    }

    #[test]
    fn par_uses_active_hours() {
        let mut p = LoadProfile::new();
        // 2 kWh for 4 hours, flat: PAR should be exactly 1.
        p.add_window(iv(10, 14), 2.0);
        assert!((p.peak_to_average() - 1.0).abs() < 1e-12);
        // Stack a second household on one hour: peak 4, active avg 10/4.
        p.add_window(iv(10, 11), 2.0);
        assert!((p.peak_to_average() - 4.0 / 2.5).abs() < 1e-12);
    }

    #[test]
    fn average_divides_by_full_day() {
        let mut p = LoadProfile::new();
        p.add_window(iv(0, 24), 1.0);
        assert!((p.average() - 1.0).abs() < 1e-12);
        assert!((p.active_average() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sum_of_squares_is_quadratic() {
        let mut p = LoadProfile::new();
        p.add_window(iv(3, 5), 3.0);
        assert_eq!(p.sum_of_squares(), 18.0);
    }

    #[test]
    fn add_assign_sums_hourly() {
        let mut a = LoadProfile::new();
        a.add_window(iv(1, 3), 1.0);
        let mut b = LoadProfile::new();
        b.add_window(iv(2, 4), 2.0);
        let c = a + b;
        assert_eq!(c.at(1), 1.0);
        assert_eq!(c.at(2), 3.0);
        assert_eq!(c.at(3), 2.0);
    }

    #[test]
    fn collect_unit_windows() {
        let windows = [iv(4, 6), iv(5, 7)];
        let p: LoadProfile = windows.iter().collect();
        assert_eq!(p.at(5), 2.0);
        assert_eq!(p.total(), 4.0);
    }

    #[test]
    fn display_is_compact() {
        let p = LoadProfile::new();
        let s = p.to_string();
        assert!(s.starts_with('['));
        assert!(s.ends_with(']'));
        assert_eq!(s.matches("0.0").count(), 24);
    }

    #[test]
    fn sum_of_squares_delta_matches_recompute() {
        use crate::float::approx_eq;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};

        let mut rng = StdRng::seed_from_u64(0x10AD);
        for _ in 0..200 {
            let mut p = LoadProfile::new();
            for _ in 0..rng.random_range(0..6) {
                let b = rng.random_range(0..22u8);
                let e = rng.random_range(b + 1..=24u8.min(b + 6));
                p.add_window(iv(b, e), rng.random_range(1..=4) as f64 * 0.5);
            }
            let b = rng.random_range(0..22u8);
            let e = rng.random_range(b + 1..=24u8.min(b + 6));
            let w = iv(b, e);
            let rate = if rng.random_range(0..2) == 0 { 2.0 } else { -1.5 };
            let delta = p.sum_of_squares_delta(w, rate);
            let before = p.sum_of_squares();
            let mut after = p;
            after.add_window(w, rate);
            assert!(
                approx_eq(delta, after.sum_of_squares() - before),
                "delta {delta} vs recompute {}",
                after.sum_of_squares() - before
            );
        }
    }

    #[test]
    fn incremental_cost_tracks_full_recompute_over_random_moves() {
        use crate::float::approx_eq;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};

        let rate = 2.0;
        let mut rng = StdRng::seed_from_u64(0xC057);
        let mut cost = IncrementalCost::new();
        let mut shadow: Vec<Interval> = Vec::new();
        for _ in 0..500 {
            let remove = !shadow.is_empty() && rng.random_range(0..3) == 0;
            if remove {
                let w = shadow.swap_remove(rng.random_range(0..shadow.len()));
                cost.remove_window(w, rate);
            } else {
                let b = rng.random_range(0..22u8);
                let e = rng.random_range(b + 1..=24u8.min(b + 5));
                let w = iv(b, e);
                let preview = cost.preview_add(w, rate);
                let applied = cost.add_window(w, rate);
                assert_eq!(preview, applied, "preview must equal the applied delta");
                shadow.push(w);
            }
            let full = LoadProfile::from_windows(&shadow, rate);
            assert!(
                approx_eq(cost.sum_of_squares(), full.sum_of_squares()),
                "running Σl² {} drifted from recompute {}",
                cost.sum_of_squares(),
                full.sum_of_squares()
            );
            assert_eq!(cost.load(), &full);
        }
    }

    #[test]
    fn incremental_cost_rollback_restores_state() {
        use crate::float::approx_eq;

        // Regression: a rejected move (remove, preview alternatives, put
        // the same window back) must leave the running state equal to the
        // untouched one — the preview must not mutate, and the add must
        // exactly undo the remove.
        let rate = 2.0;
        let windows = [iv(6, 10), iv(8, 12), iv(9, 11)];
        let mut cost = IncrementalCost::from_windows(&windows, rate);
        let reference = cost;
        let removed = cost.remove_window(windows[1], rate);
        for b in 0..20u8 {
            let _ = cost.preview_add(iv(b, b + 3), rate);
        }
        let restored = cost.add_window(windows[1], rate);
        assert!(approx_eq(removed + restored, 0.0));
        assert!(approx_eq(
            cost.sum_of_squares(),
            reference.sum_of_squares()
        ));
        assert_eq!(cost.load(), reference.load());
    }
}
