//! Hourly load profiles (`l_h` in the paper).
//!
//! A [`LoadProfile`] is the aggregated consumption of the neighborhood for
//! each hour of the day, in kWh. It is the input to the pricing function
//! `κ(ω) = Σ_h σ·l_h²` and to the peak-to-average-ratio metric reported in
//! Figure 4.

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

use crate::time::{Interval, HOURS_PER_DAY};

/// Aggregated hourly load over one day, in kWh per hour slot.
///
/// # Examples
///
/// ```
/// # use enki_core::load::LoadProfile;
/// # use enki_core::time::Interval;
/// # fn main() -> Result<(), enki_core::Error> {
/// let mut load = LoadProfile::new();
/// load.add_window(Interval::new(18, 20)?, 2.0);
/// load.add_window(Interval::new(19, 21)?, 2.0);
/// assert_eq!(load.peak(), 4.0);
/// assert_eq!(load.total(), 8.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadProfile {
    hours: [f64; HOURS_PER_DAY],
}

impl LoadProfile {
    /// An empty (all-zero) profile.
    #[must_use]
    pub fn new() -> Self {
        Self {
            hours: [0.0; HOURS_PER_DAY],
        }
    }

    /// Builds a profile from per-hour loads.
    #[must_use]
    pub fn from_hours(hours: [f64; HOURS_PER_DAY]) -> Self {
        Self { hours }
    }

    /// Builds the profile of a set of consumption windows, each drawing
    /// `rate` kW while active.
    #[must_use]
    pub fn from_windows<'a, I>(windows: I, rate: f64) -> Self
    where
        I: IntoIterator<Item = &'a Interval>,
    {
        let mut profile = Self::new();
        for w in windows {
            profile.add_window(*w, rate);
        }
        profile
    }

    /// Load at hour `h` in kWh.
    ///
    /// # Panics
    ///
    /// Panics if `h >= 24`.
    #[must_use]
    pub fn at(&self, h: u8) -> f64 {
        self.hours[usize::from(h)]
    }

    /// Adds `rate` kWh to every hour covered by `window`.
    pub fn add_window(&mut self, window: Interval, rate: f64) {
        for h in window.slots() {
            self.hours[usize::from(h)] += rate;
        }
    }

    /// Removes `rate` kWh from every hour covered by `window`.
    pub fn remove_window(&mut self, window: Interval, rate: f64) {
        for h in window.slots() {
            self.hours[usize::from(h)] -= rate;
        }
    }

    /// Adds `amount` kWh at a single hour.
    ///
    /// # Panics
    ///
    /// Panics if `h >= 24`.
    pub fn add_at(&mut self, h: u8, amount: f64) {
        self.hours[usize::from(h)] += amount;
    }

    /// Maximum hourly load (the peak).
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.hours.iter().copied().fold(0.0_f64, f64::max)
    }

    /// Total daily energy (`Σ_h l_h`).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.hours.iter().sum()
    }

    /// Mean hourly load over the 24 slots.
    #[must_use]
    pub fn average(&self) -> f64 {
        self.total() / HOURS_PER_DAY as f64
    }

    /// Mean hourly load over the hours that carry any load at all.
    ///
    /// The paper's peak-to-average ratio divides by the average over *active*
    /// hours; otherwise small neighborhoods with short nightly quiet periods
    /// would inflate the PAR mechanically.
    #[must_use]
    pub fn active_average(&self) -> f64 {
        let active: Vec<f64> = self
            .hours
            .iter()
            .copied()
            .filter(|&l| l > 0.0)
            .collect();
        if active.is_empty() {
            0.0
        } else {
            active.iter().sum::<f64>() / active.len() as f64
        }
    }

    /// Peak-to-average ratio over active hours. Zero for an empty profile.
    #[must_use]
    pub fn peak_to_average(&self) -> f64 {
        let avg = self.active_average();
        if crate::float::approx_zero(avg) {
            0.0
        } else {
            self.peak() / avg
        }
    }

    /// Sum of squared hourly loads (`Σ_h l_h²`), the σ-free part of the
    /// quadratic cost. Useful as an allocation tie-break objective.
    #[must_use]
    pub fn sum_of_squares(&self) -> f64 {
        self.hours.iter().map(|l| l * l).sum()
    }

    /// Iterator over `(hour, load)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u8, f64)> + '_ {
        self.hours
            .iter()
            .enumerate()
            .map(|(h, &l)| (h as u8, l))
    }

    /// The raw per-hour loads.
    #[must_use]
    pub fn hours(&self) -> &[f64; HOURS_PER_DAY] {
        &self.hours
    }

    /// The hour with the maximum load (first one on ties), or `None` when
    /// the profile is all-zero.
    #[must_use]
    pub fn peak_hour(&self) -> Option<u8> {
        let peak = self.peak();
        if crate::float::approx_zero(peak) {
            return None;
        }
        self.hours
            .iter()
            .position(|&l| l == peak)
            .map(|h| h as u8)
    }
}

impl Default for LoadProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl Add for LoadProfile {
    type Output = LoadProfile;

    fn add(mut self, rhs: LoadProfile) -> LoadProfile {
        self += rhs;
        self
    }
}

impl AddAssign for LoadProfile {
    fn add_assign(&mut self, rhs: LoadProfile) {
        for (l, r) in self.hours.iter_mut().zip(rhs.hours.iter()) {
            *l += r;
        }
    }
}

impl fmt::Display for LoadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (h, l) in self.iter() {
            if h > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l:.1}")?;
        }
        write!(f, "]")
    }
}

impl<'a> FromIterator<&'a Interval> for LoadProfile {
    /// Collects unit-rate (1 kWh) windows into a profile.
    fn from_iter<I: IntoIterator<Item = &'a Interval>>(iter: I) -> Self {
        Self::from_windows(iter, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Interval;

    fn iv(b: u8, e: u8) -> Interval {
        Interval::new(b, e).unwrap()
    }

    #[test]
    fn empty_profile_is_zero_everywhere() {
        let p = LoadProfile::new();
        assert_eq!(p.total(), 0.0);
        assert_eq!(p.peak(), 0.0);
        assert_eq!(p.peak_to_average(), 0.0);
        assert_eq!(p.peak_hour(), None);
    }

    #[test]
    fn add_window_accumulates() {
        let mut p = LoadProfile::new();
        p.add_window(iv(18, 20), 2.0);
        p.add_window(iv(19, 21), 2.0);
        assert_eq!(p.at(18), 2.0);
        assert_eq!(p.at(19), 4.0);
        assert_eq!(p.at(20), 2.0);
        assert_eq!(p.at(21), 0.0);
        assert_eq!(p.peak_hour(), Some(19));
    }

    #[test]
    fn remove_window_undoes_add() {
        let mut p = LoadProfile::new();
        p.add_window(iv(5, 9), 2.0);
        p.remove_window(iv(5, 9), 2.0);
        assert_eq!(p, LoadProfile::new());
    }

    #[test]
    fn from_windows_matches_manual_accumulation() {
        let windows = vec![iv(18, 20), iv(18, 20), iv(20, 22)];
        let p = LoadProfile::from_windows(&windows, 2.0);
        assert_eq!(p.at(18), 4.0);
        assert_eq!(p.at(20), 2.0);
        assert_eq!(p.total(), 12.0);
    }

    #[test]
    fn par_uses_active_hours() {
        let mut p = LoadProfile::new();
        // 2 kWh for 4 hours, flat: PAR should be exactly 1.
        p.add_window(iv(10, 14), 2.0);
        assert!((p.peak_to_average() - 1.0).abs() < 1e-12);
        // Stack a second household on one hour: peak 4, active avg 10/4.
        p.add_window(iv(10, 11), 2.0);
        assert!((p.peak_to_average() - 4.0 / 2.5).abs() < 1e-12);
    }

    #[test]
    fn average_divides_by_full_day() {
        let mut p = LoadProfile::new();
        p.add_window(iv(0, 24), 1.0);
        assert!((p.average() - 1.0).abs() < 1e-12);
        assert!((p.active_average() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sum_of_squares_is_quadratic() {
        let mut p = LoadProfile::new();
        p.add_window(iv(3, 5), 3.0);
        assert_eq!(p.sum_of_squares(), 18.0);
    }

    #[test]
    fn add_assign_sums_hourly() {
        let mut a = LoadProfile::new();
        a.add_window(iv(1, 3), 1.0);
        let mut b = LoadProfile::new();
        b.add_window(iv(2, 4), 2.0);
        let c = a + b;
        assert_eq!(c.at(1), 1.0);
        assert_eq!(c.at(2), 3.0);
        assert_eq!(c.at(3), 2.0);
    }

    #[test]
    fn collect_unit_windows() {
        let windows = [iv(4, 6), iv(5, 7)];
        let p: LoadProfile = windows.iter().collect();
        assert_eq!(p.at(5), 2.0);
        assert_eq!(p.total(), 4.0);
    }

    #[test]
    fn display_is_compact() {
        let p = LoadProfile::new();
        let s = p.to_string();
        assert!(s.starts_with('['));
        assert!(s.ends_with(']'));
        assert_eq!(s.matches("0.0").count(), 24);
    }
}
