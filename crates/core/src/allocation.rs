//! Greedy allocation (§IV-A and §IV-C).
//!
//! Producing allocations is the optimization problem of Eq. 2: choose a
//! deferment for every household so that the quadratic neighborhood cost is
//! minimized. Enki sidesteps the MIQP by a two-level greedy rule:
//!
//! 1. order households by *increasing* predicted flexibility (Eq. 4),
//!    breaking ties randomly — tight, peak-hour households are placed first
//!    while the load profile is still empty;
//! 2. for each household in that order, place its `v`-hour window at the
//!    feasible start that minimizes the peak load over the households placed
//!    so far, using the quadratic cost as a secondary criterion and a random
//!    choice among remaining ties.
//!
//! The exact optimum (the paper's CPLEX MIQP) lives in the `enki-solver`
//! crate; Figures 4–6 compare the two.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::flexibility::flexibility_scores;
use crate::household::Preference;
use crate::load::LoadProfile;
use crate::pricing::Pricing;
use crate::time::Interval;

/// Result of a greedy allocation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GreedyOutcome {
    /// One suggested window `s_i` per input preference, in input order.
    pub windows: Vec<Interval>,
    /// The order (indices into the input) in which households were placed:
    /// least flexible first.
    pub placement_order: Vec<usize>,
    /// Predicted flexibility scores (Eq. 4) used for the ordering, in input
    /// order.
    pub predicted_flexibility: Vec<f64>,
    /// The planned load profile when every household follows its window.
    pub planned_load: LoadProfile,
}

/// How the greedy scheduler orders households before placing them.
///
/// The paper's choice is [`OrderingPolicy::IncreasingFlexibility`]
/// (§IV-C): tight, peak-hour households are placed while the profile is
/// still empty, and flexible ones fill the gaps. The other policies exist
/// for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OrderingPolicy {
    /// Least flexible first (the paper's rule).
    #[default]
    IncreasingFlexibility,
    /// Most flexible first (the ablation's adversary).
    DecreasingFlexibility,
    /// Uniformly random order.
    Random,
    /// The order the reports arrived in.
    InputOrder,
}

/// Runs the greedy allocation over reported preferences.
///
/// `rate` is the per-household power draw in kW; `pricing` supplies the
/// secondary (cost) criterion; `rng` resolves both ordering and placement
/// ties, so a seeded generator makes the allocation reproducible.
///
/// # Errors
///
/// Returns [`Error::EmptyNeighborhood`] when `preferences` is empty.
///
/// # Examples
///
/// ```
/// # use enki_core::allocation::greedy_allocation;
/// # use enki_core::household::Preference;
/// # use enki_core::pricing::QuadraticPricing;
/// # use rand::SeedableRng;
/// # fn main() -> Result<(), enki_core::Error> {
/// let prefs = vec![
///     Preference::new(18, 20, 1)?,
///     Preference::new(18, 20, 1)?,
/// ];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let outcome = greedy_allocation(&prefs, 2.0, &QuadraticPricing::default(), &mut rng)?;
/// // Two one-hour jobs in a two-hour window never share an hour.
/// assert_eq!(outcome.planned_load.peak(), 2.0);
/// # Ok(())
/// # }
/// ```
#[must_use = "dropping the outcome discards the schedule and ignores infeasible inputs"]
pub fn greedy_allocation<P, R>(
    preferences: &[Preference],
    rate: f64,
    pricing: &P,
    rng: &mut R,
) -> Result<GreedyOutcome>
where
    P: Pricing + ?Sized,
    R: Rng + ?Sized,
{
    greedy_allocation_with_policy(
        preferences,
        rate,
        pricing,
        OrderingPolicy::IncreasingFlexibility,
        rng,
    )
}

/// Runs the greedy allocation with an explicit ordering policy — the
/// paper's rule or one of the ablation variants.
///
/// # Errors
///
/// Returns [`Error::EmptyNeighborhood`] when `preferences` is empty.
#[must_use = "dropping the outcome discards the schedule and ignores infeasible inputs"]
pub fn greedy_allocation_with_policy<P, R>(
    preferences: &[Preference],
    rate: f64,
    pricing: &P,
    policy: OrderingPolicy,
    rng: &mut R,
) -> Result<GreedyOutcome>
where
    P: Pricing + ?Sized,
    R: Rng + ?Sized,
{
    if preferences.is_empty() {
        return Err(Error::EmptyNeighborhood);
    }
    let predicted_flexibility = flexibility_scores(preferences);
    let placement_order = match policy {
        OrderingPolicy::IncreasingFlexibility => {
            flexibility_order(&predicted_flexibility, rng)
        }
        OrderingPolicy::DecreasingFlexibility => {
            let mut order = flexibility_order(&predicted_flexibility, rng);
            order.reverse();
            order
        }
        OrderingPolicy::Random => {
            let mut keyed: Vec<(u64, usize)> = (0..preferences.len())
                .map(|i| (rng.random::<u64>(), i))
                .collect();
            keyed.sort_unstable();
            keyed.into_iter().map(|(_, i)| i).collect()
        }
        OrderingPolicy::InputOrder => (0..preferences.len()).collect(),
    };

    let mut windows: Vec<Option<Interval>> = vec![None; preferences.len()];
    let mut load = LoadProfile::new();
    for &i in &placement_order {
        let window = place_one(&preferences[i], rate, pricing, &load, rng);
        load.add_window(window, rate);
        windows[i] = Some(window);
    }
    // The placement loop covers every index exactly once, so each slot
    // is filled; an unfilled slot is a solver bug surfaced as an error.
    let windows = windows
        .into_iter()
        .map(|w| w.ok_or(Error::SolveFailed { stage: "greedy" }))
        .collect::<Result<Vec<_>>>()?;
    Ok(GreedyOutcome {
        windows,
        placement_order,
        predicted_flexibility,
        planned_load: load,
    })
}

/// Index permutation ordering households by increasing flexibility with
/// random tie-breaks (§IV-C).
fn flexibility_order<R: Rng + ?Sized>(flexibility: &[f64], rng: &mut R) -> Vec<usize> {
    let mut keyed: Vec<(f64, u64, usize)> = flexibility
        .iter()
        .enumerate()
        .map(|(i, &f)| (f, rng.random::<u64>(), i))
        .collect();
    keyed.sort_by(|a, b| crate::float::cmp_f64(a.0, b.0).then(a.1.cmp(&b.1)));
    keyed.into_iter().map(|(_, _, i)| i).collect()
}

/// Places a single preference against the current partial load, minimizing
/// (peak, quadratic cost) with a uniformly random choice among exact ties.
fn place_one<P, R>(
    preference: &Preference,
    rate: f64,
    pricing: &P,
    load: &LoadProfile,
    rng: &mut R,
) -> Interval
where
    P: Pricing + ?Sized,
    R: Rng + ?Sized,
{
    let mut best: Vec<Interval> = Vec::new();
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for window in preference.feasible_windows() {
        let mut candidate = *load;
        candidate.add_window(window, rate);
        let key = (candidate.peak(), pricing.cost(&candidate));
        if key < best_key {
            best_key = key;
            best.clear();
            best.push(window);
        } else if key == best_key {
            best.push(window);
        }
    }
    debug_assert!(!best.is_empty());
    best[rng.random_range(0..best.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::QuadraticPricing;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pref(b: u8, e: u8, v: u8) -> Preference {
        Preference::new(b, e, v).unwrap()
    }

    fn run(prefs: &[Preference], seed: u64) -> GreedyOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        greedy_allocation(prefs, 2.0, &QuadraticPricing::default(), &mut rng).unwrap()
    }

    #[test]
    fn empty_neighborhood_is_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            greedy_allocation(&[], 2.0, &QuadraticPricing::default(), &mut rng),
            Err(Error::EmptyNeighborhood)
        ));
    }

    #[test]
    fn every_window_respects_its_report() {
        let prefs = vec![
            pref(18, 22, 2),
            pref(16, 24, 3),
            pref(0, 6, 1),
            pref(20, 24, 4),
        ];
        let out = run(&prefs, 42);
        for (p, w) in prefs.iter().zip(out.windows.iter()) {
            p.validate_window(*w).unwrap();
        }
    }

    #[test]
    fn example3_flexible_household_avoids_peak() {
        // Example 3 / Fig. 2 with the §IV-C ordering: B and C (less
        // flexible) are placed first and split (18, 21); A keeps (16, 18).
        let prefs = vec![pref(16, 18, 2), pref(18, 21, 2), pref(18, 21, 2)];
        for seed in 0..20 {
            let out = run(&prefs, seed);
            assert_eq!(out.windows[0], Interval::new(16, 18).unwrap());
            // B and C overlap in exactly one hour (both need 2 of 3 slots).
            assert_eq!(out.windows[1].overlap(&out.windows[2]), 1);
            // A is placed last: its flexibility is highest.
            assert_eq!(out.placement_order[2], 0);
        }
    }

    #[test]
    fn two_identical_one_hour_jobs_are_spread() {
        // Example 4 setting: A and B both report (18, 20, 1); greedy gives
        // them different hours.
        let prefs = vec![pref(18, 20, 1), pref(18, 20, 1)];
        for seed in 0..20 {
            let out = run(&prefs, seed);
            assert_eq!(out.windows[0].overlap(&out.windows[1]), 0);
            assert_eq!(out.planned_load.peak(), 2.0);
        }
    }

    #[test]
    fn zero_slack_household_gets_its_only_window() {
        let prefs = vec![pref(18, 20, 2), pref(18, 22, 2)];
        let out = run(&prefs, 3);
        assert_eq!(out.windows[0], Interval::new(18, 20).unwrap());
        // The flexible one dodges it.
        assert_eq!(out.windows[1], Interval::new(20, 22).unwrap());
    }

    #[test]
    fn placement_order_is_increasing_flexibility() {
        let prefs = vec![pref(18, 20, 2), pref(10, 20, 2), pref(18, 21, 2)];
        let out = run(&prefs, 9);
        let f = &out.predicted_flexibility;
        for pair in out.placement_order.windows(2) {
            assert!(f[pair[0]] <= f[pair[1]] + 1e-12);
        }
    }

    #[test]
    fn planned_load_matches_windows() {
        let prefs = vec![pref(17, 23, 3), pref(18, 22, 2), pref(19, 24, 1)];
        let out = run(&prefs, 1);
        let rebuilt = LoadProfile::from_windows(&out.windows, 2.0);
        assert_eq!(out.planned_load, rebuilt);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let prefs = vec![pref(18, 22, 2); 6];
        let a = run(&prefs, 1234);
        let b = run(&prefs, 1234);
        assert_eq!(a, b);
    }

    #[test]
    fn tie_breaks_vary_with_seed() {
        // With six identical reports there are many optimal placements;
        // different seeds should eventually produce different assignments.
        let prefs = vec![pref(12, 24, 2); 6];
        let baseline = run(&prefs, 0);
        let varied = (1..30).any(|seed| run(&prefs, seed).windows != baseline.windows);
        assert!(varied, "random tie-breaking never varied across 30 seeds");
    }

    #[test]
    fn ordering_policies_produce_valid_allocations() {
        let prefs = vec![pref(18, 24, 2), pref(16, 22, 3), pref(19, 23, 1)];
        for policy in [
            OrderingPolicy::IncreasingFlexibility,
            OrderingPolicy::DecreasingFlexibility,
            OrderingPolicy::Random,
            OrderingPolicy::InputOrder,
        ] {
            let mut rng = StdRng::seed_from_u64(1);
            let out = greedy_allocation_with_policy(
                &prefs,
                2.0,
                &QuadraticPricing::default(),
                policy,
                &mut rng,
            )
            .unwrap();
            for (p, w) in prefs.iter().zip(&out.windows) {
                p.validate_window(*w).unwrap();
            }
        }
    }

    #[test]
    fn input_order_policy_is_deterministic_modulo_placement_ties() {
        let prefs = vec![pref(18, 20, 2), pref(16, 24, 2)];
        let mut rng = StdRng::seed_from_u64(2);
        let out = greedy_allocation_with_policy(
            &prefs,
            2.0,
            &QuadraticPricing::default(),
            OrderingPolicy::InputOrder,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.placement_order, vec![0, 1]);
    }

    #[test]
    fn decreasing_policy_reverses_the_paper_order() {
        let prefs = vec![pref(18, 20, 2), pref(10, 24, 2), pref(18, 21, 2)];
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let inc = greedy_allocation_with_policy(
            &prefs,
            2.0,
            &QuadraticPricing::default(),
            OrderingPolicy::IncreasingFlexibility,
            &mut rng_a,
        )
        .unwrap();
        let dec = greedy_allocation_with_policy(
            &prefs,
            2.0,
            &QuadraticPricing::default(),
            OrderingPolicy::DecreasingFlexibility,
            &mut rng_b,
        )
        .unwrap();
        let mut reversed = inc.placement_order.clone();
        reversed.reverse();
        assert_eq!(dec.placement_order, reversed);
    }

    #[test]
    fn greedy_never_exceeds_naive_peak() {
        // Placing everyone at their preferred begin time is the naive plan;
        // greedy should never do worse on the peak.
        let prefs = vec![
            pref(18, 24, 2),
            pref(18, 22, 2),
            pref(18, 20, 2),
            pref(17, 23, 3),
            pref(19, 24, 1),
        ];
        let naive: LoadProfile = LoadProfile::from_windows(
            prefs
                .iter()
                .map(|p| {
                    Interval::with_duration(p.begin(), p.duration()).unwrap()
                })
                .collect::<Vec<_>>()
                .iter(),
            2.0,
        );
        let out = run(&prefs, 5);
        assert!(out.planned_load.peak() <= naive.peak() + 1e-12);
    }
}
