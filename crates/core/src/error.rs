//! Error type shared across the Enki core crate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors reported by the Enki core model and mechanism.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An interval was empty, inverted, or extended past midnight.
    InvalidInterval {
        /// Requested begin hour.
        begin: u8,
        /// Requested (exclusive) end hour.
        end: u8,
    },
    /// A preference's duration was zero or longer than its window.
    InvalidDuration {
        /// Requested duration in hours.
        duration: u8,
        /// Length of the window the duration must fit in.
        window_len: u8,
    },
    /// A consumption or allocation window had the wrong duration for the
    /// household's preference.
    DurationMismatch {
        /// Duration of the offered window.
        got: u8,
        /// The household's preferred duration `v`.
        expected: u8,
    },
    /// An allocation or consumption window was not inside the governing
    /// interval (reported interval for allocations, true interval for
    /// consumptions).
    WindowOutsideInterval {
        /// The offending window.
        window: crate::time::Interval,
        /// The interval it must lie within.
        bounds: crate::time::Interval,
    },
    /// A configuration parameter was out of its documented range.
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// The mechanism was invoked with no households.
    EmptyNeighborhood,
    /// Two reports carried the same household id.
    DuplicateHousehold(crate::household::HouseholdId),
    /// A settlement input referenced a household with no allocation, or
    /// omitted a household that was allocated.
    UnknownHousehold(crate::household::HouseholdId),
    /// A deployment household failed to answer within a protocol phase's
    /// timeout.
    Timeout {
        /// The unresponsive household.
        household: crate::household::HouseholdId,
        /// The protocol phase that timed out (e.g. `"report"`,
        /// `"reading"`).
        phase: &'static str,
    },
    /// A value that must be a finite real number (a payment, a score, a
    /// cost) was NaN or infinite.
    NonFiniteValue {
        /// Name of the offending quantity.
        parameter: &'static str,
    },
    /// Every rung of an anytime solve pipeline failed, including the
    /// last-resort fallback.
    SolveFailed {
        /// The last stage that was attempted.
        stage: &'static str,
    },
    /// State replayed from durable storage failed the mandatory
    /// post-recovery audit: a mechanism invariant (budget balance,
    /// at-most-one bill, record ordering, ...) does not hold in the
    /// recovered settlement history. The recovered state must not be
    /// adopted.
    RecoveryAudit {
        /// Stable key of the first violated invariant (the chaos
        /// oracle's violation key, e.g. `"budget_balance"`).
        invariant: String,
        /// Total invariant violations the audit found.
        violations: usize,
    },
    /// A durable checkpoint record passed its storage checksum but
    /// could not be decoded into the expected checkpoint shape (a
    /// version or codec mismatch rather than bit rot).
    CorruptCheckpoint {
        /// Which checkpoint kind failed to decode.
        kind: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidInterval { begin, end } => {
                write!(f, "invalid interval [{begin}, {end}): intervals must be non-empty and end by hour 24")
            }
            Error::InvalidDuration {
                duration,
                window_len,
            } => write!(
                f,
                "invalid duration {duration}: must be at least 1 and at most the window length {window_len}"
            ),
            Error::DurationMismatch { got, expected } => {
                write!(f, "window has duration {got} but the preference requires exactly {expected}")
            }
            Error::WindowOutsideInterval { window, bounds } => {
                write!(f, "window {window} is not contained in interval {bounds}")
            }
            Error::InvalidConfig {
                parameter,
                constraint,
            } => write!(f, "invalid configuration: {parameter} must satisfy {constraint}"),
            Error::EmptyNeighborhood => write!(f, "the neighborhood has no households"),
            Error::DuplicateHousehold(id) => write!(f, "duplicate report for household {id}"),
            Error::UnknownHousehold(id) => {
                write!(f, "household {id} is missing from or unknown to this operation")
            }
            Error::Timeout { household, phase } => {
                write!(f, "household {household} timed out in the {phase} phase")
            }
            Error::NonFiniteValue { parameter } => {
                write!(f, "non-finite value for {parameter}")
            }
            Error::SolveFailed { stage } => {
                write!(f, "every solve stage failed; last attempted stage was {stage}")
            }
            Error::RecoveryAudit {
                invariant,
                violations,
            } => write!(
                f,
                "recovered state failed the post-recovery audit: {violations} violation(s), first {invariant}"
            ),
            Error::CorruptCheckpoint { kind } => {
                write!(f, "durable {kind} checkpoint failed to decode")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::household::HouseholdId;
    use crate::time::Interval;

    #[test]
    fn errors_display_lowercase_without_trailing_punctuation() {
        let errors: Vec<Error> = vec![
            Error::InvalidInterval { begin: 5, end: 5 },
            Error::InvalidDuration {
                duration: 9,
                window_len: 4,
            },
            Error::DurationMismatch {
                got: 3,
                expected: 2,
            },
            Error::WindowOutsideInterval {
                window: Interval::new(1, 3).unwrap(),
                bounds: Interval::new(5, 9).unwrap(),
            },
            Error::InvalidConfig {
                parameter: "xi",
                constraint: "xi >= 1",
            },
            Error::EmptyNeighborhood,
            Error::DuplicateHousehold(HouseholdId::new(7)),
            Error::UnknownHousehold(HouseholdId::new(9)),
            Error::Timeout {
                household: HouseholdId::new(2),
                phase: "report",
            },
            Error::NonFiniteValue { parameter: "payment" },
            Error::SolveFailed { stage: "greedy" },
            Error::RecoveryAudit {
                invariant: "budget_balance".to_string(),
                violations: 2,
            },
            Error::CorruptCheckpoint { kind: "center" },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "unexpected trailing period: {msg}");
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "message should start lowercase: {msg}"
            );
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<Error>();
    }
}
