//! Payment mechanisms (Eq. 7 and the §V-D proportional baseline).
//!
//! Under Enki each household pays its social-cost share of the (scaled)
//! neighborhood bill: `p_i = Ψ_i/ΣΨ · ξ·κ(ω)` with `ξ ≥ 1`, which makes the
//! center's net transfer `(ξ−1)·κ(ω) ≥ 0` (Theorem 1, ex ante budget
//! balance). Without Enki, households are price takers billed in proportion
//! to their energy use: `p^z_i = b_i/Σb · ξ·κ(ω^z)`.

use crate::social_cost::SocialCost;

/// Enki payments `p_i = Ψ_i/ΣΨ · ξ·κ(ω)` (Eq. 7), in input order.
///
/// If every `Ψ_i` is zero (impossible for well-formed scores, which are
/// bounded below by `k/3`, but tolerated for robustness) the bill is split
/// evenly.
///
/// # Examples
///
/// ```
/// # use enki_core::social_cost::social_cost_scores;
/// # use enki_core::payment::payments;
/// let psi = social_cost_scores(&[1.0, 1.0], &[0.0, 0.0], 1.0);
/// let p = payments(&psi, 1.2, 100.0);
/// // Equal scores split the scaled bill evenly; revenue is ξ·κ = 120.
/// assert_eq!(p, vec![60.0, 60.0]);
/// ```
#[must_use]
pub fn payments(scores: &[SocialCost], xi: f64, total_cost: f64) -> Vec<f64> {
    let revenue = xi * total_cost;
    share_of(scores.iter().map(|s| s.psi), scores.len(), revenue)
}

/// Proportional-allocation payments `p^z_i = b_i/Σb · ξ·κ(ω^z)` used by the
/// no-mechanism baseline of §V-D, where `b_i` is household `i`'s energy use.
#[must_use]
pub fn proportional_payments(consumed_energy: &[f64], xi: f64, total_cost: f64) -> Vec<f64> {
    let revenue = xi * total_cost;
    share_of(
        consumed_energy.iter().copied(),
        consumed_energy.len(),
        revenue,
    )
}

/// Splits `revenue` proportionally to `weights`, falling back to an even
/// split when the weights sum to zero.
fn share_of<I>(weights: I, len: usize, revenue: f64) -> Vec<f64>
where
    I: Iterator<Item = f64> + Clone,
{
    let total: f64 = weights.clone().sum();
    if total <= 0.0 {
        if len == 0 {
            return Vec::new();
        }
        return vec![revenue / len as f64; len];
    }
    weights.map(|w| w / total * revenue).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::social_cost::social_cost_scores;

    #[test]
    fn payments_sum_to_scaled_cost() {
        let psi = social_cost_scores(&[1.0, 2.0, 0.5], &[0.0, 1.0, 0.0], 1.0);
        let kappa = 87.3;
        let xi = 1.2;
        let p = payments(&psi, xi, kappa);
        let revenue: f64 = p.iter().sum();
        assert!((revenue - xi * kappa).abs() < 1e-9);
    }

    #[test]
    fn budget_balance_theorem1() {
        // U_c = Σp − κ = (ξ−1)·κ ≥ 0 for ξ ≥ 1.
        let psi = social_cost_scores(&[0.5, 1.5, 1.0], &[0.2, 0.0, 0.9], 1.0);
        let kappa = 250.0;
        for xi in [1.0, 1.2, 2.0] {
            let p = payments(&psi, xi, kappa);
            let center_utility: f64 = p.iter().sum::<f64>() - kappa;
            assert!(center_utility >= -1e-9);
            assert!((center_utility - (xi - 1.0) * kappa).abs() < 1e-9);
        }
    }

    #[test]
    fn higher_psi_pays_more() {
        let psi = social_cost_scores(&[1.0, 1.0], &[0.0, 1.0], 1.0);
        let p = payments(&psi, 1.2, 100.0);
        assert!(p[1] > p[0]);
    }

    #[test]
    fn proportional_payments_follow_energy() {
        let p = proportional_payments(&[2.0, 6.0], 1.0, 80.0);
        assert_eq!(p, vec![20.0, 60.0]);
    }

    #[test]
    fn proportional_payments_zero_energy_split_evenly() {
        let p = proportional_payments(&[0.0, 0.0], 1.5, 40.0);
        assert_eq!(p, vec![30.0, 30.0]);
    }

    #[test]
    fn empty_inputs_produce_empty_payments() {
        assert!(payments(&[], 1.2, 10.0).is_empty());
        assert!(proportional_payments(&[], 1.2, 10.0).is_empty());
    }

    #[test]
    fn payments_scale_linearly_with_xi() {
        let psi = social_cost_scores(&[1.0, 3.0], &[0.0, 0.5], 1.0);
        let p1 = payments(&psi, 1.0, 50.0);
        let p2 = payments(&psi, 2.0, 50.0);
        for (a, b) in p1.iter().zip(p2.iter()) {
            assert!((b - 2.0 * a).abs() < 1e-12);
        }
    }
}
