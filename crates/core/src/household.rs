//! Households, preferences, and household types.
//!
//! A household's *preference* `χ = (α, β, v)` says it wants `v` contiguous
//! hours of consumption anywhere inside the interval `[α, β)`. Its *type*
//! `θ = (χ, ρ)` adds the private valuation factor `ρ`, a relative measure of
//! willingness to pay (paper §IV-B).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::time::Interval;

/// Opaque identifier for a household within a neighborhood.
///
/// # Examples
///
/// ```
/// # use enki_core::household::HouseholdId;
/// let id = HouseholdId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(id.to_string(), "h3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct HouseholdId(u32);

impl HouseholdId {
    /// Creates an id from a raw index.
    #[must_use]
    pub fn new(index: u32) -> Self {
        Self(index)
    }

    /// The raw index backing the id.
    #[must_use]
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl From<u32> for HouseholdId {
    fn from(index: u32) -> Self {
        Self(index)
    }
}

impl fmt::Display for HouseholdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A consumption preference `χ = (α, β, v)`: `v` hours anywhere within the
/// window `[α, β)`.
///
/// Invariant: `1 ≤ v ≤ β − α` (paper: `β − α ≥ v`).
///
/// # Examples
///
/// ```
/// # use enki_core::household::Preference;
/// # fn main() -> Result<(), enki_core::Error> {
/// // "consume power for two hours at any time between 6PM and 10PM"
/// let pref = Preference::new(18, 22, 2)?;
/// assert_eq!(pref.feasible_starts().collect::<Vec<_>>(), vec![18, 19, 20]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Preference {
    window: Interval,
    duration: u8,
}

impl Preference {
    /// Creates the preference `(begin, end, duration)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInterval`] for a bad window and
    /// [`Error::InvalidDuration`] when the duration is zero or exceeds the
    /// window length.
    #[must_use = "dropping the Result discards the preference and skips interval validation"]
    pub fn new(begin: u8, end: u8, duration: u8) -> Result<Self> {
        Self::with_window(Interval::new(begin, end)?, duration)
    }

    /// Creates a preference from an existing window.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDuration`] when the duration is zero or
    /// exceeds the window length.
    #[must_use = "dropping the Result discards the preference and skips interval validation"]
    pub fn with_window(window: Interval, duration: u8) -> Result<Self> {
        if duration == 0 || duration > window.len() {
            return Err(Error::InvalidDuration {
                duration,
                window_len: window.len(),
            });
        }
        Ok(Self { window, duration })
    }

    /// A preference whose window is exactly its duration (no slack): the
    /// household insists on one specific placement.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInterval`] if the window does not fit the day.
    #[must_use = "dropping the Result discards the preference and skips interval validation"]
    pub fn exact(begin: u8, duration: u8) -> Result<Self> {
        Self::with_window(Interval::with_duration(begin, duration)?, duration)
    }

    /// The preferred interval `[α, β)`.
    #[must_use]
    pub fn window(&self) -> Interval {
        self.window
    }

    /// Preferred begin hour `α`.
    #[must_use]
    pub fn begin(&self) -> u8 {
        self.window.begin()
    }

    /// Preferred (exclusive) end hour `β`.
    #[must_use]
    pub fn end(&self) -> u8 {
        self.window.end()
    }

    /// Preferred duration `v` in hours.
    #[must_use]
    pub fn duration(&self) -> u8 {
        self.duration
    }

    /// Scheduling slack: the number of alternative placements minus one
    /// (`β − α − v`), i.e. the maximum deferment `d` in Eq. 2.
    #[must_use]
    pub fn slack(&self) -> u8 {
        self.window.len() - self.duration
    }

    /// Iterator over the feasible window begin hours
    /// (`α, α+1, …, β − v`).
    pub fn feasible_starts(&self) -> impl Iterator<Item = u8> + '_ {
        self.begin()..=(self.end() - self.duration)
    }

    /// Iterator over all feasible placement windows, each of length `v`.
    pub fn feasible_windows(&self) -> impl Iterator<Item = Interval> + '_ {
        let duration = self.duration;
        self.feasible_starts().map(move |s| {
            Interval::with_duration(s, duration)
                .expect("feasible start always yields a valid in-day window")
        })
    }

    /// The placement with deferment `d` from the preferred begin time.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WindowOutsideInterval`] when `d` exceeds
    /// [`slack`](Preference::slack).
    #[must_use = "dropping the Result loses the shifted window and hides an infeasible deferment"]
    pub fn window_at_deferment(&self, d: u8) -> Result<Interval> {
        if d > self.slack() {
            let window = Interval::with_duration(self.begin().saturating_add(d), self.duration)
                .unwrap_or(self.window);
            return Err(Error::WindowOutsideInterval {
                window,
                bounds: self.window,
            });
        }
        Ok(Interval::with_duration(self.begin() + d, self.duration)
            .expect("deferment within slack stays inside the day"))
    }

    /// Checks that `window` is a legal realization of this preference:
    /// exactly `v` hours long and inside `[α, β)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DurationMismatch`] or
    /// [`Error::WindowOutsideInterval`] accordingly.
    #[must_use = "an unchecked verdict lets an out-of-window consumption through"]
    pub fn validate_window(&self, window: Interval) -> Result<()> {
        if window.len() != self.duration {
            return Err(Error::DurationMismatch {
                got: window.len(),
                expected: self.duration,
            });
        }
        if !self.window.contains(&window) {
            return Err(Error::WindowOutsideInterval {
                window,
                bounds: self.window,
            });
        }
        Ok(())
    }

    /// The placement within this preference closest to `target`, measured by
    /// window overlap and then by begin-hour distance.
    ///
    /// This models the household-consumption step of the paper's user study:
    /// "selecting real consumption to be within the subject's true interval
    /// and close to his allocation" (§VII-B). If `target` already satisfies
    /// the preference it is returned unchanged.
    #[must_use]
    pub fn closest_window(&self, target: Interval) -> Interval {
        if self.validate_window(target).is_ok() {
            return target;
        }
        self.feasible_windows()
            .min_by_key(|w| {
                let dist = i32::from(w.begin()).abs_diff(i32::from(target.begin()));
                (std::cmp::Reverse(w.overlap(&target)), dist, w.begin())
            })
            .expect("a preference always has at least one feasible window")
    }
}

impl fmt::Display for Preference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, {})",
            self.window.begin(),
            self.window.end(),
            self.duration
        )
    }
}

impl std::str::FromStr for Preference {
    type Err = Error;

    /// Parses the paper's tuple notation `"(18, 22, 2)"` (or the bare
    /// `"18,22,2"` / `"18-22x2"`) as the preference `χ = (18, 22, 2)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInterval`] or [`Error::InvalidDuration`]
    /// for malformed or infeasible input.
    fn from_str(s: &str) -> Result<Self> {
        let cleaned: String = s
            .chars()
            .filter(|c| c.is_ascii_digit() || *c == ',' || *c == '-' || *c == 'x')
            .collect();
        let parts: Vec<u8> = cleaned
            .split([',', '-', 'x'])
            .filter(|p| !p.is_empty())
            .map(|p| p.parse::<u8>())
            .collect::<std::result::Result<_, _>>()
            .map_err(|_| Error::InvalidInterval { begin: 0, end: 0 })?;
        match parts.as_slice() {
            [begin, end, duration] => Self::new(*begin, *end, *duration),
            _ => Err(Error::InvalidInterval { begin: 0, end: 0 }),
        }
    }
}

/// A household's private type `θ = (χ, ρ)`: true preference plus valuation
/// factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HouseholdType {
    /// True preference `χ`.
    pub preference: Preference,
    /// Valuation factor `ρ > 0` (relative willingness to pay).
    pub valuation_factor: f64,
}

impl HouseholdType {
    /// Creates a household type.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `valuation_factor` is not a
    /// positive finite number.
    #[must_use = "dropping the Result discards the type and skips flexibility validation"]
    pub fn new(preference: Preference, valuation_factor: f64) -> Result<Self> {
        if !valuation_factor.is_finite() || valuation_factor <= 0.0 {
            return Err(Error::InvalidConfig {
                parameter: "valuation_factor",
                constraint: "a positive finite number",
            });
        }
        Ok(Self {
            preference,
            valuation_factor,
        })
    }
}

/// A preference report submitted to the neighborhood center by one household.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// Reporting household.
    pub household: HouseholdId,
    /// Reported preference `χ̂`. The paper assumes the duration component is
    /// always truthful; only the window may be misreported.
    pub preference: Preference,
}

impl Report {
    /// Creates a report.
    #[must_use]
    pub fn new(household: HouseholdId, preference: Preference) -> Self {
        Self {
            household,
            preference,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preference_rejects_duration_exceeding_window() {
        assert!(matches!(
            Preference::new(18, 20, 3),
            Err(Error::InvalidDuration {
                duration: 3,
                window_len: 2
            })
        ));
    }

    #[test]
    fn preference_rejects_zero_duration() {
        assert!(Preference::new(18, 20, 0).is_err());
    }

    #[test]
    fn preference_accepts_tight_window() {
        let p = Preference::new(18, 20, 2).unwrap();
        assert_eq!(p.slack(), 0);
        assert_eq!(p.feasible_starts().collect::<Vec<_>>(), vec![18]);
    }

    #[test]
    fn exact_constructor_has_zero_slack() {
        let p = Preference::exact(7, 3).unwrap();
        assert_eq!(p.window(), Interval::new(7, 10).unwrap());
        assert_eq!(p.slack(), 0);
    }

    #[test]
    fn feasible_windows_all_validate() {
        let p = Preference::new(16, 24, 2).unwrap();
        let windows: Vec<_> = p.feasible_windows().collect();
        assert_eq!(windows.len(), 7);
        for w in windows {
            p.validate_window(w).unwrap();
        }
    }

    #[test]
    fn window_at_deferment_walks_the_window() {
        let p = Preference::new(18, 22, 2).unwrap();
        assert_eq!(
            p.window_at_deferment(0).unwrap(),
            Interval::new(18, 20).unwrap()
        );
        assert_eq!(
            p.window_at_deferment(2).unwrap(),
            Interval::new(20, 22).unwrap()
        );
        assert!(p.window_at_deferment(3).is_err());
    }

    #[test]
    fn validate_window_rejects_wrong_duration() {
        let p = Preference::new(18, 22, 2).unwrap();
        let w = Interval::new(18, 21).unwrap();
        assert!(matches!(
            p.validate_window(w),
            Err(Error::DurationMismatch {
                got: 3,
                expected: 2
            })
        ));
    }

    #[test]
    fn validate_window_rejects_outside_interval() {
        let p = Preference::new(18, 22, 2).unwrap();
        let w = Interval::new(17, 19).unwrap();
        assert!(matches!(
            p.validate_window(w),
            Err(Error::WindowOutsideInterval { .. })
        ));
    }

    #[test]
    fn closest_window_keeps_satisfying_target() {
        let p = Preference::new(16, 24, 2).unwrap();
        let target = Interval::new(20, 22).unwrap();
        assert_eq!(p.closest_window(target), target);
    }

    #[test]
    fn closest_window_snaps_into_true_interval() {
        // Paper §V-B first scenario: true χ = (18, 20, 2), allocation
        // s = (14, 16). The defecting consumption is (18, 20).
        let truth = Preference::new(18, 20, 2).unwrap();
        let allocation = Interval::new(14, 16).unwrap();
        assert_eq!(
            truth.closest_window(allocation),
            Interval::new(18, 20).unwrap()
        );
    }

    #[test]
    fn closest_window_prefers_overlap_over_distance() {
        let truth = Preference::new(10, 16, 3).unwrap();
        // Allocation (13, 16) fits; a target (12, 15) overlapping placement
        // should beat any zero-overlap placement.
        let target = Interval::new(12, 15).unwrap();
        let chosen = truth.closest_window(target);
        assert_eq!(chosen, target);
    }

    #[test]
    fn household_type_rejects_nonpositive_rho() {
        let p = Preference::new(18, 22, 2).unwrap();
        assert!(HouseholdType::new(p, 0.0).is_err());
        assert!(HouseholdType::new(p, -3.0).is_err());
        assert!(HouseholdType::new(p, f64::NAN).is_err());
        assert!(HouseholdType::new(p, 5.0).is_ok());
    }

    #[test]
    fn display_matches_paper_notation() {
        let p = Preference::new(18, 22, 2).unwrap();
        assert_eq!(p.to_string(), "(18, 22, 2)");
    }

    #[test]
    fn parses_paper_and_compact_notations() {
        let expected = Preference::new(18, 22, 2).unwrap();
        assert_eq!("(18, 22, 2)".parse::<Preference>().unwrap(), expected);
        assert_eq!("18,22,2".parse::<Preference>().unwrap(), expected);
        assert_eq!("18-22x2".parse::<Preference>().unwrap(), expected);
        assert!("(18, 22)".parse::<Preference>().is_err());
        assert!("(18, 22, 9)".parse::<Preference>().is_err());
    }

    #[test]
    fn display_parse_round_trip() {
        let p = Preference::new(6, 14, 3).unwrap();
        assert_eq!(p.to_string().parse::<Preference>().unwrap(), p);
    }
}
