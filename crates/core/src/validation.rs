//! Admission control for household reports.
//!
//! The paper assumes every report reaching the center is a well-formed
//! preference `χ̂ = (α̂, β̂, v)`. A production center cannot: reports
//! arrive from millions of ECC units over a network, and any of them may
//! be buggy, stale, or adversarial. This module is the center's first
//! line of defense — a pure, total function from *raw* wire-level
//! reports to a structured [`AdmissionReport`] that classifies every
//! report as **accepted** (verbatim), **clamped** (repaired to the
//! nearest valid preference, with the repair recorded), or
//! **quarantined** (unrepairable; the household falls back to the
//! center's standing model of its demand, or is excluded from the day).
//!
//! A report is never *silently* altered: the verdict for each input
//! records exactly what happened, so a settled day can always answer
//! "why was this household billed for that window".
//!
//! Classification rules:
//!
//! | input defect | verdict |
//! |---|---|
//! | NaN / ±∞ in any field | quarantined ([`QuarantineReason::NonFinite`]) |
//! | inverted window (`end < begin`) | quarantined ([`QuarantineReason::InvertedWindow`]) |
//! | window entirely outside the day | quarantined ([`QuarantineReason::EmptyWindow`]) |
//! | zero or negative duration | quarantined ([`QuarantineReason::NonPositiveDuration`]) |
//! | second report for the same household | quarantined ([`QuarantineReason::DuplicateHousehold`]) |
//! | window partially outside `[0, 24)` | clamped ([`ClampReason::OutOfHorizon`]) |
//! | fractional hours | clamped inward ([`ClampReason::FractionalHours`]) |
//! | duration exceeding the window | clamped to the window length ([`ClampReason::DurationExceedsWindow`]) |
//!
//! ```
//! use enki_core::prelude::*;
//! use enki_core::validation::{admit, RawPreference, RawReport};
//!
//! let raw = vec![
//!     RawReport::new(HouseholdId::new(0), RawPreference::new(18.0, 22.0, 2.0)),
//!     RawReport::new(HouseholdId::new(1), RawPreference::new(f64::NAN, 22.0, 2.0)),
//!     RawReport::new(HouseholdId::new(2), RawPreference::new(-3.0, 20.5, 2.0)),
//! ];
//! let admission = admit(&raw);
//! assert_eq!(admission.accepted().count(), 1);
//! assert_eq!(admission.quarantined().count(), 1);
//! assert_eq!(admission.clamped().count(), 1);
//! let reports = admission.admitted();
//! assert_eq!(reports.len(), 2); // the NaN report never reaches the mechanism
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::household::{HouseholdId, Preference, Report};
use crate::time::DAY_END;

/// An unvalidated preference as it arrives off the wire: three raw
/// numbers claiming to be `(α̂, β̂, v)`. Nothing is checked at
/// construction — checking is the admission layer's job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RawPreference {
    /// Claimed window begin hour (may be anything a float can hold).
    pub begin: f64,
    /// Claimed (exclusive) window end hour.
    pub end: f64,
    /// Claimed consumption duration in hours.
    pub duration: f64,
}

impl RawPreference {
    /// Wraps three raw numbers. No validation happens here.
    #[must_use]
    pub fn new(begin: f64, end: f64, duration: f64) -> Self {
        Self {
            begin,
            end,
            duration,
        }
    }
}

impl From<Preference> for RawPreference {
    /// A validated preference is trivially a raw one.
    fn from(p: Preference) -> Self {
        Self {
            begin: f64::from(p.begin()),
            end: f64::from(p.end()),
            duration: f64::from(p.duration()),
        }
    }
}

impl fmt::Display for RawPreference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.begin, self.end, self.duration)
    }
}

/// An unvalidated report: a household id plus a raw preference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RawReport {
    /// Reporting household.
    pub household: HouseholdId,
    /// The raw claimed preference.
    pub preference: RawPreference,
}

impl RawReport {
    /// Creates a raw report.
    #[must_use]
    pub fn new(household: HouseholdId, preference: RawPreference) -> Self {
        Self {
            household,
            preference,
        }
    }
}

impl From<Report> for RawReport {
    fn from(r: Report) -> Self {
        Self {
            household: r.household,
            preference: r.preference.into(),
        }
    }
}

/// Why a report was repaired rather than accepted verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClampReason {
    /// The window extended past the day horizon and was trimmed to
    /// `[0, 24)`.
    OutOfHorizon,
    /// Begin, end, or duration was fractional and was snapped inward to
    /// the hour grid (begin up, end down, duration up).
    FractionalHours,
    /// The duration exceeded the (clamped) window and was reduced to the
    /// window length.
    DurationExceedsWindow,
}

impl fmt::Display for ClampReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OutOfHorizon => write!(f, "window trimmed to the day horizon"),
            Self::FractionalHours => write!(f, "fractional hours snapped to the grid"),
            Self::DurationExceedsWindow => {
                write!(f, "duration reduced to the window length")
            }
        }
    }
}

/// Why a report was quarantined: no valid preference can be recovered
/// from it without guessing the household's intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuarantineReason {
    /// A field was NaN or infinite.
    NonFinite,
    /// The window was inverted (`end < begin`); swapping the endpoints
    /// would invent an intent the household never expressed.
    InvertedWindow,
    /// No schedulable hour remains once the window is clamped to the day
    /// (empty as given, or entirely outside `[0, 24)`).
    EmptyWindow,
    /// The duration was zero or negative.
    NonPositiveDuration,
    /// An earlier report in the same batch already claimed this
    /// household; later claims are never trusted over the first.
    DuplicateHousehold,
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonFinite => write!(f, "non-finite field"),
            Self::InvertedWindow => write!(f, "inverted window"),
            Self::EmptyWindow => write!(f, "no schedulable hour inside the day"),
            Self::NonPositiveDuration => write!(f, "non-positive duration"),
            Self::DuplicateHousehold => write!(f, "duplicate household in the batch"),
        }
    }
}

/// The admission decision for one raw report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// The raw report was already a valid preference and was admitted
    /// verbatim.
    Accepted,
    /// The raw report was repaired into the given valid preference; every
    /// repair applied is listed.
    Clamped {
        /// The repairs applied, in application order.
        reasons: Vec<ClampReason>,
    },
    /// The raw report was rejected outright.
    Quarantined {
        /// Why no valid preference could be recovered.
        reason: QuarantineReason,
    },
}

/// One raw report's journey through admission: the input, the verdict,
/// and the admitted preference (absent when quarantined).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionEntry {
    /// The household that sent the raw report.
    pub household: HouseholdId,
    /// The raw report as received.
    pub raw: RawPreference,
    /// What admission decided.
    pub verdict: Verdict,
    /// The preference that enters the mechanism, when one was admitted.
    pub admitted: Option<Preference>,
    /// Whether this raw preference is bit-identical to the one the same
    /// household submitted on an earlier day (see
    /// [`admit_with_history`]). A replay is *flagged, not rejected*:
    /// honest households with stable routines legitimately resend the
    /// same preference every day, so the flag feeds anomaly counters
    /// rather than the verdict.
    pub cross_day_replay: bool,
}

/// The structured outcome of admitting one day's raw report batch.
///
/// Entries are in input order, one per raw report. The admitted report
/// list is duplicate-free by construction, so it can be fed straight
/// into [`Enki::allocate`](crate::mechanism::Enki::allocate).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[must_use = "an unread admission report silently drops quarantine decisions"]
pub struct AdmissionReport {
    /// Per-input decisions, aligned with the raw batch.
    pub entries: Vec<AdmissionEntry>,
}

impl AdmissionReport {
    /// The admitted (accepted or clamped) reports, in input order,
    /// duplicate-free.
    #[must_use]
    pub fn admitted(&self) -> Vec<Report> {
        self.entries
            .iter()
            .filter_map(|e| e.admitted.map(|p| Report::new(e.household, p)))
            .collect()
    }

    /// The admitted reports with quarantined households replaced by a
    /// fallback preference (e.g. the center's standing ECC-profile model
    /// of that household). Households whose fallback is `None` stay
    /// excluded. Duplicate entries never produce a fallback — only the
    /// *first* report per household can.
    pub fn admitted_with_fallback<F>(&self, mut fallback: F) -> Vec<Report>
    where
        F: FnMut(HouseholdId) -> Option<Preference>,
    {
        self.entries
            .iter()
            .filter_map(|e| match (&e.verdict, e.admitted) {
                (_, Some(p)) => Some(Report::new(e.household, p)),
                (
                    Verdict::Quarantined {
                        reason: QuarantineReason::DuplicateHousehold,
                    },
                    None,
                ) => None,
                (Verdict::Quarantined { .. }, None) => {
                    fallback(e.household).map(|p| Report::new(e.household, p))
                }
                _ => None,
            })
            .collect()
    }

    /// Entries accepted verbatim.
    pub fn accepted(&self) -> impl Iterator<Item = &AdmissionEntry> {
        self.entries
            .iter()
            .filter(|e| matches!(e.verdict, Verdict::Accepted))
    }

    /// Entries admitted after repair.
    pub fn clamped(&self) -> impl Iterator<Item = &AdmissionEntry> {
        self.entries
            .iter()
            .filter(|e| matches!(e.verdict, Verdict::Clamped { .. }))
    }

    /// Entries rejected outright.
    pub fn quarantined(&self) -> impl Iterator<Item = &AdmissionEntry> {
        self.entries
            .iter()
            .filter(|e| matches!(e.verdict, Verdict::Quarantined { .. }))
    }

    /// Whether every report in the batch was accepted verbatim.
    #[must_use]
    pub fn is_fully_accepted(&self) -> bool {
        self.entries
            .iter()
            .all(|e| matches!(e.verdict, Verdict::Accepted))
    }

    /// Entries whose raw preference exactly replays an earlier day's
    /// submission (only ever nonzero for reports admitted through
    /// [`admit_with_history`]).
    #[must_use]
    pub fn cross_day_replays(&self) -> usize {
        self.entries.iter().filter(|e| e.cross_day_replay).count()
    }
}

/// Whether two raw preferences are bit-for-bit identical.
///
/// Comparison is over the IEEE-754 bit patterns, not float equality:
/// it is total (NaN payloads compare meaningfully, `-0.0 != 0.0`) and
/// detects the byte-level replays a stuck or replaying ECC unit
/// produces, which is exactly what the wire delivers.
#[must_use]
fn same_bits(a: RawPreference, b: RawPreference) -> bool {
    a.begin.to_bits() == b.begin.to_bits()
        && a.end.to_bits() == b.end.to_bits()
        && a.duration.to_bits() == b.duration.to_bits()
}

/// Classifies one raw preference in isolation (no duplicate handling).
///
/// Returns the verdict and, unless quarantined, the admitted preference.
#[must_use]
pub fn admit_preference(raw: RawPreference) -> (Verdict, Option<Preference>) {
    let RawPreference {
        begin,
        end,
        duration,
    } = raw;
    if !begin.is_finite() || !end.is_finite() || !duration.is_finite() {
        return quarantine(QuarantineReason::NonFinite);
    }
    if end < begin {
        return quarantine(QuarantineReason::InvertedWindow);
    }
    if duration <= 0.0 {
        return quarantine(QuarantineReason::NonPositiveDuration);
    }

    let mut reasons = Vec::new();
    let horizon = f64::from(DAY_END);

    // Trim the window to the day horizon.
    let (mut b, mut e) = (begin, end);
    if b < 0.0 || e > horizon {
        b = b.max(0.0);
        e = e.min(horizon);
        reasons.push(ClampReason::OutOfHorizon);
    }
    if b >= e {
        // Entirely outside the day (or empty as given).
        return quarantine(QuarantineReason::EmptyWindow);
    }

    // Snap to the hour grid, shrinking inward: the admitted window never
    // claims an hour the household did not ask for in full.
    let (gb, ge) = (b.ceil(), e.floor());
    let mut v = duration;
    if gb != b || ge != e || v.ceil() != v {
        reasons.push(ClampReason::FractionalHours);
        v = v.ceil();
    }
    if gb >= ge {
        return quarantine(QuarantineReason::EmptyWindow);
    }

    // Fit the duration inside the admitted window.
    let window_len = ge - gb;
    if v > window_len {
        v = window_len;
        reasons.push(ClampReason::DurationExceedsWindow);
    }

    // All three values are now integers in [0, 24] with gb < ge and
    // 1 <= v <= ge - gb, so the cast and construction cannot fail.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let pref = match Preference::new(gb as u8, ge as u8, v as u8) {
        Ok(p) => p,
        // Defensive: if the arithmetic above ever leaves an
        // unrepresentable triple, quarantine rather than panic.
        Err(_) => return quarantine(QuarantineReason::EmptyWindow),
    };
    if reasons.is_empty() {
        (Verdict::Accepted, Some(pref))
    } else {
        (Verdict::Clamped { reasons }, Some(pref))
    }
}

fn quarantine(reason: QuarantineReason) -> (Verdict, Option<Preference>) {
    (Verdict::Quarantined { reason }, None)
}

/// Admits a batch of raw reports: classifies each one and quarantines
/// later duplicates of a household already seen in the batch.
///
/// Total and panic-free for every possible input.
pub fn admit(raw: &[RawReport]) -> AdmissionReport {
    admit_with_history(raw, |_| None)
}

/// [`admit`], plus cross-day replay detection against each household's
/// previously submitted raw preference.
///
/// `history` maps a household to the raw preference it submitted on an
/// earlier day, if any (the center keeps this map across days). An
/// incoming raw that is bit-for-bit identical to the household's prior
/// submission has [`AdmissionEntry::cross_day_replay`] set. The verdict
/// is unaffected — a replay of a valid preference still admits — but
/// the flag lets the center count exact-replay traffic, which separates
/// "stable routine" from "stuck or replaying reporter" when it spikes.
///
/// Total and panic-free for every possible input.
pub fn admit_with_history<H>(raw: &[RawReport], mut history: H) -> AdmissionReport
where
    H: FnMut(HouseholdId) -> Option<RawPreference>,
{
    let mut seen: Vec<HouseholdId> = Vec::with_capacity(raw.len());
    let entries = raw
        .iter()
        .map(|r| {
            let (verdict, admitted) = if seen.contains(&r.household) {
                quarantine(QuarantineReason::DuplicateHousehold)
            } else {
                seen.push(r.household);
                admit_preference(r.preference)
            };
            let cross_day_replay = history(r.household)
                .is_some_and(|prior| same_bits(prior, r.preference));
            AdmissionEntry {
                household: r.household,
                raw: r.preference,
                verdict,
                admitted,
                cross_day_replay,
            }
        })
        .collect();
    AdmissionReport { entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(h: u32, b: f64, e: f64, v: f64) -> RawReport {
        RawReport::new(HouseholdId::new(h), RawPreference::new(b, e, v))
    }

    #[test]
    fn valid_report_is_accepted_verbatim() {
        let a = admit(&[raw(0, 18.0, 22.0, 2.0)]);
        assert!(a.is_fully_accepted());
        assert_eq!(
            a.admitted(),
            vec![Report::new(
                HouseholdId::new(0),
                Preference::new(18, 22, 2).unwrap()
            )]
        );
    }

    #[test]
    fn non_finite_fields_are_quarantined() {
        for bad in [
            raw(0, f64::NAN, 22.0, 2.0),
            raw(0, 18.0, f64::INFINITY, 2.0),
            raw(0, 18.0, 22.0, f64::NEG_INFINITY),
            raw(0, f64::NAN, f64::NAN, f64::NAN),
        ] {
            let a = admit(&[bad]);
            assert_eq!(a.quarantined().count(), 1, "{bad:?}");
            assert!(a.admitted().is_empty());
            assert!(matches!(
                a.entries[0].verdict,
                Verdict::Quarantined {
                    reason: QuarantineReason::NonFinite
                }
            ));
        }
    }

    #[test]
    fn inverted_window_is_quarantined_not_swapped() {
        let a = admit(&[raw(0, 22.0, 18.0, 2.0)]);
        assert!(matches!(
            a.entries[0].verdict,
            Verdict::Quarantined {
                reason: QuarantineReason::InvertedWindow
            }
        ));
    }

    #[test]
    fn out_of_horizon_window_is_trimmed() {
        let a = admit(&[raw(0, -3.0, 30.0, 2.0)]);
        let e = &a.entries[0];
        assert_eq!(e.admitted, Some(Preference::new(0, 24, 2).unwrap()));
        match &e.verdict {
            Verdict::Clamped { reasons } => {
                assert_eq!(reasons, &vec![ClampReason::OutOfHorizon]);
            }
            other => panic!("expected a clamp, got {other:?}"),
        }
    }

    #[test]
    fn entirely_out_of_horizon_is_quarantined() {
        for bad in [raw(0, 25.0, 30.0, 2.0), raw(0, -9.0, -1.0, 1.0)] {
            let a = admit(&[bad]);
            assert!(
                matches!(
                    a.entries[0].verdict,
                    Verdict::Quarantined {
                        reason: QuarantineReason::EmptyWindow
                    }
                ),
                "{bad:?} → {:?}",
                a.entries[0].verdict
            );
        }
    }

    #[test]
    fn fractional_hours_snap_inward() {
        // [17.5, 22.3) shrinks to [18, 22): never claim a partial hour.
        let a = admit(&[raw(0, 17.5, 22.3, 2.0)]);
        let e = &a.entries[0];
        assert_eq!(e.admitted, Some(Preference::new(18, 22, 2).unwrap()));
        match &e.verdict {
            Verdict::Clamped { reasons } => {
                assert_eq!(reasons, &vec![ClampReason::FractionalHours]);
            }
            other => panic!("expected a clamp, got {other:?}"),
        }
    }

    #[test]
    fn fractional_duration_rounds_up() {
        let a = admit(&[raw(0, 18.0, 22.0, 1.2)]);
        assert_eq!(a.entries[0].admitted, Some(Preference::new(18, 22, 2).unwrap()));
    }

    #[test]
    fn sliver_window_quarantines_after_snapping() {
        // [18.2, 18.9) contains no full hour.
        let a = admit(&[raw(0, 18.2, 18.9, 1.0)]);
        assert!(matches!(
            a.entries[0].verdict,
            Verdict::Quarantined {
                reason: QuarantineReason::EmptyWindow
            }
        ));
    }

    #[test]
    fn duration_exceeding_window_is_clamped() {
        let a = admit(&[raw(0, 18.0, 20.0, 7.0)]);
        let e = &a.entries[0];
        assert_eq!(e.admitted, Some(Preference::new(18, 20, 2).unwrap()));
        match &e.verdict {
            Verdict::Clamped { reasons } => {
                assert_eq!(reasons, &vec![ClampReason::DurationExceedsWindow]);
            }
            other => panic!("expected a clamp, got {other:?}"),
        }
    }

    #[test]
    fn huge_duration_is_clamped_not_overflowed() {
        let a = admit(&[raw(0, 0.0, 24.0, 1e300)]);
        assert_eq!(a.entries[0].admitted, Some(Preference::new(0, 24, 24).unwrap()));
    }

    #[test]
    fn non_positive_duration_is_quarantined() {
        for v in [0.0, -1.0, -0.2] {
            let a = admit(&[raw(0, 18.0, 22.0, v)]);
            assert!(matches!(
                a.entries[0].verdict,
                Verdict::Quarantined {
                    reason: QuarantineReason::NonPositiveDuration
                }
            ));
        }
    }

    #[test]
    fn duplicate_household_quarantines_later_reports_only() {
        let a = admit(&[
            raw(3, 18.0, 22.0, 2.0),
            raw(3, 10.0, 14.0, 1.0),
            raw(4, 10.0, 14.0, 1.0),
        ]);
        assert_eq!(a.admitted().len(), 2);
        assert!(matches!(a.entries[0].verdict, Verdict::Accepted));
        assert!(matches!(
            a.entries[1].verdict,
            Verdict::Quarantined {
                reason: QuarantineReason::DuplicateHousehold
            }
        ));
        // Admitted output is duplicate-free.
        let ids: Vec<_> = a.admitted().iter().map(|r| r.household).collect();
        assert_eq!(ids, vec![HouseholdId::new(3), HouseholdId::new(4)]);
    }

    #[test]
    fn fallback_substitutes_quarantined_households() {
        let a = admit(&[raw(0, f64::NAN, 22.0, 2.0), raw(1, 18.0, 22.0, 2.0)]);
        let fallback = Preference::new(16, 20, 2).unwrap();
        let reports = a.admitted_with_fallback(|h| {
            (h == HouseholdId::new(0)).then_some(fallback)
        });
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0], Report::new(HouseholdId::new(0), fallback));
    }

    #[test]
    fn fallback_never_applies_to_duplicates() {
        let a = admit(&[raw(0, 18.0, 22.0, 2.0), raw(0, f64::NAN, 1.0, 1.0)]);
        let reports =
            a.admitted_with_fallback(|_| Some(Preference::new(0, 4, 1).unwrap()));
        // The duplicate must not resurrect household 0 a second time.
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].preference, Preference::new(18, 22, 2).unwrap());
    }

    #[test]
    fn fallback_none_keeps_household_excluded() {
        let a = admit(&[raw(0, f64::NAN, 22.0, 2.0)]);
        assert!(a.admitted_with_fallback(|_| None).is_empty());
    }

    #[test]
    fn cross_day_replay_is_flagged_but_still_admitted() {
        let yesterday = RawPreference::new(18.0, 22.0, 2.0);
        let a = admit_with_history(
            &[raw(0, 18.0, 22.0, 2.0), raw(1, 18.0, 22.0, 2.0)],
            |h| (h == HouseholdId::new(0)).then_some(yesterday),
        );
        assert!(a.entries[0].cross_day_replay);
        assert!(!a.entries[1].cross_day_replay, "no history, no replay");
        assert_eq!(a.cross_day_replays(), 1);
        // The verdict is untouched: a replayed valid raw still admits.
        assert_eq!(a.admitted().len(), 2);
    }

    #[test]
    fn replay_detection_is_bit_exact_not_approximate() {
        // A value differing in the last ulp is NOT a replay...
        let prior = RawPreference::new(18.0, 22.0, 2.0);
        let nudged = RawPreference::new(18.0, 22.0, f64::from_bits(2.0_f64.to_bits() + 1));
        let a = admit_with_history(
            &[RawReport::new(HouseholdId::new(0), nudged)],
            |_| Some(prior),
        );
        assert!(!a.entries[0].cross_day_replay);
        // ...while a bit-identical quarantined raw (same NaN payload)
        // still counts: replays of garbage are the interesting signal.
        let junk = RawPreference::new(f64::NAN, 22.0, 2.0);
        let a = admit_with_history(
            &[RawReport::new(HouseholdId::new(0), junk)],
            |_| Some(junk),
        );
        assert!(a.entries[0].cross_day_replay);
        assert_eq!(a.quarantined().count(), 1);
    }

    #[test]
    fn plain_admit_never_flags_replays() {
        let a = admit(&[raw(0, 18.0, 22.0, 2.0)]);
        assert_eq!(a.cross_day_replays(), 0);
    }

    #[test]
    fn round_trip_from_valid_preference_is_accepted() {
        for p in [
            Preference::new(0, 24, 24).unwrap(),
            Preference::new(18, 22, 2).unwrap(),
            Preference::new(23, 24, 1).unwrap(),
        ] {
            let (verdict, admitted) = admit_preference(p.into());
            assert_eq!(verdict, Verdict::Accepted);
            assert_eq!(admitted, Some(p));
        }
    }
}
