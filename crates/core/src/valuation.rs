//! Household valuation function (Eq. 3).
//!
//! `V(τ, v, ρ) = −ρ/(2v)·τ² + ρ·τ` for `τ ∈ [0, v]`: a household's
//! willingness to pay for an allocation that satisfies `τ` of its `v`
//! preferred hours. The function is increasing and concave in `τ` and peaks
//! at `ρ·v/2` when the allocation fully satisfies the true preference.

use crate::household::{HouseholdType, Preference};
use crate::time::Interval;

/// The valuation `V(τ, v, ρ)` of Eq. 3.
///
/// `tau` is clamped into `[0, v]`, matching the paper's domain: extra slots
/// beyond the preferred duration add no value.
///
/// # Examples
///
/// ```
/// # use enki_core::valuation::valuation;
/// // Fully satisfied 2-hour preference with ρ = 5 is worth ρ·v/2 = 5.
/// assert_eq!(valuation(2, 2, 5.0), 5.0);
/// // Half satisfied is worth more than half the maximum (concavity).
/// assert!(valuation(1, 2, 5.0) > 2.5);
/// ```
#[must_use]
pub fn valuation(tau: u8, duration: u8, rho: f64) -> f64 {
    debug_assert!(duration > 0, "duration must be positive");
    let v = f64::from(duration);
    let t = f64::from(tau.min(duration));
    -rho / (2.0 * v) * t * t + rho * t
}

/// Maximum attainable valuation `ρ·v/2`, reached at `τ = v`.
#[must_use]
pub fn max_valuation(duration: u8, rho: f64) -> f64 {
    rho * f64::from(duration) / 2.0
}

/// The valuation a household of type `θ` derives from window `window`:
/// `V(|window ∩ [α, β)|, v, ρ)`.
///
/// `window` is typically the suggested allocation `s_i`; `τ` counts the
/// slots in which the allocation satisfies the *true* preference.
#[must_use]
pub fn valuation_of_window(ty: &HouseholdType, window: Interval) -> f64 {
    let tau = satisfied_slots(&ty.preference, window);
    valuation(tau, ty.preference.duration(), ty.valuation_factor)
}

/// `τ`: the number of slots of `window` lying inside the preference's
/// interval, capped at the preferred duration `v`.
#[must_use]
pub fn satisfied_slots(preference: &Preference, window: Interval) -> u8 {
    preference
        .window()
        .overlap(&window)
        .min(preference.duration())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::household::{HouseholdType, Preference};

    #[test]
    fn valuation_zero_at_zero_overlap() {
        assert_eq!(valuation(0, 3, 7.0), 0.0);
    }

    #[test]
    fn valuation_peaks_at_full_duration() {
        for v in 1..=4u8 {
            for rho10 in 1..=10u32 {
                let rho = f64::from(rho10);
                assert!((valuation(v, v, rho) - max_valuation(v, rho)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn valuation_clamps_tau_above_duration() {
        assert_eq!(valuation(10, 2, 5.0), valuation(2, 2, 5.0));
    }

    #[test]
    fn valuation_increasing_in_tau() {
        for tau in 0..4u8 {
            assert!(valuation(tau + 1, 4, 3.0) > valuation(tau, 4, 3.0));
        }
    }

    #[test]
    fn marginal_benefit_nonincreasing() {
        // Paper criterion: the marginal benefit of τ is nonincreasing.
        let v = 4u8;
        let rho = 6.0;
        let mut last_gain = f64::INFINITY;
        for tau in 0..v {
            let gain = valuation(tau + 1, v, rho) - valuation(tau, v, rho);
            assert!(gain <= last_gain + 1e-12);
            last_gain = gain;
        }
    }

    #[test]
    fn valuation_increasing_in_rho_and_v() {
        assert!(valuation(2, 2, 6.0) > valuation(2, 2, 5.0));
        // Larger v with full satisfaction is worth more.
        assert!(valuation(3, 3, 5.0) > valuation(2, 2, 5.0));
    }

    #[test]
    fn window_valuation_uses_true_interval() {
        let truth = Preference::new(18, 20, 2).unwrap();
        let ty = HouseholdType::new(truth, 5.0).unwrap();
        // Allocation fully inside the true interval.
        let s_good = Interval::new(18, 20).unwrap();
        assert_eq!(valuation_of_window(&ty, s_good), 5.0);
        // Allocation entirely outside (the §V-B misreport scenario).
        let s_bad = Interval::new(14, 16).unwrap();
        assert_eq!(valuation_of_window(&ty, s_bad), 0.0);
        // Partial overlap.
        let s_half = Interval::new(19, 21).unwrap();
        assert_eq!(satisfied_slots(&truth, s_half), 1);
        assert!(valuation_of_window(&ty, s_half) > 0.0);
        assert!(valuation_of_window(&ty, s_half) < 5.0);
    }

    #[test]
    fn satisfied_slots_caps_at_duration() {
        // Preference wants 2 hours inside [16, 24); an (impossibly) long
        // window overlapping 6 slots still satisfies only v = 2.
        let p = Preference::new(16, 24, 2).unwrap();
        let w = Interval::new(17, 23).unwrap();
        assert_eq!(satisfied_slots(&p, w), 2);
    }
}
