//! Defection scores (Eq. 5).
//!
//! A household *defects* when its real consumption `ω_i` differs from its
//! suggested allocation `s_i`. Its defection score is
//!
//! `δ_i = (κ(s_{−i} ∪ ω_i) − κ(s)) / e^{o_i}`
//!
//! where `κ(s)` is the neighborhood cost when everyone cooperates,
//! `κ(s_{−i} ∪ ω_i)` is the cost when only household `i` deviates, and
//! `o_i = |s_i ∩ ω_i| / v_i` is the overlap fraction between the allocation
//! and the actual consumption. Cooperating households have `δ_i = 0`.
//!
//! The raw difference is floored at zero: in the paper's model a unilateral
//! deviation from the (peak-minimizing) cooperative plan cannot be credited,
//! and the score must stay non-negative for the normalization of Eq. 6.

use crate::load::LoadProfile;
use crate::pricing::Pricing;
use crate::time::Interval;

/// The overlap fraction `o_i = |s_i ∩ ω_i| / v_i ∈ [0, 1]`.
///
/// # Examples
///
/// ```
/// # use enki_core::defection::overlap_ratio;
/// # use enki_core::time::Interval;
/// # fn main() -> Result<(), enki_core::Error> {
/// // Paper §IV-B3: s = (14, 18), ω = (15, 19) ⇒ o = 3/4.
/// let s = Interval::new(14, 18)?;
/// let w = Interval::new(15, 19)?;
/// assert_eq!(overlap_ratio(s, w), 0.75);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn overlap_ratio(allocation: Interval, consumption: Interval) -> f64 {
    f64::from(allocation.overlap(&consumption)) / f64::from(allocation.len())
}

/// The defection score `δ_i` of a single household.
///
/// `planned` must be the load profile of the full cooperative plan `s`
/// (every household at its allocation, drawing `rate` kW), and
/// `cooperative_cost` its cost `κ(s)` — both are shared across households,
/// so callers compute them once.
#[must_use]
pub fn defection_score<P: Pricing + ?Sized>(
    pricing: &P,
    rate: f64,
    planned: &LoadProfile,
    cooperative_cost: f64,
    allocation: Interval,
    consumption: Interval,
) -> f64 {
    if allocation == consumption {
        return 0.0;
    }
    let mut deviated = *planned;
    deviated.remove_window(allocation, rate);
    deviated.add_window(consumption, rate);
    let harm = pricing.cost(&deviated) - cooperative_cost;
    let o = overlap_ratio(allocation, consumption);
    (harm / o.exp()).max(0.0)
}

/// Defection scores for the whole neighborhood, in input order.
///
/// # Panics
///
/// Panics in debug builds if the slices differ in length; in release the
/// shorter length governs.
#[must_use]
pub fn defection_scores<P: Pricing + ?Sized>(
    pricing: &P,
    rate: f64,
    allocations: &[Interval],
    consumptions: &[Interval],
) -> Vec<f64> {
    debug_assert_eq!(allocations.len(), consumptions.len());
    let planned = LoadProfile::from_windows(allocations, rate);
    let cooperative_cost = pricing.cost(&planned);
    allocations
        .iter()
        .zip(consumptions.iter())
        .map(|(&s, &w)| defection_score(pricing, rate, &planned, cooperative_cost, s, w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::QuadraticPricing;

    fn iv(b: u8, e: u8) -> Interval {
        Interval::new(b, e).unwrap()
    }

    #[test]
    fn cooperating_household_scores_zero() {
        let pricing = QuadraticPricing::default();
        let allocations = vec![iv(18, 20), iv(20, 22)];
        let scores = defection_scores(&pricing, 2.0, &allocations, &allocations);
        assert_eq!(scores, vec![0.0, 0.0]);
    }

    #[test]
    fn example4_defector_scores_positive() {
        // Example 4 / Fig. 3: A and B both report (18, 20, 1); allocation
        // gives A hour 18 and B hour 19; B defects onto A's hour.
        let pricing = QuadraticPricing::default();
        let allocations = vec![iv(18, 19), iv(19, 20)];
        let consumptions = vec![iv(18, 19), iv(18, 19)];
        let scores = defection_scores(&pricing, 2.0, &allocations, &consumptions);
        assert_eq!(scores[0], 0.0, "A cooperates: δ_A = 0");
        assert!(scores[1] > 0.0, "B defects: δ_B > 0");
    }

    #[test]
    fn defection_onto_peak_raises_cost_correctly() {
        let pricing = QuadraticPricing::new(1.0).unwrap();
        let allocations = vec![iv(10, 11), iv(11, 12)];
        let consumptions = vec![iv(10, 11), iv(10, 11)];
        let scores = defection_scores(&pricing, 1.0, &allocations, &consumptions);
        // κ(s) = 1 + 1 = 2; deviated loads: hour 10 carries 2 ⇒ κ = 4.
        // o = 0 ⇒ e^0 = 1 ⇒ δ = 2.
        assert!((scores[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_discounts_harm() {
        let pricing = QuadraticPricing::new(1.0).unwrap();
        // Allocation (10, 14); consumption shifted by one hour (11, 15),
        // colliding with a neighbor fixed at (14, 15).
        let allocations = vec![iv(10, 14), iv(14, 15)];
        let consumptions = vec![iv(11, 15), iv(14, 15)];
        let scores = defection_scores(&pricing, 1.0, &allocations, &consumptions);
        // Deviated profile: hours 11-13 carry 1, hour 14 carries 2, hour 10
        // empty: κ' = 3 + 4 = 7; κ(s) = 4 + 1 = 5; harm = 2, o = 3/4.
        let expected = 2.0 / (0.75f64).exp();
        assert!((scores[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn beneficial_deviation_is_floored_at_zero() {
        let pricing = QuadraticPricing::new(1.0).unwrap();
        // A deliberately bad "plan" stacks both households; household 1
        // deviating to a quiet hour lowers the cost, which must not produce
        // a negative score.
        let allocations = vec![iv(18, 19), iv(18, 19)];
        let consumptions = vec![iv(18, 19), iv(3, 4)];
        let scores = defection_scores(&pricing, 1.0, &allocations, &consumptions);
        assert_eq!(scores[1], 0.0);
    }

    #[test]
    fn higher_overlap_means_smaller_score_for_same_harm() {
        // Two deviations with identical marginal harm but different overlap:
        // the one that mostly follows its allocation is punished less
        // (the e^{o_i} discount). Allocation (8, 12) plus a fixed neighbor
        // at hour 12; shifting to (9, 13) or jumping to (12, 16) both
        // collide with the neighbor for exactly one hour (harm = 2), but the
        // shift keeps overlap o = 3/4 while the jump has o = 0.
        let pricing = QuadraticPricing::new(1.0).unwrap();
        let mut planned = LoadProfile::from_windows([iv(8, 12)].iter(), 1.0);
        planned.add_at(12, 1.0);
        let k = pricing.cost(&planned);
        let shifted = defection_score(&pricing, 1.0, &planned, k, iv(8, 12), iv(9, 13));
        let jumped = defection_score(&pricing, 1.0, &planned, k, iv(8, 12), iv(12, 16));
        assert!((jumped - 2.0).abs() < 1e-12);
        assert!((shifted - 2.0 / 0.75f64.exp()).abs() < 1e-12);
        assert!(shifted < jumped);
    }

    #[test]
    fn overlap_ratio_bounds() {
        assert_eq!(overlap_ratio(iv(10, 12), iv(10, 12)), 1.0);
        assert_eq!(overlap_ratio(iv(10, 12), iv(14, 16)), 0.0);
        let o = overlap_ratio(iv(10, 14), iv(12, 16));
        assert!((o - 0.5).abs() < 1e-12);
    }
}
