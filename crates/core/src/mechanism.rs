//! The Enki mechanism: reports → allocations → settlement.
//!
//! [`Enki`] is the neighborhood center of Figure 1. Each day it
//!
//! 1. collects one [`Report`] per household ([`Enki::allocate`]) and
//!    computes suggested windows with the greedy allocator (§IV-C);
//! 2. observes each household's real consumption and settles the day
//!    ([`Enki::settle`]): realized flexibility and defection scores,
//!    social-cost scores (Eq. 6), payments (Eq. 7), and the center's
//!    budget position (Theorem 1);
//! 3. optionally evaluates a household's quasilinear utility (Eq. 8) given
//!    its private type.
//!
//! The no-mechanism baseline of §V-D (price-taking households billed in
//! proportion to energy) is available as
//! [`Enki::proportional_settlement`].

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::allocation::{greedy_allocation, GreedyOutcome};
use crate::config::EnkiConfig;
use crate::defection::{defection_score, overlap_ratio};
use crate::error::{Error, Result};
use crate::flexibility::flexibility_scores;
use crate::household::{HouseholdId, HouseholdType, Report};
use crate::load::LoadProfile;
use crate::payment::{payments, proportional_payments};
use crate::pricing::Pricing;
use crate::social_cost::{social_cost_scores, SocialCost};
use crate::time::Interval;
use crate::valuation::{satisfied_slots, valuation};

/// One household's suggested allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// The household this window is suggested to.
    pub household: HouseholdId,
    /// Suggested consumption window `s_i` (inside the reported interval,
    /// exactly `v_i` hours long).
    pub window: Interval,
}

/// Result of the allocation step for a whole neighborhood.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationOutcome {
    /// Suggested windows aligned with the input reports.
    pub assignments: Vec<Assignment>,
    /// Predicted flexibility scores (Eq. 4), aligned with the reports.
    pub predicted_flexibility: Vec<f64>,
    /// Order in which households were placed (least flexible first).
    pub placement_order: Vec<usize>,
    /// Load profile if every household follows its window.
    pub planned_load: LoadProfile,
    /// Neighborhood cost `κ(s)` of the planned load.
    pub planned_cost: f64,
}

impl AllocationOutcome {
    /// The suggested window for `household`, if it was part of the day.
    #[must_use]
    pub fn window_for(&self, household: HouseholdId) -> Option<Interval> {
        self.assignments
            .iter()
            .find(|a| a.household == household)
            .map(|a| a.window)
    }
}

/// A household's settled day: scores, payment, and the data they came from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SettlementEntry {
    /// The settled household.
    pub household: HouseholdId,
    /// Suggested window `s_i`.
    pub allocation: Interval,
    /// Real consumption `ω_i`.
    pub consumption: Interval,
    /// Whether the household deviated from its allocation (`ω_i ≠ s_i`).
    pub defected: bool,
    /// Overlap fraction `o_i = |s_i ∩ ω_i|/v_i`.
    pub overlap: f64,
    /// Realized flexibility (Eq. 4; zero when the household defected).
    pub flexibility: f64,
    /// Defection score `δ_i` (Eq. 5).
    pub defection: f64,
    /// Normalized scores and `Ψ_i` (Eq. 6).
    pub social_cost: SocialCost,
    /// Payment `p_i` (Eq. 7).
    pub payment: f64,
}

/// The settled day for a whole neighborhood.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Settlement {
    /// Per-household results aligned with the reports passed to
    /// [`Enki::settle`].
    pub entries: Vec<SettlementEntry>,
    /// Realized load profile from actual consumption.
    pub load: LoadProfile,
    /// Neighborhood cost `κ(ω)` paid to the power company.
    pub total_cost: f64,
    /// Revenue collected from households (`Σ p_i = ξ·κ(ω)`).
    pub revenue: f64,
    /// Center utility `Σ p_i − κ(ω) = (ξ−1)·κ(ω)` (Theorem 1).
    pub center_utility: f64,
}

impl Settlement {
    /// The entry for `household`, if present.
    #[must_use]
    pub fn entry_for(&self, household: HouseholdId) -> Option<&SettlementEntry> {
        self.entries.iter().find(|e| e.household == household)
    }

    /// Verifies the settlement's accounting invariants against a
    /// configuration: every aggregate and per-household value is a finite
    /// real number, payments sum to `ξ·κ(ω)`, the center's utility is
    /// `(ξ−1)·κ(ω) ≥ 0`, every normalized score lies in `[½, 1½]`, and
    /// every bill is non-negative (the mechanism never pays households).
    /// Useful for downstream consumers that deserialize settlements from
    /// storage or the network, and called by the chaos oracle on every
    /// settled day.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonFiniteValue`] when any value is NaN or
    /// infinite, and [`Error::InvalidConfig`] naming the violated
    /// accounting invariant otherwise.
    #[must_use = "an unchecked verdict silently skips the Theorem 1 budget-balance check"]
    pub fn verify(&self, config: &EnkiConfig) -> Result<()> {
        let finite = |value: f64, parameter: &'static str| {
            if value.is_finite() {
                Ok(())
            } else {
                Err(Error::NonFiniteValue { parameter })
            }
        };
        finite(self.total_cost, "total_cost")?;
        finite(self.revenue, "revenue")?;
        finite(self.center_utility, "center_utility")?;
        for &hour in self.load.hours() {
            finite(hour, "load")?;
        }
        for e in &self.entries {
            finite(e.payment, "payment")?;
            finite(e.overlap, "overlap")?;
            finite(e.flexibility, "flexibility")?;
            finite(e.defection, "defection")?;
            finite(e.social_cost.normalized_flexibility, "normalized_flexibility")?;
            finite(e.social_cost.normalized_defection, "normalized_defection")?;
            finite(e.social_cost.psi, "psi")?;
        }
        let tolerance = 1e-6 * (1.0 + self.total_cost.abs());
        if (self.revenue - config.xi() * self.total_cost).abs() > tolerance {
            return Err(Error::InvalidConfig {
                parameter: "revenue",
                constraint: "xi * total_cost (Eq. 7)",
            });
        }
        if (self.center_utility - (self.revenue - self.total_cost)).abs() > tolerance
            || self.center_utility < -tolerance
        {
            return Err(Error::InvalidConfig {
                parameter: "center_utility",
                constraint: "(xi - 1) * total_cost >= 0 (Theorem 1)",
            });
        }
        let paid: f64 = self.entries.iter().map(|e| e.payment).sum();
        if (paid - self.revenue).abs() > tolerance {
            return Err(Error::InvalidConfig {
                parameter: "payments",
                constraint: "summing exactly to the revenue",
            });
        }
        for e in &self.entries {
            let sc = e.social_cost;
            let in_band = |x: f64| (0.5 - 1e-9..=1.5 + 1e-9).contains(&x);
            if !in_band(sc.normalized_flexibility) || !in_band(sc.normalized_defection) {
                return Err(Error::InvalidConfig {
                    parameter: "entry scores",
                    constraint: "normalized scores in [1/2, 3/2]",
                });
            }
            if e.payment < -1e-9 {
                return Err(Error::InvalidConfig {
                    parameter: "payment",
                    constraint: "non-negative bills (the center never pays households)",
                });
            }
        }
        Ok(())
    }
}

/// The §V-D no-mechanism baseline: every household consumes at will and is
/// billed proportionally to its energy use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineSettlement {
    /// Per-household payments `p^z_i`, aligned with the consumption input.
    pub payments: Vec<f64>,
    /// Realized load profile.
    pub load: LoadProfile,
    /// Neighborhood cost `κ(ω^z)`.
    pub total_cost: f64,
}

/// The Enki neighborhood center.
///
/// # Examples
///
/// One full day for a two-household neighborhood:
///
/// ```
/// # use enki_core::prelude::*;
/// # use rand::SeedableRng;
/// # fn main() -> Result<(), enki_core::Error> {
/// let enki = Enki::new(EnkiConfig::default());
/// let reports = vec![
///     Report::new(HouseholdId::new(0), Preference::new(18, 20, 1)?),
///     Report::new(HouseholdId::new(1), Preference::new(18, 20, 1)?),
/// ];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let outcome = enki.allocate(&reports, &mut rng)?;
/// // Everyone follows their allocation:
/// let consumption: Vec<_> = outcome.assignments.iter().map(|a| a.window).collect();
/// let settlement = enki.settle(&reports, &outcome, &consumption)?;
/// assert!(settlement.center_utility >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Enki {
    config: EnkiConfig,
}

impl Enki {
    /// Creates a center with the given configuration.
    #[must_use]
    pub fn new(config: EnkiConfig) -> Self {
        Self { config }
    }

    /// The center's configuration.
    #[must_use]
    pub fn config(&self) -> &EnkiConfig {
        &self.config
    }

    /// Admission step: classifies a batch of raw wire-level reports as
    /// accepted, clamped, or quarantined before any of them can reach the
    /// mechanism. Total and panic-free for every possible input; see
    /// [`validation::admit`](crate::validation::admit).
    pub fn admit(&self, raw: &[crate::validation::RawReport]) -> crate::validation::AdmissionReport {
        crate::validation::admit(raw)
    }

    /// [`admit`](Enki::admit), plus cross-day replay flagging against
    /// each household's previously submitted raw preference; see
    /// [`validation::admit_with_history`](crate::validation::admit_with_history).
    pub fn admit_with_history<H>(
        &self,
        raw: &[crate::validation::RawReport],
        history: H,
    ) -> crate::validation::AdmissionReport
    where
        H: FnMut(crate::household::HouseholdId) -> Option<crate::validation::RawPreference>,
    {
        crate::validation::admit_with_history(raw, history)
    }

    /// Allocation step: computes suggested windows from the day's reports.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyNeighborhood`] with no reports and
    /// [`Error::DuplicateHousehold`] when two reports share an id.
    #[must_use = "dropping the outcome discards the day-ahead schedule and any rejection"]
    pub fn allocate<R: Rng + ?Sized>(
        &self,
        reports: &[Report],
        rng: &mut R,
    ) -> Result<AllocationOutcome> {
        validate_unique(reports)?;
        let preferences: Vec<_> = reports.iter().map(|r| r.preference).collect();
        let pricing = self.config.pricing();
        let GreedyOutcome {
            windows,
            placement_order,
            predicted_flexibility,
            planned_load,
        } = greedy_allocation(&preferences, self.config.rate(), &pricing, rng)?;
        let planned_cost = pricing.cost(&planned_load);
        Ok(AllocationOutcome {
            assignments: reports
                .iter()
                .zip(windows)
                .map(|(r, window)| Assignment {
                    household: r.household,
                    window,
                })
                .collect(),
            predicted_flexibility,
            placement_order,
            planned_load,
            planned_cost,
        })
    }

    /// Settlement step: given the day's reports, allocation, and real
    /// consumption (aligned with the reports), computes scores, payments,
    /// and the center's budget position.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownHousehold`] if the allocation does not cover
    /// exactly the reported households, [`Error::EmptyNeighborhood`] for an
    /// empty day, and [`Error::DurationMismatch`] when a consumption window
    /// has the wrong length for its household's duration. Consumption
    /// windows are *not* checked against true intervals — the center never
    /// learns true preferences.
    #[must_use = "dropping the settlement loses the bills and ignores malformed consumption"]
    pub fn settle(
        &self,
        reports: &[Report],
        outcome: &AllocationOutcome,
        consumption: &[Interval],
    ) -> Result<Settlement> {
        if reports.is_empty() {
            return Err(Error::EmptyNeighborhood);
        }
        validate_unique(reports)?;
        if outcome.assignments.len() != reports.len() || consumption.len() != reports.len() {
            let missing = reports
                .iter()
                .map(|r| r.household)
                .find(|h| outcome.window_for(*h).is_none())
                .unwrap_or_else(|| reports[0].household);
            return Err(Error::UnknownHousehold(missing));
        }
        let pricing = self.config.pricing();
        let rate = self.config.rate();

        let mut allocations = Vec::with_capacity(reports.len());
        for report in reports {
            let window = outcome
                .window_for(report.household)
                .ok_or(Error::UnknownHousehold(report.household))?;
            allocations.push(window);
        }
        for (report, (s, w)) in reports.iter().zip(allocations.iter().zip(consumption)) {
            if w.len() != s.len() {
                return Err(Error::DurationMismatch {
                    got: w.len(),
                    expected: report.preference.duration(),
                });
            }
        }

        // Realized load and cost κ(ω), computed canonically through the
        // integer unit counts: every hour carries a whole number of unit
        // jobs at the shared `rate`, so κ = σ·rate²·Σc² with Σc² exact in
        // `u64`. Consumption layouts that tie in Σc² settle to
        // bit-identical bills — float rounding depends only on the sum of
        // squares, never on which hours carry the load.
        let load = LoadProfile::from_windows(consumption, rate);
        let mut unit_counts = [0u64; crate::time::HOURS_PER_DAY];
        for w in consumption {
            for h in w.begin()..w.end() {
                unit_counts[usize::from(h)] += 1;
            }
        }
        let unit_sumsq: u64 = unit_counts.iter().map(|&c| c * c).sum();
        let total_cost = pricing.cost_of_sum_of_squares(rate * rate * unit_sumsq as f64);

        // Scores: realized flexibility zeroes out for defectors (§IV-B3);
        // defection compares each unilateral deviation against the plan.
        let reported_prefs: Vec<_> = reports.iter().map(|r| r.preference).collect();
        let reported_flexibility = flexibility_scores(&reported_prefs);
        let planned_cost = pricing.cost(&outcome.planned_load);
        let mut flexibility = Vec::with_capacity(reports.len());
        let mut defection = Vec::with_capacity(reports.len());
        for (i, (&s, &w)) in allocations.iter().zip(consumption.iter()).enumerate() {
            let defected = s != w;
            flexibility.push(if defected { 0.0 } else { reported_flexibility[i] });
            defection.push(defection_score(
                &pricing,
                rate,
                &outcome.planned_load,
                planned_cost,
                s,
                w,
            ));
        }

        let social = social_cost_scores(&flexibility, &defection, self.config.k());
        let pays = payments(&social, self.config.xi(), total_cost);
        let revenue: f64 = pays.iter().sum();

        let entries = reports
            .iter()
            .enumerate()
            .map(|(i, report)| SettlementEntry {
                household: report.household,
                allocation: allocations[i],
                consumption: consumption[i],
                defected: allocations[i] != consumption[i],
                overlap: overlap_ratio(allocations[i], consumption[i]),
                flexibility: flexibility[i],
                defection: defection[i],
                social_cost: social[i],
                payment: pays[i],
            })
            .collect();

        Ok(Settlement {
            entries,
            load,
            total_cost,
            revenue,
            center_utility: revenue - total_cost,
        })
    }

    /// Quasilinear utility (Eq. 8) of a household with private type `ty`
    /// given its settled entry: `U_i = V(τ_i, v_i, ρ_i) − p_i`, where `τ_i`
    /// is the overlap between the *allocation* and the true interval.
    #[must_use]
    pub fn utility(&self, ty: &HouseholdType, entry: &SettlementEntry) -> f64 {
        let tau = satisfied_slots(&ty.preference, entry.allocation);
        valuation(tau, ty.preference.duration(), ty.valuation_factor) - entry.payment
    }

    /// The §V-D baseline: no mechanism, every household consumes `windows`
    /// at will and pays proportionally to its energy (`p^z_i`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyNeighborhood`] when `windows` is empty.
    #[must_use = "dropping the settlement loses the baseline bills used for comparison"]
    pub fn proportional_settlement(&self, windows: &[Interval]) -> Result<BaselineSettlement> {
        if windows.is_empty() {
            return Err(Error::EmptyNeighborhood);
        }
        let pricing = self.config.pricing();
        let rate = self.config.rate();
        let load = LoadProfile::from_windows(windows, rate);
        let total_cost = pricing.cost(&load);
        let energy: Vec<f64> = windows.iter().map(|w| f64::from(w.len()) * rate).collect();
        let payments = proportional_payments(&energy, self.config.xi(), total_cost);
        Ok(BaselineSettlement {
            payments,
            load,
            total_cost,
        })
    }
}

impl Default for Enki {
    /// A center with the paper's §VI parameters.
    fn default() -> Self {
        Self::new(EnkiConfig::default())
    }
}

fn validate_unique(reports: &[Report]) -> Result<()> {
    if reports.is_empty() {
        return Err(Error::EmptyNeighborhood);
    }
    let mut ids: Vec<HouseholdId> = reports.iter().map(|r| r.household).collect();
    ids.sort_unstable();
    for pair in ids.windows(2) {
        if pair[0] == pair[1] {
            return Err(Error::DuplicateHousehold(pair[0]));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::household::Preference;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pref(b: u8, e: u8, v: u8) -> Preference {
        Preference::new(b, e, v).unwrap()
    }

    fn reports(prefs: &[Preference]) -> Vec<Report> {
        prefs
            .iter()
            .enumerate()
            .map(|(i, &p)| Report::new(HouseholdId::new(i as u32), p))
            .collect()
    }

    fn iv(b: u8, e: u8) -> Interval {
        Interval::new(b, e).unwrap()
    }

    #[test]
    fn allocate_rejects_duplicates() {
        let enki = Enki::default();
        let mut rng = StdRng::seed_from_u64(0);
        let rs = vec![
            Report::new(HouseholdId::new(1), pref(18, 20, 1)),
            Report::new(HouseholdId::new(1), pref(18, 20, 1)),
        ];
        assert!(matches!(
            enki.allocate(&rs, &mut rng),
            Err(Error::DuplicateHousehold(_))
        ));
    }

    #[test]
    fn allocate_rejects_empty() {
        let enki = Enki::default();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            enki.allocate(&[], &mut rng),
            Err(Error::EmptyNeighborhood)
        ));
    }

    #[test]
    fn full_cooperative_day_balances_budget() {
        let enki = Enki::default();
        let mut rng = StdRng::seed_from_u64(7);
        let rs = reports(&[pref(18, 22, 2), pref(16, 24, 3), pref(18, 20, 2)]);
        let outcome = enki.allocate(&rs, &mut rng).unwrap();
        let consumption: Vec<_> = outcome.assignments.iter().map(|a| a.window).collect();
        let st = enki.settle(&rs, &outcome, &consumption).unwrap();
        // Theorem 1: center utility = (ξ−1)·κ(ω) ≥ 0.
        assert!((st.center_utility - 0.2 * st.total_cost).abs() < 1e-9);
        assert!(st.center_utility >= 0.0);
        // Nobody defected.
        for e in &st.entries {
            assert!(!e.defected);
            assert_eq!(e.defection, 0.0);
            assert_eq!(e.overlap, 1.0);
            assert!(e.flexibility > 0.0);
        }
    }

    #[test]
    fn example4_defector_pays_more() {
        // Example 4 / Fig. 3: both report (18, 20, 1); B overrides its
        // allocation onto A's hour and must pay more.
        let enki = Enki::default();
        let mut rng = StdRng::seed_from_u64(3);
        let rs = reports(&[pref(18, 20, 1), pref(18, 20, 1)]);
        let outcome = enki.allocate(&rs, &mut rng).unwrap();
        let a = outcome.assignments[0].window;
        let consumption = vec![a, a]; // B consumes A's hour
        let st = enki.settle(&rs, &outcome, &consumption).unwrap();
        assert!(!st.entries[0].defected);
        assert!(st.entries[1].defected);
        assert!(st.entries[1].defection > 0.0);
        assert!(st.entries[1].payment > st.entries[0].payment);
    }

    #[test]
    fn example1_identical_households_pay_equally() {
        let enki = Enki::default();
        let mut rng = StdRng::seed_from_u64(11);
        let rs = reports(&[pref(18, 20, 1), pref(18, 20, 1)]);
        let outcome = enki.allocate(&rs, &mut rng).unwrap();
        let consumption: Vec<_> = outcome.assignments.iter().map(|a| a.window).collect();
        let st = enki.settle(&rs, &outcome, &consumption).unwrap();
        assert!((st.entries[0].payment - st.entries[1].payment).abs() < 1e-9);
    }

    #[test]
    fn example2_narrower_interval_pays_more() {
        // Example 2: A truthfully reports a narrower interval and pays more.
        let enki = Enki::default();
        let mut rng = StdRng::seed_from_u64(5);
        let rs = reports(&[pref(18, 19, 1), pref(18, 20, 1), pref(18, 20, 1)]);
        let outcome = enki.allocate(&rs, &mut rng).unwrap();
        let consumption: Vec<_> = outcome.assignments.iter().map(|a| a.window).collect();
        let st = enki.settle(&rs, &outcome, &consumption).unwrap();
        assert!(st.entries[0].payment > st.entries[1].payment);
        assert!((st.entries[1].payment - st.entries[2].payment).abs() < 1e-9);
    }

    #[test]
    fn settle_rejects_wrong_duration_consumption() {
        let enki = Enki::default();
        let mut rng = StdRng::seed_from_u64(0);
        let rs = reports(&[pref(18, 22, 2)]);
        let outcome = enki.allocate(&rs, &mut rng).unwrap();
        let bad = vec![iv(18, 21)];
        assert!(matches!(
            enki.settle(&rs, &outcome, &bad),
            Err(Error::DurationMismatch { .. })
        ));
    }

    #[test]
    fn settle_rejects_misaligned_consumption() {
        let enki = Enki::default();
        let mut rng = StdRng::seed_from_u64(0);
        let rs = reports(&[pref(18, 22, 2), pref(18, 22, 2)]);
        let outcome = enki.allocate(&rs, &mut rng).unwrap();
        assert!(enki.settle(&rs, &outcome, &[iv(18, 20)]).is_err());
    }

    #[test]
    fn utility_uses_true_preference_not_report() {
        // §V-B scenario 1: true (18,20,2), misreported as (14,20,2),
        // allocated (14,16): τ = 0 ⇒ valuation 0 ⇒ utility = −payment.
        let enki = Enki::default();
        let truth = HouseholdType::new(pref(18, 20, 2), 5.0).unwrap();
        let entry = SettlementEntry {
            household: HouseholdId::new(0),
            allocation: iv(14, 16),
            consumption: iv(18, 20),
            defected: true,
            overlap: 0.0,
            flexibility: 0.0,
            defection: 1.0,
            social_cost: crate::social_cost::SocialCost {
                normalized_flexibility: 0.5,
                normalized_defection: 1.5,
                psi: 3.0,
            },
            payment: 4.0,
        };
        assert_eq!(enki.utility(&truth, &entry), -4.0);
        // Truthful counterpart: allocation inside the true interval.
        let good = SettlementEntry {
            allocation: iv(18, 20),
            payment: 4.0,
            ..entry
        };
        assert_eq!(enki.utility(&truth, &good), 5.0 - 4.0);
    }

    #[test]
    fn proportional_settlement_charges_by_energy() {
        let enki = Enki::default();
        let st = enki
            .proportional_settlement(&[iv(18, 20), iv(18, 22)])
            .unwrap();
        // Energies 4 and 8 kWh: payments 1:2.
        assert!((st.payments[1] / st.payments[0] - 2.0).abs() < 1e-9);
        let revenue: f64 = st.payments.iter().sum();
        assert!((revenue - 1.2 * st.total_cost).abs() < 1e-9);
    }

    #[test]
    fn proportional_settlement_rejects_empty() {
        let enki = Enki::default();
        assert!(matches!(
            enki.proportional_settlement(&[]),
            Err(Error::EmptyNeighborhood)
        ));
    }

    #[test]
    fn defection_zeroes_realized_flexibility() {
        let enki = Enki::default();
        let mut rng = StdRng::seed_from_u64(2);
        let rs = reports(&[pref(16, 24, 2), pref(18, 20, 2)]);
        let outcome = enki.allocate(&rs, &mut rng).unwrap();
        let mut consumption: Vec<_> = outcome.assignments.iter().map(|a| a.window).collect();
        // Household 0 deviates by one hour.
        let w = consumption[0];
        consumption[0] = if w.begin() > 16 {
            iv(w.begin() - 1, w.end() - 1)
        } else {
            iv(w.begin() + 1, w.end() + 1)
        };
        let st = enki.settle(&rs, &outcome, &consumption).unwrap();
        assert!(st.entries[0].defected);
        assert_eq!(st.entries[0].flexibility, 0.0);
        assert!(st.entries[1].flexibility > 0.0);
    }

    #[test]
    fn verify_accepts_real_settlements_and_rejects_tampering() {
        let enki = Enki::default();
        let mut rng = StdRng::seed_from_u64(8);
        let rs = reports(&[pref(18, 22, 2), pref(16, 24, 3)]);
        let outcome = enki.allocate(&rs, &mut rng).unwrap();
        let consumption: Vec<_> = outcome.assignments.iter().map(|a| a.window).collect();
        let st = enki.settle(&rs, &outcome, &consumption).unwrap();
        st.verify(enki.config()).unwrap();
        // Tampering with a payment breaks the invariant.
        let mut bad = st.clone();
        bad.entries[0].payment += 1.0;
        assert!(bad.verify(enki.config()).is_err());
        let mut bad = st;
        bad.center_utility = -5.0;
        assert!(bad.verify(enki.config()).is_err());
    }

    #[test]
    fn verify_rejects_non_finite_and_negative_values() {
        let enki = Enki::default();
        let mut rng = StdRng::seed_from_u64(9);
        let rs = reports(&[pref(18, 22, 2), pref(16, 24, 3)]);
        let outcome = enki.allocate(&rs, &mut rng).unwrap();
        let consumption: Vec<_> = outcome.assignments.iter().map(|a| a.window).collect();
        let st = enki.settle(&rs, &outcome, &consumption).unwrap();

        let mut bad = st.clone();
        bad.entries[0].payment = f64::NAN;
        assert!(matches!(
            bad.verify(enki.config()),
            Err(Error::NonFiniteValue { parameter: "payment" })
        ));

        let mut bad = st.clone();
        bad.revenue = f64::INFINITY;
        assert!(matches!(
            bad.verify(enki.config()),
            Err(Error::NonFiniteValue { parameter: "revenue" })
        ));

        let mut bad = st.clone();
        bad.entries[1].social_cost.psi = f64::NAN;
        assert!(matches!(
            bad.verify(enki.config()),
            Err(Error::NonFiniteValue { parameter: "psi" })
        ));

        // A negative bill is rejected even if the totals are rebalanced to
        // keep the sums consistent.
        let mut bad = st;
        let shift = bad.entries[0].payment + 1.0;
        bad.entries[0].payment -= shift;
        bad.entries[1].payment += shift;
        assert!(matches!(
            bad.verify(enki.config()),
            Err(Error::InvalidConfig { parameter: "payment", .. })
        ));
    }

    #[test]
    fn settlement_revenue_equals_xi_times_cost() {
        let enki = Enki::new(EnkiConfig::builder().xi(1.5).build().unwrap());
        let mut rng = StdRng::seed_from_u64(20);
        let rs = reports(&[pref(10, 16, 2), pref(12, 18, 3), pref(14, 20, 1)]);
        let outcome = enki.allocate(&rs, &mut rng).unwrap();
        let consumption: Vec<_> = outcome.assignments.iter().map(|a| a.window).collect();
        let st = enki.settle(&rs, &outcome, &consumption).unwrap();
        assert!((st.revenue - 1.5 * st.total_cost).abs() < 1e-9);
    }
}
