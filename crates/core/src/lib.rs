//! # enki-core
//!
//! A from-scratch implementation of **Enki**, the cooperative demand-side
//! management (DSM) mechanism of *"A Mechanism for Cooperative Demand-Side
//! Management"* (Yuan, Hang, Huhns, Singh — ICDCS 2017).
//!
//! Enki is a day-ahead mechanism for a neighborhood of households. Each
//! household reports a preferred consumption window and duration
//! (`χ̂ = (α̂, β̂, v)`); the neighborhood center computes suggested windows
//! that respect every report while flattening the aggregate load (a greedy
//! approximation of the MIQP in Eq. 2); and after the day, each household is
//! billed its share of the neighborhood's quadratic wholesale cost,
//! weighted by a *social-cost score* that rewards flexibility and punishes
//! defection. The mechanism is ex ante budget balanced (Theorem 1), weakly
//! Bayesian incentive-compatible (Theorem 2), and weakly Pareto efficient
//! (Theorem 3).
//!
//! ## Quick start
//!
//! ```
//! use enki_core::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), enki_core::Error> {
//! // Three households declare tomorrow's demand.
//! let reports = vec![
//!     Report::new(HouseholdId::new(0), Preference::new(16, 18, 2)?),
//!     Report::new(HouseholdId::new(1), Preference::new(18, 21, 2)?),
//!     Report::new(HouseholdId::new(2), Preference::new(18, 21, 2)?),
//! ];
//!
//! let enki = Enki::new(EnkiConfig::default());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2017);
//!
//! // Day-ahead: suggested windows.
//! let outcome = enki.allocate(&reports, &mut rng)?;
//!
//! // Everyone cooperates; settle the day.
//! let consumption: Vec<_> = outcome.assignments.iter().map(|a| a.window).collect();
//! let settlement = enki.settle(&reports, &outcome, &consumption)?;
//!
//! // The center never runs a deficit (Theorem 1).
//! assert!(settlement.center_utility >= 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Module tour
//!
//! * [`time`] — hours and half-open hour intervals.
//! * [`household`] — preferences `χ`, types `θ = (χ, ρ)`, reports.
//! * [`load`] / [`pricing`] — hourly load profiles and the quadratic cost
//!   `κ(ω) = Σ σ·l_h²` (plus the two-step convex alternative).
//! * [`valuation`] — Eq. 3, the concave willingness-to-pay.
//! * [`flexibility`] / [`defection`] — the two halves of the social-cost
//!   score (Eqs. 4–5).
//! * [`social_cost`] / [`payment`] — normalization, `Ψ_i`, and payments
//!   (Eqs. 6–7), plus the proportional no-mechanism baseline.
//! * [`allocation`] — the greedy scheduler (§IV-C).
//! * [`mechanism`] — [`Enki`](mechanism::Enki), the center orchestrating a
//!   full day.
//! * [`validation`] — admission control: raw wire-level reports are
//!   accepted, clamped, or quarantined before they can reach the
//!   mechanism.
//! * [`float`] — total-order and tolerant f64 comparison (the sanctioned
//!   alternative to `partial_cmp().unwrap()` and exact `==` on money).
//! * [`config`] — scaling factors `σ`, `k`, `ξ`, and the power rating `r`.
//! * [`appliances`] — the §III multi-appliance extension: several shiftable
//!   jobs plus a nonshiftable base load per household.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allocation;
pub mod appliances;
pub mod config;
pub mod defection;
pub mod error;
pub mod flexibility;
pub mod float;
pub mod household;
pub mod load;
pub mod mechanism;
pub mod payment;
pub mod pricing;
pub mod social_cost;
pub mod time;
pub mod validation;
pub mod valuation;

pub use error::{Error, Result};

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::allocation::{
        greedy_allocation, greedy_allocation_with_policy, GreedyOutcome, OrderingPolicy,
    };
    pub use crate::appliances::{
        Appliance, MultiAllocation, MultiEnki, MultiReport, MultiSettlement,
        MultiSettlementEntry,
    };
    pub use crate::config::EnkiConfig;
    pub use crate::error::{Error, Result};
    pub use crate::float::{approx_eq, approx_zero, cmp_f64, EPSILON};
    pub use crate::household::{HouseholdId, HouseholdType, Preference, Report};
    pub use crate::load::LoadProfile;
    pub use crate::mechanism::{
        AllocationOutcome, Assignment, BaselineSettlement, Enki, Settlement, SettlementEntry,
    };
    pub use crate::pricing::{Pricing, QuadraticPricing, TwoStepPricing};
    pub use crate::social_cost::SocialCost;
    pub use crate::time::{Interval, HOURS_PER_DAY};
    pub use crate::validation::{
        admit, AdmissionReport, RawPreference, RawReport, Verdict,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::mechanism::Enki>();
        assert_send_sync::<crate::mechanism::Settlement>();
        assert_send_sync::<crate::household::Preference>();
        assert_send_sync::<crate::load::LoadProfile>();
        assert_send_sync::<crate::error::Error>();
    }
}
