//! Social-cost scores (Eq. 6).
//!
//! Flexibility and defection scores are normalized into `[0.5, 1.5]` by
//! `x_i/Σx + ½`, and combined into the social-cost score
//!
//! `Ψ_i = k · (δ_i/Σδ + ½) / (f_i/Σf + ½)`
//!
//! so that defectors (large normalized `Δ_i`) pay more and flexible truthful
//! households (large normalized `F_i`) pay less. When a score vector is
//! all-zero — e.g. nobody defected — every normalized entry takes the floor
//! value ½, which the paper's Theorem 2 derivation also uses
//! (`Ψ″_a = k/2 · 1/F_a` for a cooperating household).

use serde::{Deserialize, Serialize};

/// A household's normalized score components and combined social cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SocialCost {
    /// Normalized flexibility `F_i ∈ [0.5, 1.5]`.
    pub normalized_flexibility: f64,
    /// Normalized defection `Δ_i ∈ [0.5, 1.5]`.
    pub normalized_defection: f64,
    /// Combined score `Ψ_i = k·Δ_i/F_i`.
    pub psi: f64,
}

/// Normalizes a non-negative score vector to `[0.5, 1.5]` via `x/Σx + ½`.
///
/// An all-zero (or empty) vector maps every entry to the floor ½.
///
/// # Examples
///
/// ```
/// # use enki_core::social_cost::normalize;
/// assert_eq!(normalize(&[1.0, 3.0]), vec![0.75, 1.25]);
/// assert_eq!(normalize(&[0.0, 0.0]), vec![0.5, 0.5]);
/// ```
#[must_use]
pub fn normalize(scores: &[f64]) -> Vec<f64> {
    let total: f64 = scores.iter().sum();
    if total <= 0.0 {
        return vec![0.5; scores.len()];
    }
    scores.iter().map(|x| x / total + 0.5).collect()
}

/// Computes every household's social-cost score `Ψ_i` from raw flexibility
/// and defection scores.
///
/// # Panics
///
/// Panics if the two slices differ in length.
#[must_use]
pub fn social_cost_scores(flexibility: &[f64], defection: &[f64], k: f64) -> Vec<SocialCost> {
    assert_eq!(
        flexibility.len(),
        defection.len(),
        "flexibility and defection vectors must align"
    );
    let f = normalize(flexibility);
    let d = normalize(defection);
    f.iter()
        .zip(d.iter())
        .map(|(&fi, &di)| SocialCost {
            normalized_flexibility: fi,
            normalized_defection: di,
            psi: k * di / fi,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_spans_half_to_three_halves() {
        let n = normalize(&[0.0, 1.0]);
        assert_eq!(n, vec![0.5, 1.5]);
    }

    #[test]
    fn normalize_is_shift_of_share() {
        let n = normalize(&[2.0, 2.0, 4.0]);
        assert_eq!(n, vec![0.75, 0.75, 1.0]);
    }

    #[test]
    fn normalize_all_zero_floors() {
        assert_eq!(normalize(&[0.0; 4]), vec![0.5; 4]);
        assert!(normalize(&[]).is_empty());
    }

    #[test]
    fn normalized_values_stay_in_range() {
        let xs = [0.3, 12.0, 0.0, 5.5, 1.0];
        for v in normalize(&xs) {
            assert!((0.5..=1.5).contains(&v));
        }
    }

    #[test]
    fn psi_is_k_delta_over_f() {
        let sc = social_cost_scores(&[1.0, 3.0], &[0.0, 2.0], 1.0);
        // F = [0.75, 1.25], Δ = [0.5, 1.5]
        assert!((sc[0].psi - 0.5 / 0.75).abs() < 1e-12);
        assert!((sc[1].psi - 1.5 / 1.25).abs() < 1e-12);
    }

    #[test]
    fn k_scales_psi_linearly() {
        let a = social_cost_scores(&[1.0, 2.0], &[1.0, 0.0], 1.0);
        let b = social_cost_scores(&[1.0, 2.0], &[1.0, 0.0], 2.5);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((y.psi - 2.5 * x.psi).abs() < 1e-12);
        }
    }

    #[test]
    fn defector_has_higher_psi_than_identical_cooperator() {
        // Property 3: all else equal, the deviating household pays more.
        let flex = [1.0, 1.0];
        let defect = [0.0, 0.7];
        let sc = social_cost_scores(&flex, &defect, 1.0);
        assert!(sc[1].psi > sc[0].psi);
    }

    #[test]
    fn more_flexible_household_has_lower_psi() {
        // Properties 1-2: all else equal, higher flexibility ⇒ lower Ψ.
        let flex = [0.4, 1.2];
        let defect = [0.0, 0.0];
        let sc = social_cost_scores(&flex, &defect, 1.0);
        assert!(sc[1].psi < sc[0].psi);
    }

    #[test]
    fn all_cooperative_identical_households_share_psi() {
        let sc = social_cost_scores(&[0.8; 5], &[0.0; 5], 1.0);
        for w in sc.windows(2) {
            assert!((w[0].psi - w[1].psi).abs() < 1e-12);
        }
    }

    #[test]
    fn psi_bounds_follow_from_normalization() {
        // Ψ ∈ [k·(1/3), k·3] because Δ, F ∈ [0.5, 1.5].
        let flex = [0.0, 0.1, 5.0, 2.0];
        let defect = [3.0, 0.0, 0.0, 1.0];
        for sc in social_cost_scores(&flex, &defect, 1.0) {
            assert!(sc.psi >= 1.0 / 3.0 - 1e-12);
            assert!(sc.psi <= 3.0 + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let _ = social_cost_scores(&[1.0], &[1.0, 2.0], 1.0);
    }
}
