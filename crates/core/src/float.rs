//! Float discipline helpers: total ordering and tolerant comparison.
//!
//! Payments, social-cost scores, and flexibility weights are all `f64`.
//! Two discipline problems recur when ordering or comparing them:
//!
//! * `partial_cmp(..).unwrap()` / `.expect(..)` panics (or silently
//!   misorders, with `unwrap_or`) the moment a NaN slips in — and a NaN
//!   in a score is exactly the situation where a deterministic, auditable
//!   ordering matters most;
//! * exact `==` on derived quantities (a normalized score, a split
//!   payment) is brittle: two mathematically equal expressions can differ
//!   in the last ulp and silently take the wrong branch.
//!
//! This module is the sanctioned alternative. [`cmp_f64`] gives the IEEE
//! 754 `totalOrder` predicate (NaN sorts after +∞, `-0.0 < +0.0`), so
//! sorts are total, deterministic, and panic-free. [`approx_eq`] and
//! [`approx_zero`] compare with an explicit absolute tolerance,
//! defaulting to [`EPSILON`], the tolerance used by settlement
//! verification (Theorem 1's budget-balance check).

use std::cmp::Ordering;

/// Absolute tolerance for money- and score-valued comparisons.
///
/// Loads are O(10²) kWh and `σ` is O(10⁻¹), so daily costs are O(10³);
/// 1e-6 is ~9 orders of magnitude below the quantities compared while
/// staying far above accumulated f64 rounding error.
pub const EPSILON: f64 = 1e-6;

/// Total order on `f64` (IEEE 754 `totalOrder`): never panics, orders
/// NaN after +∞ deterministically instead of poisoning the sort.
#[must_use]
pub fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

/// `true` when `a` and `b` are within [`EPSILON`] of each other.
///
/// NaN compares unequal to everything, including itself (tolerant
/// comparison still respects IEEE semantics for invalid values).
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON
}

/// `true` when `x` is within [`EPSILON`] of zero.
#[must_use]
pub fn approx_zero(x: f64) -> bool {
    x.abs() <= EPSILON
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_is_total_over_nan_and_signed_zero() {
        let mut values = [f64::NAN, 1.0, f64::NEG_INFINITY, -0.0, 0.0, f64::INFINITY];
        values.sort_by(|a, b| cmp_f64(*a, *b));
        assert_eq!(values[0], f64::NEG_INFINITY);
        assert!(values[1].is_sign_negative() && values[1] == 0.0);
        assert!(values[2].is_sign_positive() && values[2] == 0.0);
        assert_eq!(values[3], 1.0);
        assert_eq!(values[4], f64::INFINITY);
        assert!(values[5].is_nan());
    }

    #[test]
    fn cmp_agrees_with_partial_cmp_on_ordinary_values() {
        for (a, b) in [(1.0, 2.0), (2.0, 1.0), (3.5, 3.5), (-1.0, 1.0)] {
            assert_eq!(Some(cmp_f64(a, b)), a.partial_cmp(&b));
        }
    }

    #[test]
    fn approx_eq_tolerates_last_ulp_noise_but_not_real_gaps() {
        assert!(approx_eq(0.1 + 0.2, 0.3));
        assert!(approx_eq(1.0, 1.0));
        assert!(!approx_eq(1.0, 1.001));
        assert!(!approx_eq(f64::NAN, f64::NAN));
    }

    #[test]
    fn approx_zero_matches_approx_eq_against_zero() {
        for x in [0.0, -0.0, 5e-7, -5e-7, 1e-3, f64::NAN] {
            assert_eq!(approx_zero(x), approx_eq(x, 0.0));
        }
    }
}
