//! Time model: hours of a day and half-open hour intervals.
//!
//! The paper models one day as `H = {0, …, 23}` and describes preferences,
//! allocations, and consumptions as contiguous hour windows. We represent a
//! window as a half-open interval `[begin, end)` with
//! `0 ≤ begin < end ≤ 24`, so a window occupies the hour slots
//! `begin, begin+1, …, end−1`. The paper's worked example `χ̂ = (18, 22, 2)`
//! ("consume for two hours at any time between 6PM and 10PM") becomes
//! `Interval::new(18, 22)` with a duration of 2.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// Number of schedulable hour slots in a day (`|H|`).
pub const HOURS_PER_DAY: usize = 24;

/// The exclusive upper bound for interval endpoints (midnight of the next
/// day).
pub const DAY_END: u8 = 24;

/// A half-open interval of hours `[begin, end)` within one day.
///
/// Invariants: `begin < end` and `end ≤ 24`. The interval covers the hour
/// slots `begin..end`, so its [`len`](Interval::len) equals the number of
/// hours of consumption it can host.
///
/// # Examples
///
/// ```
/// # use enki_core::time::Interval;
/// # fn main() -> Result<(), enki_core::Error> {
/// let evening = Interval::new(18, 22)?;
/// assert_eq!(evening.len(), 4);
/// assert!(evening.contains_slot(21));
/// assert!(!evening.contains_slot(22));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Interval {
    begin: u8,
    end: u8,
}

impl Interval {
    /// Creates the interval `[begin, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInterval`] if `begin >= end` or `end > 24`.
    #[must_use = "dropping the Result discards the interval and skips bounds validation"]
    pub fn new(begin: u8, end: u8) -> Result<Self> {
        if begin >= end || end > DAY_END {
            return Err(Error::InvalidInterval { begin, end });
        }
        Ok(Self { begin, end })
    }

    /// Creates the interval starting at `begin` spanning `duration` hours.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInterval`] if the window would be empty or
    /// extend past midnight.
    #[must_use = "dropping the Result discards the interval and skips bounds validation"]
    pub fn with_duration(begin: u8, duration: u8) -> Result<Self> {
        let end = begin.checked_add(duration).ok_or(Error::InvalidInterval {
            begin,
            end: u8::MAX,
        })?;
        Self::new(begin, end)
    }

    /// The whole day `[0, 24)`.
    #[must_use]
    pub fn full_day() -> Self {
        Self {
            begin: 0,
            end: DAY_END,
        }
    }

    /// First hour covered by the interval.
    #[must_use]
    pub fn begin(&self) -> u8 {
        self.begin
    }

    /// Exclusive end of the interval.
    #[must_use]
    pub fn end(&self) -> u8 {
        self.end
    }

    /// Number of hour slots covered (`end − begin`). Always at least 1.
    #[must_use]
    pub fn len(&self) -> u8 {
        self.end - self.begin
    }

    /// Always `false`; intervals are non-empty by construction. Provided for
    /// API symmetry with collection types.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether hour slot `h` is covered by this interval.
    #[must_use]
    pub fn contains_slot(&self, h: u8) -> bool {
        self.begin <= h && h < self.end
    }

    /// Whether `other` lies entirely within this interval.
    #[must_use]
    pub fn contains(&self, other: &Interval) -> bool {
        self.begin <= other.begin && other.end <= self.end
    }

    /// Number of hour slots shared with `other` (`|self ∩ other|`).
    ///
    /// This is the paper's overlap measure used both for the valuation input
    /// `τ` and the defection overlap `o_i`.
    #[must_use]
    pub fn overlap(&self, other: &Interval) -> u8 {
        let lo = self.begin.max(other.begin);
        let hi = self.end.min(other.end);
        hi.saturating_sub(lo)
    }

    /// Iterator over the hour slots covered by the interval.
    pub fn slots(&self) -> impl Iterator<Item = u8> + '_ {
        self.begin..self.end
    }

    /// The interval shifted later by `hours`, if it still fits in the day.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInterval`] if the shifted interval would
    /// extend past midnight.
    #[must_use = "dropping the Result loses the shifted interval and hides an out-of-day shift"]
    pub fn shifted(&self, hours: u8) -> Result<Self> {
        Self::new(
            self.begin.saturating_add(hours),
            self.end.saturating_add(hours),
        )
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.begin, self.end)
    }
}

impl std::str::FromStr for Interval {
    type Err = Error;

    /// Parses `"18-22"` (and, leniently, `"[18, 22)"`) as the half-open
    /// interval `[18, 22)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInterval`] for malformed input or an
    /// interval that does not fit the day.
    fn from_str(s: &str) -> Result<Self> {
        let cleaned: String = s
            .chars()
            .filter(|c| c.is_ascii_digit() || *c == '-' || *c == ',')
            .collect();
        let mut parts = cleaned.split(['-', ',']).filter(|p| !p.is_empty());
        let begin = parts
            .next()
            .and_then(|p| p.parse::<u8>().ok())
            .ok_or(Error::InvalidInterval { begin: 0, end: 0 })?;
        let end = parts
            .next()
            .and_then(|p| p.parse::<u8>().ok())
            .ok_or(Error::InvalidInterval { begin, end: 0 })?;
        if parts.next().is_some() {
            return Err(Error::InvalidInterval { begin, end });
        }
        Self::new(begin, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_paper_example() {
        let iv = Interval::new(18, 22).unwrap();
        assert_eq!(iv.begin(), 18);
        assert_eq!(iv.end(), 22);
        assert_eq!(iv.len(), 4);
    }

    #[test]
    fn new_rejects_empty() {
        assert!(matches!(
            Interval::new(5, 5),
            Err(Error::InvalidInterval { begin: 5, end: 5 })
        ));
    }

    #[test]
    fn new_rejects_inverted() {
        assert!(Interval::new(10, 8).is_err());
    }

    #[test]
    fn new_rejects_past_midnight() {
        assert!(Interval::new(20, 25).is_err());
    }

    #[test]
    fn with_duration_matches_new() {
        assert_eq!(
            Interval::with_duration(18, 4).unwrap(),
            Interval::new(18, 22).unwrap()
        );
    }

    #[test]
    fn with_duration_rejects_overflowing_end() {
        assert!(Interval::with_duration(250, 10).is_err());
        assert!(Interval::with_duration(23, 2).is_err());
    }

    #[test]
    fn full_day_spans_all_slots() {
        let day = Interval::full_day();
        assert_eq!(day.len() as usize, HOURS_PER_DAY);
        assert_eq!(day.slots().count(), HOURS_PER_DAY);
    }

    #[test]
    fn contains_slot_is_half_open() {
        let iv = Interval::new(18, 20).unwrap();
        assert!(iv.contains_slot(18));
        assert!(iv.contains_slot(19));
        assert!(!iv.contains_slot(20));
        assert!(!iv.contains_slot(17));
    }

    #[test]
    fn containment_of_subinterval() {
        let outer = Interval::new(16, 24).unwrap();
        let inner = Interval::new(18, 20).unwrap();
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains(&outer));
    }

    #[test]
    fn overlap_matches_paper_example() {
        // Paper §IV-B3: s_i = (14, 18), ω_i = (15, 19) ⇒ overlap 3 of 4.
        let s = Interval::new(14, 18).unwrap();
        let w = Interval::new(15, 19).unwrap();
        assert_eq!(s.overlap(&w), 3);
    }

    #[test]
    fn overlap_disjoint_is_zero() {
        let a = Interval::new(2, 5).unwrap();
        let b = Interval::new(5, 9).unwrap();
        assert_eq!(a.overlap(&b), 0);
        assert_eq!(b.overlap(&a), 0);
    }

    #[test]
    fn overlap_is_symmetric_and_bounded() {
        let a = Interval::new(3, 10).unwrap();
        let b = Interval::new(6, 24).unwrap();
        assert_eq!(a.overlap(&b), b.overlap(&a));
        assert!(a.overlap(&b) <= a.len().min(b.len()));
    }

    #[test]
    fn shifted_moves_window() {
        let iv = Interval::new(10, 12).unwrap();
        assert_eq!(iv.shifted(3).unwrap(), Interval::new(13, 15).unwrap());
        assert!(iv.shifted(13).is_err());
    }

    #[test]
    fn slots_enumerates_covered_hours() {
        let iv = Interval::new(21, 24).unwrap();
        assert_eq!(iv.slots().collect::<Vec<_>>(), vec![21, 22, 23]);
    }

    #[test]
    fn display_formats_half_open() {
        assert_eq!(Interval::new(18, 22).unwrap().to_string(), "[18, 22)");
    }

    #[test]
    fn parses_dash_and_bracket_forms() {
        assert_eq!("18-22".parse::<Interval>().unwrap(), Interval::new(18, 22).unwrap());
        assert_eq!("[18, 22)".parse::<Interval>().unwrap(), Interval::new(18, 22).unwrap());
        assert!("22-18".parse::<Interval>().is_err());
        assert!("18".parse::<Interval>().is_err());
        assert!("18-22-2".parse::<Interval>().is_err());
        assert!("x-y".parse::<Interval>().is_err());
    }

    #[test]
    fn display_parse_round_trip() {
        let iv = Interval::new(7, 13).unwrap();
        assert_eq!(iv.to_string().parse::<Interval>().unwrap(), iv);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Interval::new(3, 5).unwrap();
        let b = Interval::new(3, 7).unwrap();
        let c = Interval::new(4, 5).unwrap();
        assert!(a < b);
        assert!(b < c);
    }
}
