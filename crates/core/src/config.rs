//! Mechanism configuration.
//!
//! Bundles the paper's scaling factors: pricing scale `σ`, social-cost scale
//! `k`, payment scale `ξ ≥ 1`, and the household power rating `r` in kW.
//! Defaults are the simulation-study values of §VI:
//! `σ = 0.3`, `k = 1`, `ξ = 1.2`, `r = 2` kW.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::pricing::QuadraticPricing;

/// Configuration for the [`Enki`](crate::mechanism::Enki) mechanism.
///
/// # Examples
///
/// ```
/// # use enki_core::config::EnkiConfig;
/// # fn main() -> Result<(), enki_core::Error> {
/// let config = EnkiConfig::builder().sigma(0.5).xi(1.5).build()?;
/// assert_eq!(config.sigma(), 0.5);
/// assert_eq!(config.rate(), 2.0); // paper default
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnkiConfig {
    sigma: f64,
    k: f64,
    xi: f64,
    rate: f64,
}

impl EnkiConfig {
    /// Starts building a configuration from the paper defaults.
    #[must_use]
    pub fn builder() -> EnkiConfigBuilder {
        EnkiConfigBuilder::default()
    }

    /// Pricing scale `σ > 0` (default 0.3).
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Social-cost scale `k > 0` (default 1).
    #[must_use]
    pub fn k(&self) -> f64 {
        self.k
    }

    /// Payment scale `ξ ≥ 1` (default 1.2). Values below 1 would break ex
    /// ante budget balance and are rejected.
    #[must_use]
    pub fn xi(&self) -> f64 {
        self.xi
    }

    /// Household power rating `r > 0` in kW (default 2).
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The quadratic pricing rule `P_h(l) = σ·l²` this configuration
    /// implies.
    #[must_use]
    pub fn pricing(&self) -> QuadraticPricing {
        QuadraticPricing::new(self.sigma).expect("validated at construction")
    }
}

impl Default for EnkiConfig {
    /// The paper's simulation-study parameters (§VI).
    fn default() -> Self {
        Self {
            sigma: 0.3,
            k: 1.0,
            xi: 1.2,
            rate: 2.0,
        }
    }
}

/// Builder for [`EnkiConfig`]; every unset field keeps its paper default.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnkiConfigBuilder {
    config: Option<EnkiConfig>,
    sigma: Option<f64>,
    k: Option<f64>,
    xi: Option<f64>,
    rate: Option<f64>,
}

impl EnkiConfigBuilder {
    /// Sets the pricing scale `σ`.
    #[must_use]
    pub fn sigma(mut self, sigma: f64) -> Self {
        self.sigma = Some(sigma);
        self
    }

    /// Sets the social-cost scale `k`.
    #[must_use]
    pub fn k(mut self, k: f64) -> Self {
        self.k = Some(k);
        self
    }

    /// Sets the payment scale `ξ`.
    #[must_use]
    pub fn xi(mut self, xi: f64) -> Self {
        self.xi = Some(xi);
        self
    }

    /// Sets the household power rating `r` in kW.
    #[must_use]
    pub fn rate(mut self, rate: f64) -> Self {
        self.rate = Some(rate);
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `σ ≤ 0`, `k ≤ 0`, `ξ < 1`, or
    /// `r ≤ 0`, or when any value is non-finite.
    #[must_use = "dropping the Result discards the config and skips parameter validation"]
    pub fn build(self) -> Result<EnkiConfig> {
        let defaults = self.config.unwrap_or_default();
        let config = EnkiConfig {
            sigma: self.sigma.unwrap_or(defaults.sigma),
            k: self.k.unwrap_or(defaults.k),
            xi: self.xi.unwrap_or(defaults.xi),
            rate: self.rate.unwrap_or(defaults.rate),
        };
        if !config.sigma.is_finite() || config.sigma <= 0.0 {
            return Err(Error::InvalidConfig {
                parameter: "sigma",
                constraint: "a positive finite number",
            });
        }
        if !config.k.is_finite() || config.k <= 0.0 {
            return Err(Error::InvalidConfig {
                parameter: "k",
                constraint: "a positive finite number",
            });
        }
        if !config.xi.is_finite() || config.xi < 1.0 {
            return Err(Error::InvalidConfig {
                parameter: "xi",
                constraint: "a finite number of at least 1 (budget balance)",
            });
        }
        if !config.rate.is_finite() || config.rate <= 0.0 {
            return Err(Error::InvalidConfig {
                parameter: "rate",
                constraint: "a positive finite number",
            });
        }
        Ok(config)
    }
}

impl From<EnkiConfig> for EnkiConfigBuilder {
    /// Starts a builder seeded from an existing configuration.
    fn from(config: EnkiConfig) -> Self {
        Self {
            config: Some(config),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EnkiConfig::default();
        assert_eq!(c.sigma(), 0.3);
        assert_eq!(c.k(), 1.0);
        assert_eq!(c.xi(), 1.2);
        assert_eq!(c.rate(), 2.0);
    }

    #[test]
    fn builder_overrides_selected_fields() {
        let c = EnkiConfig::builder().xi(1.0).rate(3.5).build().unwrap();
        assert_eq!(c.xi(), 1.0);
        assert_eq!(c.rate(), 3.5);
        assert_eq!(c.sigma(), 0.3);
    }

    #[test]
    fn builder_rejects_deficit_xi() {
        assert!(matches!(
            EnkiConfig::builder().xi(0.9).build(),
            Err(Error::InvalidConfig {
                parameter: "xi",
                ..
            })
        ));
    }

    #[test]
    fn builder_rejects_bad_sigma_k_rate() {
        assert!(EnkiConfig::builder().sigma(-0.3).build().is_err());
        assert!(EnkiConfig::builder().k(0.0).build().is_err());
        assert!(EnkiConfig::builder().rate(f64::NAN).build().is_err());
    }

    #[test]
    fn builder_from_existing_config() {
        let base = EnkiConfig::builder().sigma(0.7).build().unwrap();
        let derived = EnkiConfigBuilder::from(base).xi(2.0).build().unwrap();
        assert_eq!(derived.sigma(), 0.7);
        assert_eq!(derived.xi(), 2.0);
    }

    #[test]
    fn pricing_uses_sigma() {
        let c = EnkiConfig::builder().sigma(0.4).build().unwrap();
        assert_eq!(c.pricing().sigma(), 0.4);
    }
}
