//! Multi-appliance households (the §III extension).
//!
//! The paper abstracts each household's load to a single shiftable value
//! but notes the model "can be easily extended to a more concrete scenario
//! by considering several such preferences for a given household and
//! adding a constant cost to each household's payment". This module is
//! that extension:
//!
//! * a household owns several shiftable [`Appliance`]s, each with its own
//!   preference window and power rating;
//! * plus an optional *nonshiftable* base load (lighting, fridge) that the
//!   scheduler cannot move;
//! * the allocation treats every appliance as its own job in the greedy
//!   scheduler, so each is placed within its reported window;
//! * the settlement aggregates per-appliance scores back to the household:
//!   flexibility is the energy-weighted mean of the appliance scores,
//!   defection is the sum, and the social-cost normalization of Eq. 6 runs
//!   at household level;
//! * the wholesale cost `κ` is computed on the *combined* load. Revenue is
//!   split between the base and shiftable energy: the base share is billed
//!   in proportion to each household's base energy (the paper's "constant
//!   cost" — behaviour cannot change it), the shiftable share by
//!   social-cost weight (Eq. 7).

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::config::EnkiConfig;
use crate::defection::{defection_score, overlap_ratio};
use crate::error::{Error, Result};
use crate::flexibility::{coverage, flexibility_score};
use crate::household::{HouseholdId, Preference};
use crate::load::LoadProfile;
use crate::pricing::Pricing;
use crate::social_cost::{social_cost_scores, SocialCost};
use crate::time::Interval;

/// One shiftable appliance: a preference window plus a power rating.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Appliance {
    /// Human-readable label ("EV charger", "dishwasher").
    pub label: String,
    /// When and for how long the appliance must run.
    pub preference: Preference,
    /// Power draw in kW while running.
    pub rate: f64,
}

impl Appliance {
    /// Creates an appliance.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a non-positive rate.
    #[must_use = "dropping the Result discards the appliance and skips its validation"]
    pub fn new(label: impl Into<String>, preference: Preference, rate: f64) -> Result<Self> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(Error::InvalidConfig {
                parameter: "rate",
                constraint: "a positive finite number",
            });
        }
        Ok(Self {
            label: label.into(),
            preference,
            rate,
        })
    }

    /// Energy the appliance consumes over its run, in kWh.
    #[must_use]
    pub fn energy(&self) -> f64 {
        f64::from(self.preference.duration()) * self.rate
    }
}

/// A multi-appliance report: everything one household submits for the day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiReport {
    /// Reporting household.
    pub household: HouseholdId,
    /// Shiftable appliances (at least one).
    pub appliances: Vec<Appliance>,
    /// Nonshiftable base load the scheduler cannot move.
    pub base_load: LoadProfile,
}

impl MultiReport {
    /// Creates a report.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyNeighborhood`] when `appliances` is empty
    /// (every household must have at least one shiftable job).
    #[must_use = "dropping the Result discards the report and skips its validation"]
    pub fn new(
        household: HouseholdId,
        appliances: Vec<Appliance>,
        base_load: LoadProfile,
    ) -> Result<Self> {
        if appliances.is_empty() {
            return Err(Error::EmptyNeighborhood);
        }
        Ok(Self {
            household,
            appliances,
            base_load,
        })
    }

    /// Total shiftable energy of the household, in kWh.
    #[must_use]
    pub fn shiftable_energy(&self) -> f64 {
        self.appliances.iter().map(Appliance::energy).sum()
    }

    /// Total nonshiftable energy, in kWh.
    #[must_use]
    pub fn base_energy(&self) -> f64 {
        self.base_load.total()
    }
}

/// Suggested windows for one household's appliances, in appliance order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiAssignment {
    /// The household.
    pub household: HouseholdId,
    /// One window per appliance.
    pub windows: Vec<Interval>,
}

/// The allocation step's result over a multi-appliance neighborhood.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiAllocation {
    /// Per-household suggested windows, aligned with the reports.
    pub assignments: Vec<MultiAssignment>,
    /// Planned load (base + shiftable at suggested windows).
    pub planned_load: LoadProfile,
    /// Planned wholesale cost `κ` of the planned load.
    pub planned_cost: f64,
}

/// One household's settled day under the multi-appliance extension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSettlementEntry {
    /// The household.
    pub household: HouseholdId,
    /// Suggested windows, per appliance.
    pub allocations: Vec<Interval>,
    /// Realized windows, per appliance.
    pub consumptions: Vec<Interval>,
    /// Whether any appliance deviated from its suggestion.
    pub defected: bool,
    /// Energy-weighted household flexibility (zero for defectors).
    pub flexibility: f64,
    /// Summed appliance defection scores.
    pub defection: f64,
    /// Normalized household scores and `Ψ`.
    pub social_cost: SocialCost,
    /// Constant (base-load) part of the bill.
    pub base_payment: f64,
    /// Behaviour-dependent (shiftable) part of the bill.
    pub shiftable_payment: f64,
    /// Total bill.
    pub payment: f64,
}

/// The settled multi-appliance day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSettlement {
    /// Per-household results aligned with the reports.
    pub entries: Vec<MultiSettlementEntry>,
    /// Realized combined load.
    pub load: LoadProfile,
    /// Wholesale cost `κ(ω)` on the combined load.
    pub total_cost: f64,
    /// Collected revenue (`ξ·κ`).
    pub revenue: f64,
    /// Center utility (`(ξ−1)·κ ≥ 0`).
    pub center_utility: f64,
}

/// The multi-appliance mechanism: a thin orchestrator over the same
/// scoring primitives as [`crate::mechanism::Enki`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiEnki {
    config: EnkiConfig,
}

impl MultiEnki {
    /// Creates a multi-appliance center.
    #[must_use]
    pub fn new(config: EnkiConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EnkiConfig {
        &self.config
    }

    /// Allocation: every appliance is scheduled within its window; the
    /// greedy scheduler sees the combined base load as immovable
    /// background.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyNeighborhood`] with no reports and
    /// [`Error::DuplicateHousehold`] for duplicate ids.
    #[must_use = "dropping the allocation discards the schedule and ignores infeasible reports"]
    pub fn allocate<R: Rng + ?Sized>(
        &self,
        reports: &[MultiReport],
        rng: &mut R,
    ) -> Result<MultiAllocation> {
        validate(reports)?;
        let pricing = self.config.pricing();

        // Base load as immovable background.
        let mut base = LoadProfile::new();
        for r in reports {
            base += r.base_load;
        }

        // Flatten appliances into jobs. Job rates vary, so we run the
        // greedy placement manually with the job's own rate: order jobs by
        // predicted flexibility of their preference (coverage over all
        // jobs), then place each minimizing (peak, cost) over base +
        // already-placed jobs.
        let jobs: Vec<(usize, usize)> = reports
            .iter()
            .enumerate()
            .flat_map(|(h, r)| (0..r.appliances.len()).map(move |a| (h, a)))
            .collect();
        let prefs: Vec<Preference> = jobs
            .iter()
            .map(|&(h, a)| reports[h].appliances[a].preference)
            .collect();
        let n_h = coverage(&prefs);
        let mut order: Vec<(f64, u64, usize)> = prefs
            .iter()
            .enumerate()
            .map(|(i, p)| (flexibility_score(p, &n_h), rng.random::<u64>(), i))
            .collect();
        order.sort_by(|a, b| crate::float::cmp_f64(a.0, b.0).then(a.1.cmp(&b.1)));

        let mut load = base;
        let mut windows: Vec<Option<Interval>> = vec![None; jobs.len()];
        for &(_, _, ji) in &order {
            let (h, a) = jobs[ji];
            let appliance = &reports[h].appliances[a];
            let mut best: Vec<Interval> = Vec::new();
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for w in appliance.preference.feasible_windows() {
                let mut candidate = load;
                candidate.add_window(w, appliance.rate);
                let key = (candidate.peak(), pricing.cost(&candidate));
                if key < best_key {
                    best_key = key;
                    best.clear();
                    best.push(w);
                } else if key == best_key {
                    best.push(w);
                }
            }
            let w = best[rng.random_range(0..best.len())];
            load.add_window(w, appliance.rate);
            windows[ji] = Some(w);
        }

        // Fold windows back per household.
        let mut assignments: Vec<MultiAssignment> = reports
            .iter()
            .map(|r| MultiAssignment {
                household: r.household,
                windows: Vec::with_capacity(r.appliances.len()),
            })
            .collect();
        for (ji, &(h, _)) in jobs.iter().enumerate() {
            // The placement loop fills every job slot; an empty one is a
            // scheduler bug surfaced as an error rather than a panic.
            let Some(window) = windows[ji] else {
                return Err(Error::SolveFailed { stage: "multi-appliance greedy" });
            };
            assignments[h].windows.push(window);
        }
        let planned_cost = pricing.cost(&load);
        Ok(MultiAllocation {
            assignments,
            planned_load: load,
            planned_cost,
        })
    }

    /// Settlement: per-appliance scores aggregate to household level; the
    /// base-energy share of the bill is constant, the shiftable share is
    /// social-cost weighted.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownHousehold`] on misaligned inputs and
    /// [`Error::DurationMismatch`] for consumption of the wrong length.
    #[must_use = "dropping the settlement loses the bills and ignores malformed consumption"]
    pub fn settle(
        &self,
        reports: &[MultiReport],
        allocation: &MultiAllocation,
        consumption: &[Vec<Interval>],
    ) -> Result<MultiSettlement> {
        validate(reports)?;
        if allocation.assignments.len() != reports.len() || consumption.len() != reports.len() {
            return Err(Error::UnknownHousehold(
                reports
                    .first()
                    .map(|r| r.household)
                    .unwrap_or_else(|| HouseholdId::new(0)),
            ));
        }
        let pricing = self.config.pricing();

        // Realized load: base + actual appliance windows.
        let mut load = LoadProfile::new();
        for r in reports {
            load += r.base_load;
        }
        for (r, ws) in reports.iter().zip(consumption) {
            if ws.len() != r.appliances.len() {
                return Err(Error::UnknownHousehold(r.household));
            }
            for (appliance, w) in r.appliances.iter().zip(ws) {
                if w.len() != appliance.preference.duration() {
                    return Err(Error::DurationMismatch {
                        got: w.len(),
                        expected: appliance.preference.duration(),
                    });
                }
                load.add_window(*w, appliance.rate);
            }
        }
        let total_cost = pricing.cost(&load);

        // Predicted appliance flexibility from all reported preferences.
        let all_prefs: Vec<Preference> = reports
            .iter()
            .flat_map(|r| r.appliances.iter().map(|a| a.preference))
            .collect();
        let n_h = coverage(&all_prefs);

        // Planned cost for the defection comparison.
        let planned_cost = pricing.cost(&allocation.planned_load);

        let mut flexibility = Vec::with_capacity(reports.len());
        let mut defection = Vec::with_capacity(reports.len());
        let mut any_defect = Vec::with_capacity(reports.len());
        for ((r, assign), ws) in reports
            .iter()
            .zip(&allocation.assignments)
            .zip(consumption)
        {
            let mut f_weighted = 0.0;
            let mut energy = 0.0;
            let mut delta = 0.0;
            let mut defected = false;
            for ((appliance, &s), &w) in r.appliances.iter().zip(&assign.windows).zip(ws) {
                let e = appliance.energy();
                energy += e;
                if s == w {
                    f_weighted += e * flexibility_score(&appliance.preference, &n_h);
                } else {
                    defected = true;
                    delta += defection_score(
                        &pricing,
                        appliance.rate,
                        &allocation.planned_load,
                        planned_cost,
                        s,
                        w,
                    );
                }
            }
            flexibility.push(if energy > 0.0 { f_weighted / energy } else { 0.0 });
            defection.push(delta);
            any_defect.push(defected);
        }

        let social = social_cost_scores(&flexibility, &defection, self.config.k());

        // Revenue split: base share billed proportionally, shiftable share
        // by social cost.
        let revenue = self.config.xi() * total_cost;
        let total_base: f64 = reports.iter().map(MultiReport::base_energy).sum();
        let total_shift: f64 = reports.iter().map(MultiReport::shiftable_energy).sum();
        let total_energy = total_base + total_shift;
        let base_revenue = if total_energy > 0.0 {
            revenue * total_base / total_energy
        } else {
            0.0
        };
        let shift_revenue = revenue - base_revenue;
        let psi_sum: f64 = social.iter().map(|s| s.psi).sum();

        let entries = reports
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let base_payment = if total_base > 0.0 {
                    base_revenue * r.base_energy() / total_base
                } else {
                    0.0
                };
                let shiftable_payment = if psi_sum > 0.0 {
                    shift_revenue * social[i].psi / psi_sum
                } else if !reports.is_empty() {
                    shift_revenue / reports.len() as f64
                } else {
                    0.0
                };
                MultiSettlementEntry {
                    household: r.household,
                    allocations: allocation.assignments[i].windows.clone(),
                    consumptions: consumption[i].clone(),
                    defected: any_defect[i],
                    flexibility: flexibility[i],
                    defection: defection[i],
                    social_cost: social[i],
                    base_payment,
                    shiftable_payment,
                    payment: base_payment + shiftable_payment,
                }
            })
            .collect();

        Ok(MultiSettlement {
            entries,
            load,
            total_cost,
            revenue,
            center_utility: revenue - total_cost,
        })
    }

    /// Per-appliance overlap diagnostics for a settled household, in
    /// appliance order (`o_i` of Eq. 5 per appliance).
    #[must_use]
    pub fn appliance_overlaps(entry: &MultiSettlementEntry) -> Vec<f64> {
        entry
            .allocations
            .iter()
            .zip(&entry.consumptions)
            .map(|(&s, &w)| overlap_ratio(s, w))
            .collect()
    }
}

impl Default for MultiEnki {
    fn default() -> Self {
        Self::new(EnkiConfig::default())
    }
}

fn validate(reports: &[MultiReport]) -> Result<()> {
    if reports.is_empty() {
        return Err(Error::EmptyNeighborhood);
    }
    let mut ids: Vec<HouseholdId> = reports.iter().map(|r| r.household).collect();
    ids.sort_unstable();
    for pair in ids.windows(2) {
        if pair[0] == pair[1] {
            return Err(Error::DuplicateHousehold(pair[0]));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pref(b: u8, e: u8, v: u8) -> Preference {
        Preference::new(b, e, v).unwrap()
    }

    fn two_appliance_report(id: u32) -> MultiReport {
        let mut base = LoadProfile::new();
        base.add_window(Interval::new(0, 24).unwrap(), 0.2); // fridge
        MultiReport::new(
            HouseholdId::new(id),
            vec![
                Appliance::new("EV", pref(18, 24, 3), 7.0).unwrap(),
                Appliance::new("dishwasher", pref(19, 23, 1), 1.5).unwrap(),
            ],
            base,
        )
        .unwrap()
    }

    #[test]
    fn report_requires_an_appliance() {
        assert!(MultiReport::new(HouseholdId::new(0), vec![], LoadProfile::new()).is_err());
    }

    #[test]
    fn appliance_rejects_bad_rate() {
        assert!(Appliance::new("x", pref(0, 4, 1), 0.0).is_err());
        assert!(Appliance::new("x", pref(0, 4, 1), f64::NAN).is_err());
    }

    #[test]
    fn energies_add_up() {
        let r = two_appliance_report(0);
        assert!((r.shiftable_energy() - (3.0 * 7.0 + 1.5)).abs() < 1e-12);
        assert!((r.base_energy() - 24.0 * 0.2).abs() < 1e-12);
    }

    #[test]
    fn allocation_respects_every_appliance_window() {
        let reports = vec![two_appliance_report(0), two_appliance_report(1)];
        let enki = MultiEnki::default();
        let mut rng = StdRng::seed_from_u64(1);
        let alloc = enki.allocate(&reports, &mut rng).unwrap();
        for (r, a) in reports.iter().zip(&alloc.assignments) {
            for (appliance, &w) in r.appliances.iter().zip(&a.windows) {
                appliance.preference.validate_window(w).unwrap();
            }
        }
    }

    #[test]
    fn base_load_is_present_in_planned_load() {
        let reports = vec![two_appliance_report(0)];
        let enki = MultiEnki::default();
        let mut rng = StdRng::seed_from_u64(2);
        let alloc = enki.allocate(&reports, &mut rng).unwrap();
        // Base fridge load is 0.2 kWh at every hour, e.g. hour 3.
        assert!((alloc.planned_load.at(3) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn cooperative_settlement_balances_budget() {
        let reports = vec![two_appliance_report(0), two_appliance_report(1)];
        let enki = MultiEnki::default();
        let mut rng = StdRng::seed_from_u64(3);
        let alloc = enki.allocate(&reports, &mut rng).unwrap();
        let consumption: Vec<Vec<Interval>> =
            alloc.assignments.iter().map(|a| a.windows.clone()).collect();
        let st = enki.settle(&reports, &alloc, &consumption).unwrap();
        assert!((st.center_utility - 0.2 * st.total_cost).abs() < 1e-9);
        let paid: f64 = st.entries.iter().map(|e| e.payment).sum();
        assert!((paid - st.revenue).abs() < 1e-9);
        for e in &st.entries {
            assert!(!e.defected);
            assert_eq!(e.defection, 0.0);
        }
    }

    #[test]
    fn defecting_appliance_flags_the_household() {
        let reports = vec![two_appliance_report(0), two_appliance_report(1)];
        let enki = MultiEnki::default();
        let mut rng = StdRng::seed_from_u64(4);
        let alloc = enki.allocate(&reports, &mut rng).unwrap();
        let mut consumption: Vec<Vec<Interval>> =
            alloc.assignments.iter().map(|a| a.windows.clone()).collect();
        // Household 0 moves its dishwasher (appliance 1) one hour.
        let w = consumption[0][1];
        let pref = reports[0].appliances[1].preference;
        consumption[0][1] = pref
            .feasible_windows()
            .find(|c| *c != w)
            .expect("dishwasher has slack");
        let st = enki.settle(&reports, &alloc, &consumption).unwrap();
        assert!(st.entries[0].defected);
        assert!(!st.entries[1].defected);
        assert!(st.entries[0].payment >= st.entries[1].payment);
    }

    #[test]
    fn base_payment_is_constant_across_behaviour() {
        let reports = vec![two_appliance_report(0), two_appliance_report(1)];
        let enki = MultiEnki::default();
        let mut rng = StdRng::seed_from_u64(5);
        let alloc = enki.allocate(&reports, &mut rng).unwrap();
        let cooperative: Vec<Vec<Interval>> =
            alloc.assignments.iter().map(|a| a.windows.clone()).collect();
        let mut deviant = cooperative.clone();
        let pref = reports[0].appliances[0].preference;
        deviant[0][0] = pref
            .feasible_windows()
            .find(|c| *c != cooperative[0][0])
            .expect("EV has slack");
        let st_coop = enki.settle(&reports, &alloc, &cooperative).unwrap();
        let st_dev = enki.settle(&reports, &alloc, &deviant).unwrap();
        // Base shares track base energy, identical in both scenarios up to
        // the small κ change from the move.
        let coop_share = st_coop.entries[0].base_payment / st_coop.revenue;
        let dev_share = st_dev.entries[0].base_payment / st_dev.revenue;
        assert!((coop_share - dev_share).abs() < 1e-12);
    }

    #[test]
    fn settle_rejects_misaligned_consumption() {
        let reports = vec![two_appliance_report(0)];
        let enki = MultiEnki::default();
        let mut rng = StdRng::seed_from_u64(6);
        let alloc = enki.allocate(&reports, &mut rng).unwrap();
        assert!(enki.settle(&reports, &alloc, &[]).is_err());
        let wrong_count = vec![vec![alloc.assignments[0].windows[0]]];
        assert!(enki.settle(&reports, &alloc, &wrong_count).is_err());
    }

    #[test]
    fn duplicate_households_are_rejected() {
        let reports = vec![two_appliance_report(0), two_appliance_report(0)];
        let enki = MultiEnki::default();
        let mut rng = StdRng::seed_from_u64(7);
        assert!(matches!(
            enki.allocate(&reports, &mut rng),
            Err(Error::DuplicateHousehold(_))
        ));
    }

    #[test]
    fn overlaps_diagnostics_match_eq5() {
        let entry = MultiSettlementEntry {
            household: HouseholdId::new(0),
            allocations: vec![
                Interval::new(14, 18).unwrap(),
                Interval::new(20, 22).unwrap(),
            ],
            consumptions: vec![
                Interval::new(15, 19).unwrap(),
                Interval::new(20, 22).unwrap(),
            ],
            defected: true,
            flexibility: 0.0,
            defection: 1.0,
            social_cost: SocialCost {
                normalized_flexibility: 0.5,
                normalized_defection: 1.5,
                psi: 3.0,
            },
            base_payment: 0.0,
            shiftable_payment: 1.0,
            payment: 1.0,
        };
        assert_eq!(MultiEnki::appliance_overlaps(&entry), vec![0.75, 1.0]);
    }

    #[test]
    fn heavier_appliances_dominate_household_flexibility() {
        // The EV (21 kWh) outweighs the dishwasher (1.5 kWh) in the
        // energy-weighted household flexibility.
        let reports = vec![two_appliance_report(0), two_appliance_report(1)];
        let enki = MultiEnki::default();
        let mut rng = StdRng::seed_from_u64(8);
        let alloc = enki.allocate(&reports, &mut rng).unwrap();
        let consumption: Vec<Vec<Interval>> =
            alloc.assignments.iter().map(|a| a.windows.clone()).collect();
        let st = enki.settle(&reports, &alloc, &consumption).unwrap();
        let prefs: Vec<Preference> = reports
            .iter()
            .flat_map(|r| r.appliances.iter().map(|a| a.preference))
            .collect();
        let n_h = coverage(&prefs);
        let f_ev = flexibility_score(&reports[0].appliances[0].preference, &n_h);
        // Household flexibility is much closer to the EV's score.
        let f_house = st.entries[0].flexibility;
        assert!((f_house - f_ev).abs() < 0.2 * f_ev + 1e-9);
    }
}
