//! Property-based tests of the core model's invariants.

use enki_core::defection::overlap_ratio;
use enki_core::flexibility::{coverage, flexibility_score, flexibility_scores};
use enki_core::household::{HouseholdId, Preference};
use enki_core::load::LoadProfile;
use enki_core::social_cost::normalize;
use enki_core::time::Interval;
use enki_core::validation::{admit, RawPreference, RawReport, Verdict};
use enki_core::valuation::{max_valuation, valuation};
use proptest::prelude::*;

fn interval() -> impl Strategy<Value = Interval> {
    (0u8..24, 1u8..=24).prop_map(|(begin, len)| {
        let begin = begin.min(24 - len.min(24));
        let len = len.min(24 - begin);
        Interval::new(begin, begin + len.max(1)).unwrap()
    })
}

fn preference() -> impl Strategy<Value = Preference> {
    interval().prop_flat_map(|iv| {
        (1u8..=iv.len()).prop_map(move |v| Preference::with_window(iv, v).unwrap())
    })
}

/// Arbitrary raw wire floats, biased toward the adversarial corners:
/// non-finite values, negatives, out-of-horizon magnitudes, fractional
/// hours, and ordinary in-range values.
fn raw_field() -> impl Strategy<Value = f64> {
    (0u32..8, 0.0..1e9f64, 0u8..30).prop_map(|(selector, x, n)| match selector {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => f64::MIN_POSITIVE,
        4 => -x,
        5 => 24.0 + x,
        6 => x % 24.0,
        _ => f64::from(n),
    })
}

fn raw_preference() -> impl Strategy<Value = RawPreference> {
    (raw_field(), raw_field(), raw_field())
        .prop_map(|(b, e, v)| RawPreference::new(b, e, v))
}

proptest! {
    #[test]
    fn overlap_is_symmetric_and_bounded(a in interval(), b in interval()) {
        prop_assert_eq!(a.overlap(&b), b.overlap(&a));
        prop_assert!(a.overlap(&b) <= a.len().min(b.len()));
        prop_assert_eq!(a.overlap(&a), a.len());
    }

    #[test]
    fn containment_implies_full_overlap(outer in interval(), inner in interval()) {
        if outer.contains(&inner) {
            prop_assert_eq!(outer.overlap(&inner), inner.len());
        }
    }

    #[test]
    fn valuation_is_monotone_and_concave(
        v in 1u8..=8,
        rho in 0.1f64..20.0,
    ) {
        let mut last = valuation(0, v, rho);
        let mut last_gain = f64::INFINITY;
        prop_assert_eq!(last, 0.0);
        for tau in 1..=v {
            let now = valuation(tau, v, rho);
            let gain = now - last;
            prop_assert!(now >= last, "valuation must increase in tau");
            prop_assert!(gain <= last_gain + 1e-12, "marginal benefit must not increase");
            last = now;
            last_gain = gain;
        }
        prop_assert!((last - max_valuation(v, rho)).abs() < 1e-12);
    }

    #[test]
    fn flexibility_scores_are_positive_and_finite(
        prefs in proptest::collection::vec(preference(), 1..30),
    ) {
        for f in flexibility_scores(&prefs) {
            prop_assert!(f.is_finite());
            prop_assert!(f > 0.0);
        }
    }

    #[test]
    fn widening_an_interval_never_lowers_its_own_flexibility(
        prefs in proptest::collection::vec(preference(), 1..15),
    ) {
        // Property 1: extending household 0's window by one quiet hour (if
        // possible) cannot lower its score relative to the same coverage.
        let p0 = prefs[0];
        if p0.end() < 24 {
            let widened = Preference::new(p0.begin(), p0.end() + 1, p0.duration()).unwrap();
            let mut widened_prefs = prefs.clone();
            widened_prefs[0] = widened;
            let f_orig = flexibility_scores(&prefs)[0];
            let n = coverage(&widened_prefs);
            let f_wide = flexibility_score(&widened, &n);
            // Width grows by 1; demand grows by at most the new hour's
            // density. The score ratio is (w+1)²·d / (w²·d') with
            // d' ≤ d + n_new; verify the concrete outcome instead of the
            // algebra: widening into an *empty* hour strictly helps.
            let new_hour_density = coverage(&prefs)[usize::from(p0.end())];
            if new_hour_density == 0 {
                prop_assert!(f_wide > f_orig - 1e-12);
            }
        }
    }

    #[test]
    fn normalize_bounds_hold_for_arbitrary_scores(
        xs in proptest::collection::vec(0.0f64..1e6, 0..40),
    ) {
        let normalized = normalize(&xs);
        prop_assert_eq!(normalized.len(), xs.len());
        for v in normalized {
            prop_assert!((0.5..=1.5 + 1e-12).contains(&v));
        }
    }

    #[test]
    fn normalize_preserves_order(
        xs in proptest::collection::vec(0.0f64..1e3, 2..20),
    ) {
        let normalized = normalize(&xs);
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                if xs[i] < xs[j] {
                    prop_assert!(normalized[i] <= normalized[j] + 1e-12);
                }
            }
        }
    }

    #[test]
    fn closest_window_is_legal_and_overlap_maximal(
        truth in preference(),
        target in interval(),
    ) {
        // Use a duration-sized target like real allocations.
        let target = Interval::with_duration(
            target.begin().min(24 - truth.duration()),
            truth.duration(),
        ).unwrap();
        let w = truth.closest_window(target);
        prop_assert!(truth.validate_window(w).is_ok());
        // No legal window overlaps the target more.
        for candidate in truth.feasible_windows() {
            prop_assert!(candidate.overlap(&target) <= w.overlap(&target));
        }
    }

    #[test]
    fn overlap_ratio_is_a_fraction(a in interval(), b in interval()) {
        let o = overlap_ratio(a, b);
        prop_assert!((0.0..=1.0).contains(&o));
    }

    #[test]
    fn admission_never_silently_alters_a_report(raw in raw_preference()) {
        // Round-trip property: any raw wire preference is either
        // accepted verbatim, clamped to a valid preference with the
        // reasons recorded, or quarantined with nothing admitted —
        // never silently altered.
        let report = admit(&[RawReport::new(HouseholdId::new(0), raw)]);
        prop_assert_eq!(report.entries.len(), 1);
        let entry = &report.entries[0];
        match &entry.verdict {
            Verdict::Accepted => {
                // Verbatim: the admitted preference converts back to
                // exactly the raw floats that came off the wire.
                let p = entry.admitted.expect("accepted entries carry a preference");
                let back = RawPreference::from(Preference::with_window(
                    Interval::new(p.begin(), p.end()).unwrap(),
                    p.duration(),
                ).unwrap());
                prop_assert_eq!(back.begin, raw.begin);
                prop_assert_eq!(back.end, raw.end);
                prop_assert_eq!(back.duration, raw.duration);
            }
            Verdict::Clamped { reasons } => {
                prop_assert!(!reasons.is_empty(), "a clamp must name its reasons");
                let p = entry.admitted.expect("clamped entries carry a preference");
                // The clamp only ever *shrinks* toward the request: the
                // admitted window sits inside the claimed one.
                prop_assert!(f64::from(p.begin()) >= raw.begin);
                prop_assert!(f64::from(p.end()) <= raw.end);
            }
            Verdict::Quarantined { .. } => {
                prop_assert!(entry.admitted.is_none(), "quarantine admits nothing");
            }
        }
    }

    #[test]
    fn admission_output_is_valid_and_duplicate_free(
        raws in proptest::collection::vec(raw_preference(), 0..20),
    ) {
        let batch: Vec<RawReport> = raws
            .iter()
            .enumerate()
            .map(|(i, &p)| RawReport::new(HouseholdId::new((i % 7) as u32), p))
            .collect();
        let report = admit(&batch);
        prop_assert_eq!(report.entries.len(), batch.len());
        let admitted = report.admitted();
        // Admitted reports are always safe to hand to the mechanism:
        // construction already validated them, and ids are unique.
        for (i, r) in admitted.iter().enumerate() {
            for other in &admitted[..i] {
                prop_assert!(r.household != other.household);
            }
        }
    }

    #[test]
    fn load_profile_total_is_window_sum(
        windows in proptest::collection::vec(interval(), 0..20),
        rate in 0.1f64..10.0,
    ) {
        let load = LoadProfile::from_windows(&windows, rate);
        let expected: f64 = windows.iter().map(|w| f64::from(w.len()) * rate).sum();
        prop_assert!((load.total() - expected).abs() < 1e-9);
        prop_assert!(load.peak() <= expected + 1e-9);
    }
}
