//! Property tests for the item-level parser on adversarial token
//! streams. The parser's contract is *graceful degradation*: anything
//! it cannot classify becomes an opaque item, and nothing — raw
//! strings full of keywords, `r#`-escaped identifiers, nested
//! turbofish, macro bodies, truncated garbage — may make it panic,
//! loop, or fabricate structure that is not there.

use enki_lint::lexer::tokenize;
use enki_lint::parse::{matching_delim, parse};
use proptest::prelude::*;

/// Well-formed item fragments the parser must classify exactly: each
/// entry is (source, real fn names, real use paths).
const CLASSIFIED: &[(&str, &[&str], &[&str])] = &[
    ("fn alpha() { let x = 1; }", &["alpha"], &[]),
    (
        "use a::{b::{c, d::*}, e as f};",
        &[],
        &["a::b::c", "a::b::d::*", "a::e"],
    ),
    (
        "impl Foo { pub fn method(&self) -> Vec<Vec<u8>> { self.go::<Vec<Vec<u8>>>() } }",
        &["method"],
        &[],
    ),
    (
        "mod inner { use q::w; fn nested() {} }",
        &["nested"],
        &["q::w"],
    ),
    (
        "pub fn turbo<T: Fn(u32) -> Vec<Vec<u8>>>(f: T) -> u32 where T: Clone { f(0).len() as u32 }",
        &["turbo"],
        &[],
    ),
];

/// Fragments that must contribute NO fns and NO uses, however they are
/// interleaved with the classified ones: keyword-shaped text hidden in
/// raw strings, `r#` keyword-identifiers, and macro bodies.
const ADVERSARIAL: &[&str] = &[
    "const DOC: &str = r#\"use fake::path; fn ghost() { unsafe {} }\"#;",
    "const DOC2: &str = r##\"fn phantom() {} use nope::x;\"##;",
    "static r#use: u32 = 1;",
    "static r#fn: u32 = 2;",
    "macro_rules! gen { (fn $f:ident) => { use soup::x; }; }",
    "thread_local! { static TL: u32 = 0; }",
    "lazy_init!(use, fn, unsafe);",
    "const S: &str = \"fn quoted() { use also::quoted; }\";",
];

/// Names/paths that only exist inside the adversarial fragments; the
/// parser must never surface them as real structure.
const GHOSTS: &[&str] = &["ghost", "phantom", "quoted"];
const GHOST_USES: &[&str] = &["fake", "nope", "soup", "also"];

fn interleave(picks: &[(bool, usize)]) -> (String, Vec<&'static str>, Vec<&'static str>) {
    let mut src = String::new();
    let mut fns = Vec::new();
    let mut uses = Vec::new();
    for &(adversarial, idx) in picks {
        if adversarial {
            src.push_str(ADVERSARIAL[idx % ADVERSARIAL.len()]);
        } else {
            let (frag, f, u) = CLASSIFIED[idx % CLASSIFIED.len()];
            src.push_str(frag);
            fns.extend_from_slice(f);
            uses.extend_from_slice(u);
        }
        src.push('\n');
    }
    (src, fns, uses)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interleaving adversarial fragments with well-formed items never
    /// changes what the parser finds: exactly the real fns and uses, in
    /// order, and never a ghost from a raw string or macro body.
    #[test]
    fn adversarial_fragments_never_perturb_real_items(
        picks in proptest::collection::vec((any::<bool>(), 0usize..64), 0..12),
    ) {
        let (src, want_fns, want_uses) = interleave(&picks);
        let parsed = parse(&tokenize(&src));
        let got_fns: Vec<&str> = parsed.fns.iter().map(|f| f.name.as_str()).collect();
        prop_assert_eq!(&got_fns, &want_fns, "source:\n{}", src);
        let got_uses: Vec<&str> = parsed.uses.iter().map(|u| u.path.as_str()).collect();
        prop_assert_eq!(&got_uses, &want_uses, "source:\n{}", src);
        for ghost in GHOSTS {
            prop_assert!(!got_fns.contains(ghost), "ghost fn `{}` in:\n{}", ghost, src);
        }
        for ghost in GHOST_USES {
            prop_assert!(
                !parsed.uses.iter().any(|u| u.path.starts_with(ghost)),
                "ghost use `{}` in:\n{}", ghost, src
            );
        }
    }

    /// Truncating a fragment soup at an arbitrary character leaves
    /// unbalanced delimiters and half-tokens everywhere; the parser
    /// must still terminate, and every fn body range it does report
    /// must be a real brace pair in bounds.
    #[test]
    fn truncated_input_terminates_with_sane_body_ranges(
        picks in proptest::collection::vec((any::<bool>(), 0usize..64), 1..10),
        cut in 0usize..4096,
    ) {
        let (src, _, _) = interleave(&picks);
        let cut = src
            .char_indices()
            .map(|(i, _)| i)
            .take_while(|&i| i <= cut.min(src.len()))
            .last()
            .unwrap_or(0);
        let toks = tokenize(&src[..cut]);
        let parsed = parse(&toks);
        for f in &parsed.fns {
            if let Some((open, close)) = f.body {
                prop_assert!(open < toks.len() && close < toks.len());
                prop_assert!(toks[open].is_punct("{"), "fn {}", f.name);
                prop_assert!(open <= close);
            }
        }
    }

    /// Arbitrary ASCII garbage: tokenize + parse never panic, and
    /// every use path the parser invents is at least path-shaped (no
    /// whitespace, no stray delimiters).
    #[test]
    fn ascii_garbage_degrades_to_opaque_items(
        bytes in proptest::collection::vec(32u8..127, 0..200),
    ) {
        let src: String = bytes.iter().map(|&b| char::from(b)).collect();
        let parsed = parse(&tokenize(&src));
        for u in &parsed.uses {
            prop_assert!(
                !u.path.chars().any(|c| c.is_whitespace() || "(){}[];,".contains(c)),
                "malformed use path {:?} from {:?}", u.path, src
            );
        }
    }

    /// `matching_delim` is an involution on balanced fragment soups:
    /// for every opener it finds a closer of the same kind, strictly
    /// after it, and the span contains equal opener/closer counts.
    #[test]
    fn matching_delim_round_trips_on_fragment_soup(
        picks in proptest::collection::vec((any::<bool>(), 0usize..64), 1..10),
    ) {
        let (src, _, _) = interleave(&picks);
        let toks = tokenize(&src);
        for (i, t) in toks.iter().enumerate() {
            let close_text = match t.text.as_str() {
                "(" => ")",
                "[" => "]",
                "{" => "}",
                _ => continue,
            };
            let Some(j) = matching_delim(&toks, i) else { continue };
            prop_assert!(j > i, "closer not after opener at {}", i);
            prop_assert_eq!(toks[j].text.as_str(), close_text);
            let opens = toks[i..=j].iter().filter(|x| x.text == t.text).count();
            let closes = toks[i..=j].iter().filter(|x| x.text == close_text).count();
            prop_assert_eq!(opens, closes, "unbalanced span {}..={}", i, j);
        }
    }
}
