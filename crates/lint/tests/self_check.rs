//! The meta-test: the committed workspace must pass its own linter
//! with the committed baseline, and the baseline must match the tree
//! *exactly* — a fixed violation whose entry lingers, or a new
//! violation, both fail here before they fail in CI.

use std::path::PathBuf;

use enki_lint::engine::{run_check, CheckConfig};
use enki_lint::report::to_text;

fn workspace_root() -> PathBuf {
    // crates/lint → workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/lint has a workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_under_the_committed_baseline() {
    let root = workspace_root();
    let report = run_check(&CheckConfig {
        baseline: Some(root.join("lint.baseline")),
        root,
    })
    .expect("lint run succeeds (malformed baseline is a test failure)");
    assert!(
        report.ok(),
        "workspace has non-baselined lint findings or stale baseline entries:\n{}",
        to_text(&report)
    );
    // Sanity: the walk actually covered the workspace.
    assert!(
        report.files > 50,
        "suspiciously few files scanned: {}",
        report.files
    );
}

#[test]
fn every_baseline_suppression_carries_its_justification() {
    let root = workspace_root();
    let report = run_check(&CheckConfig {
        baseline: Some(root.join("lint.baseline")),
        root,
    })
    .expect("lint run succeeds");
    for (violation, reason) in &report.suppressed {
        assert!(
            !reason.trim().is_empty(),
            "suppressed {} at {}:{} has no justification",
            violation.rule.code(),
            violation.path,
            violation.line
        );
    }
}

/// The workspace-graph rules (R9–R12) launched with a clean tree and
/// must stay that way: a lock-order cycle, a determinism leak, a
/// layering break, or a narrowing money cast gets *fixed*, never
/// baselined. CI enforces the same invariant on the baseline file.
#[test]
fn workspace_rules_have_zero_baseline_entries() {
    use enki_lint::RuleId;
    let root = workspace_root();
    let report = run_check(&CheckConfig {
        baseline: Some(root.join("lint.baseline")),
        root,
    })
    .expect("lint run succeeds");
    let graph_rules = [
        RuleId::LockOrder,
        RuleId::DeterminismTaint,
        RuleId::Layering,
        RuleId::CastDiscipline,
    ];
    for (violation, reason) in &report.suppressed {
        assert!(
            !graph_rules.contains(&violation.rule),
            "{} at {}:{} is baselined (`{}`) — workspace-graph findings \
             must be fixed, not suppressed",
            violation.rule.code(),
            violation.path,
            violation.line,
            reason
        );
    }
}
