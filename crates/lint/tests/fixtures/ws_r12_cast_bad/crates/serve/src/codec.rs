// R12 fixture (bad tree): a money-typed value narrowed with `as`.
// Expected: one cast-discipline violation naming `total_bill`.

pub fn frame_word(total_bill: u64) -> u32 {
    total_bill as u32
}
