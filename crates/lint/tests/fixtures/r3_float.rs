// R3 fixture: float-discipline breaches. Expected: 4 violations.

pub fn compare(bill: f64, scores: &mut Vec<(f64, usize)>) -> bool {
    scores.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap()); // violation 1 (partial_cmp)
    if bill == 0.0 {
        // violation 2 (float literal ==)
        return true;
    }
    if bill != -1.5 {
        // violation 3 (float literal != with unary minus)
        return false;
    }
    let exact = 0.1 + 0.2;
    exact == 0.3 // violation 4
}

pub fn disciplined(bill: f64, scores: &mut Vec<(f64, usize)>) -> bool {
    // total_cmp sorts and tolerance comparisons are the sanctioned forms.
    scores.sort_by(|a, b| a.0.total_cmp(&b.0));
    (bill - 0.3).abs() < 1e-9 && bill < 1.0 && bill >= 0.0
}
