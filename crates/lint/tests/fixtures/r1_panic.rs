// R1 fixture: panic-family calls in mechanism code. Expected: 5 violations
// in non-test code; the test module at the bottom must stay silent.

pub struct Settlement;

pub fn settle(bill: Option<f64>) -> f64 {
    let value = bill.unwrap(); // violation 1
    let checked = bill.expect("bill must be present"); // violation 2
    if value < 0.0 {
        panic!("negative bill"); // violation 3
    }
    if checked > 1e12 {
        unreachable!(); // violation 4
    }
    todo!() // violation 5
}

pub fn fine(bill: Option<f64>) -> f64 {
    // unwrap_or / unwrap_or_else / strings are all allowed.
    let message = "please unwrap() this string";
    let _ = message;
    bill.unwrap_or_default().max(bill.unwrap_or(0.0))
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
