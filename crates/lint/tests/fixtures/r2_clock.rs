// R2 fixture: direct OS-clock reads. Expected: 2 violations.

use std::time::{Instant, SystemTime};

pub fn timed() -> u128 {
    let started = Instant::now(); // violation 1
    let _wall = SystemTime::now(); // violation 2
    started.elapsed().as_nanos()
}

pub fn injected(clock: &dyn Clock) -> std::time::Duration {
    // Reading through the injected clock is the sanctioned path.
    clock.now()
}

pub trait Clock {
    fn now(&self) -> std::time::Duration;
}
