// R10 fixture (good tree): the timestamp reaches the sink as a
// caller-supplied parameter, so recovery can replay it.
// Expected: no violations.

pub fn persist(w: &mut Wal, micros: u64) {
    w.append(7, micros);
}
