// R12 fixture (good tree): the narrowing is explicit, so overflow
// surfaces instead of truncating. Expected: no violations.

pub fn frame_word(total_bill: u64) -> u32 {
    u32::try_from(total_bill).unwrap_or(u32::MAX)
}
