// R11 fixture (good tree): no internal imports at all.

pub fn horizon() -> u32 {
    24
}
