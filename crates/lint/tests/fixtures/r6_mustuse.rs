// R6 fixture: public fallible APIs without #[must_use].
// Expected: 2 violations (`verify`, `admit`); the rest are compliant
// or out of scope (private, pub(crate), infallible, generic bound).

pub struct Error;

pub fn verify(total: f64) -> Result<(), Error> {
    // violation 1
    if total.is_finite() {
        Ok(())
    } else {
        Err(Error)
    }
}

pub fn admit(raw: &str) -> std::result::Result<u32, Error> {
    // violation 2
    raw.parse().map_err(|_| Error)
}

#[must_use = "a dropped verification result hides an invariant violation"]
pub fn verified(total: f64) -> Result<(), Error> {
    verify(total)
}

pub(crate) fn internal(total: f64) -> Result<(), Error> {
    verify(total)
}

fn private(total: f64) -> Result<(), Error> {
    verify(total)
}

pub fn infallible(total: f64) -> f64 {
    total
}

pub fn with_bound<F: Fn() -> Result<(), Error>>(f: F) -> u32 {
    let _ = f();
    0
}
