// R7 fixture: a compliant crate root (grouped deny list).

#![deny(unsafe_code, unused_must_use)]
#![warn(missing_docs)]

pub mod something;
