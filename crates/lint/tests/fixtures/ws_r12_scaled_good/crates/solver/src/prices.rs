// R12 fixture (good tree): the narrowing is explicit, so a fixed-point
// value too wide for the wire format surfaces instead of truncating.
// Expected: no violations.

pub fn pack_price(scaled_load: u64) -> u32 {
    u32::try_from(scaled_load).unwrap_or(u32::MAX)
}
