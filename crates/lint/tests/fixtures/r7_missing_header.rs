// R7 fixture: a crate root with no unsafe_code header.
// Expected: 1 violation when classified as src/lib.rs.

pub mod something;
