// R11 fixture (bad tree): core imports the obs crate in source, too.
// Expected: one layering violation at the `use`.

use enki_obs::report::Summary;

pub fn summarize() -> Summary {
    Summary::default()
}
