// R8 fixture: ad-hoc filesystem access. Expected: 3 violations.

use std::fs; // violation 1

#[must_use = "a dropped write error loses the checkpoint"]
pub fn persist(bytes: &[u8]) -> std::io::Result<()> {
    fs::write("checkpoint.bin", bytes) // violation 2
}

#[must_use = "a dropped read error loses the checkpoint"]
pub fn load() -> std::io::Result<Vec<u8>> {
    std::fs::read("checkpoint.bin") // violation 3
}

pub fn through_the_trait(storage: &mut dyn Storage, bytes: &[u8]) {
    // Persisting through an injected Storage is the sanctioned path —
    // and a local called `fs` is not a filesystem touch.
    let fs = bytes.len();
    storage.append("checkpoint", &bytes[..fs]);
}

pub trait Storage {
    fn append(&mut self, segment: &str, bytes: &[u8]);
}
