// R5 fixture: concurrency primitives outside threaded.rs.
// Expected: 3 violations (Mutex use, Mutex type, thread::spawn).

use std::sync::Mutex;

pub fn racy(jobs: Vec<u32>) -> u32 {
    let total = Mutex::new(0u32);
    let handle = std::thread::spawn(move || jobs.iter().sum::<u32>());
    let joined = handle.join().unwrap_or(0);
    total.lock().map(|guard| *guard).unwrap_or(0) + joined
}
