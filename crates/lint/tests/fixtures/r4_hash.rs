// R4 fixture: randomized-iteration collections in a deterministic crate.
// Expected: 3 violations (use + two mentions).

use std::collections::HashMap;

pub fn tally(ids: &[u32]) -> HashMap<u32, u32> {
    let mut counts: HashMap<u32, u32> = Default::default();
    for &id in ids {
        *counts.entry(id).or_insert(0) += 1;
    }
    counts
}

pub fn ordered_tally(ids: &[u32]) -> std::collections::BTreeMap<u32, u32> {
    // BTreeMap iterates in key order: deterministic.
    let mut counts = std::collections::BTreeMap::new();
    for &id in ids {
        *counts.entry(id).or_insert(0) += 1;
    }
    counts
}
