// R9 fixture (good tree): same global order as solver/src/par.rs.

pub fn post(queues: &Shared, slots: &Shared) {
    let q = queues.lock();
    slots.lock().push(2);
}
