// R9 fixture (good tree): both files acquire `queues` before `slots`.
// Expected: no violations.

pub fn drain(queues: &Shared, slots: &Shared) {
    let q = queues.lock();
    slots.lock().push(1);
}
