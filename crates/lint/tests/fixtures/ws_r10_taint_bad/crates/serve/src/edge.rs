// R10 fixture (bad tree): a clock read flows through a let chain into
// the WAL `append` sink. The edge file may read the OS clock (R2
// allowlists it), but the value still must not reach durable bytes.
// Expected: one determinism-taint violation at the `append` call.

pub fn persist(w: &mut Wal) {
    let t = Instant::now();
    let micros = t.elapsed().as_micros();
    w.append(7, micros);
}
