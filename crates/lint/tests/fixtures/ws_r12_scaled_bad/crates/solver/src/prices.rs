// R12 fixture (bad tree): a fixed-point scaled load value narrowed
// with a raw `as`. Expected: one cast-discipline violation naming
// `scaled_load`.

pub fn pack_price(scaled_load: u64) -> u32 {
    scaled_load as u32
}
