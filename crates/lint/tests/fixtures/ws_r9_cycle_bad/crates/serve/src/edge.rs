// R9 fixture (bad tree): acquires `slots` then `queues` — the
// opposite of solver/src/par.rs in this tree.

pub fn post(queues: &Shared, slots: &Shared) {
    let s = slots.lock();
    queues.lock().push(2);
}
