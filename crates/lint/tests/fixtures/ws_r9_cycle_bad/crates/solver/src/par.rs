// R9 fixture (bad tree): acquires `queues` then `slots` — the
// opposite of serve/src/edge.rs in this tree.
// Expected: one lock-order cycle with a full witness path.

pub fn drain(queues: &Shared, slots: &Shared) {
    let q = queues.lock();
    slots.lock().push(1);
}
