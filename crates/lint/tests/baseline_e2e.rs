//! End-to-end engine test on a synthetic mini-workspace: discovery,
//! rule scan, baseline round-trip, staleness detection, JSON shape.

use std::fs;
use std::path::PathBuf;

use enki_lint::engine::{run_check, CheckConfig};
use enki_lint::{baseline, report};

/// A scratch workspace under the target directory (unique per test so
/// they can run in parallel), cleaned up on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(name: &str) -> Self {
        let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("enki-lint-{name}"));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/core/src")).expect("mkdir");
        Self { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, content).expect("write");
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const DIRTY_LIB: &str = "#![deny(unsafe_code)]\n\
    pub fn pay(bill: Option<f64>) -> f64 { bill.unwrap() }\n";

const CLEAN_LIB: &str = "#![deny(unsafe_code)]\n\
    pub fn pay(bill: Option<f64>) -> f64 { bill.unwrap_or(0.0) }\n";

#[test]
fn clean_tree_passes_without_a_baseline() {
    let ws = Scratch::new("clean");
    ws.write("crates/core/src/lib.rs", CLEAN_LIB);
    let report = run_check(&CheckConfig {
        root: ws.root.clone(),
        baseline: None,
    })
    .expect("runs");
    assert!(report.ok(), "{:#?}", report.violations);
    assert_eq!(report.files, 1);
}

#[test]
fn injected_violation_fails_then_a_justified_baseline_absorbs_it() {
    let ws = Scratch::new("roundtrip");
    ws.write("crates/core/src/lib.rs", DIRTY_LIB);

    // 1. The violation fails the check.
    let config = CheckConfig {
        root: ws.root.clone(),
        baseline: Some(ws.root.join("lint.baseline")),
    };
    let first = run_check(&config).expect("runs");
    assert!(!first.ok());
    assert_eq!(first.violations.len(), 1);

    // 2. A generated baseline is rejected until justified.
    let rendered = baseline::render(&first.violations);
    ws.write("lint.baseline", &rendered);
    assert!(run_check(&config).is_err(), "placeholder must be rejected");

    // 3. Justified, the baseline makes the tree green…
    let justified = rendered.replace("UNJUSTIFIED: explain why", "tracked legacy site");
    ws.write("lint.baseline", &justified);
    let second = run_check(&config).expect("runs");
    assert!(second.ok(), "{:#?}", second.violations);
    assert_eq!(second.suppressed.len(), 1);
    assert_eq!(second.suppressed[0].1, "tracked legacy site");

    // 4. …and fixing the code makes the baseline stale: no silent rot.
    ws.write("crates/core/src/lib.rs", CLEAN_LIB);
    let third = run_check(&config).expect("runs");
    assert!(!third.ok());
    assert_eq!(third.stale.len(), 1);
    assert_eq!(third.stale[0].actual, 0);
}

#[test]
fn vendored_and_target_trees_are_never_scanned() {
    let ws = Scratch::new("skip");
    ws.write("crates/core/src/lib.rs", CLEAN_LIB);
    ws.write("vendor/dep/src/lib.rs", "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }");
    ws.write("target/debug/gen.rs", "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }");
    let report = run_check(&CheckConfig {
        root: ws.root.clone(),
        baseline: None,
    })
    .expect("runs");
    assert!(report.ok(), "{:#?}", report.violations);
    assert_eq!(report.files, 1);
}

#[test]
fn json_report_is_deterministic_and_line_oriented() {
    let ws = Scratch::new("json");
    ws.write("crates/core/src/lib.rs", DIRTY_LIB);
    let config = CheckConfig {
        root: ws.root.clone(),
        baseline: None,
    };
    let a = run_check(&config).expect("runs");
    let b = run_check(&config).expect("runs");
    // git_rev is "unknown" (no .git) and run_id is a content hash, so
    // two runs over the same tree render byte-identically.
    assert_eq!(report::to_jsonl(&a), report::to_jsonl(&b));
    let json = report::to_jsonl(&a);
    let lines: Vec<&str> = json.lines().collect();
    assert!(lines[0].contains("\"schema\":\"enki-lint/1\""));
    assert!(lines[0].contains("\"git_rev\":\"unknown\""));
    assert!(lines.iter().any(|l| l.contains("\"type\":\"violation\"")));
    assert!(lines.last().expect("summary").contains("\"ok\":false"));
}
