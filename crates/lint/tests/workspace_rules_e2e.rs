//! End-to-end coverage for the workspace-graph rules (R9–R12) on
//! committed fixture trees: each rule has a violating tree that fails
//! with the expected witness and a clean twin that passes. The CLI
//! half drives the built binary: exit codes, the printed lock-cycle
//! witness path, SARIF output validated against the required-property
//! subset, and the baseline-shrink contract (a fixed violation with a
//! leftover baseline entry exits 2 with a "stale entry" message).

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

use enki_lint::engine::{run_check, CheckConfig};
use enki_lint::{baseline, RuleId};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check_tree(name: &str) -> enki_lint::Report {
    run_check(&CheckConfig {
        root: fixture_root(name),
        baseline: None,
    })
    .expect("fixture tree checks")
}

fn rules_of(report: &enki_lint::Report) -> Vec<RuleId> {
    report.violations.iter().map(|v| v.rule).collect()
}

// ---------------------------------------------------------------------------
// Engine-level: one violating tree and one clean twin per rule.
// ---------------------------------------------------------------------------

#[test]
fn r9_cycle_tree_fails_with_the_full_witness_path() {
    let report = check_tree("ws_r9_cycle_bad");
    assert_eq!(rules_of(&report), vec![RuleId::LockOrder], "{:#?}", report.violations);
    let msg = &report.violations[0].message;
    assert!(msg.contains("lock-order cycle queues → slots → queues"), "{msg}");
    // Both hops of the witness, each with its acquisition site.
    assert!(msg.contains("holding `queues` (crates/solver/src/par.rs:6)"), "{msg}");
    assert!(msg.contains("acquires `slots` (crates/solver/src/par.rs:7)"), "{msg}");
    assert!(msg.contains("holding `slots` (crates/serve/src/edge.rs:5)"), "{msg}");
    assert!(msg.contains("acquires `queues` (crates/serve/src/edge.rs:6)"), "{msg}");
}

#[test]
fn r9_consistent_order_tree_passes() {
    let report = check_tree("ws_r9_cycle_good");
    assert!(report.ok(), "{:#?}", report.violations);
}

#[test]
fn r10_taint_tree_fails_at_the_sink_call() {
    let report = check_tree("ws_r10_taint_bad");
    assert_eq!(
        rules_of(&report),
        vec![RuleId::DeterminismTaint],
        "{:#?}",
        report.violations
    );
    let v = &report.violations[0];
    assert_eq!(v.path, "crates/serve/src/edge.rs");
    assert!(v.message.contains("sink `append(…)`"), "{}", v.message);
    assert!(v.message.contains("Instant::now()"), "{}", v.message);
}

#[test]
fn r10_caller_supplied_time_tree_passes() {
    let report = check_tree("ws_r10_taint_good");
    assert!(report.ok(), "{:#?}", report.violations);
}

#[test]
fn r11_layering_tree_fails_on_manifest_and_source_edges() {
    let report = check_tree("ws_r11_layering_bad");
    assert_eq!(
        rules_of(&report),
        vec![RuleId::Layering, RuleId::Layering],
        "{:#?}",
        report.violations
    );
    // The Cargo.toml edge and the `use` both get their own finding.
    assert_eq!(report.violations[0].path, "crates/core/Cargo.toml");
    assert!(
        report.violations[0].message.contains("must not depend on `enki-obs`"),
        "{}",
        report.violations[0].message
    );
    assert_eq!(report.violations[1].path, "crates/core/src/config.rs");
    assert!(
        report.violations[1].message.contains("must not reference `enki-obs`"),
        "{}",
        report.violations[1].message
    );
}

#[test]
fn r11_clean_dag_tree_passes() {
    let report = check_tree("ws_r11_layering_good");
    assert!(report.ok(), "{:#?}", report.violations);
}

#[test]
fn r12_cast_tree_fails_naming_the_typed_value() {
    let report = check_tree("ws_r12_cast_bad");
    assert_eq!(
        rules_of(&report),
        vec![RuleId::CastDiscipline],
        "{:#?}",
        report.violations
    );
    let msg = &report.violations[0].message;
    assert!(msg.contains("`as u32`"), "{msg}");
    assert!(msg.contains("`total_bill`"), "{msg}");
    assert!(msg.contains("try_from"), "{msg}");
}

#[test]
fn r12_try_from_tree_passes() {
    let report = check_tree("ws_r12_cast_good");
    assert!(report.ok(), "{:#?}", report.violations);
}

#[test]
fn r12_scaled_value_tree_fails_naming_the_fixed_point_witness() {
    let report = check_tree("ws_r12_scaled_bad");
    assert_eq!(
        rules_of(&report),
        vec![RuleId::CastDiscipline],
        "{:#?}",
        report.violations
    );
    let msg = &report.violations[0].message;
    assert!(msg.contains("`as u32`"), "{msg}");
    assert!(msg.contains("`scaled_load`"), "{msg}");
    assert!(msg.contains("try_from"), "{msg}");
}

#[test]
fn r12_scaled_value_try_from_tree_passes() {
    let report = check_tree("ws_r12_scaled_good");
    assert!(report.ok(), "{:#?}", report.violations);
}

// ---------------------------------------------------------------------------
// CLI-level: exit codes, printed witness, SARIF, baseline shrink.
// ---------------------------------------------------------------------------

fn run_cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_enki-lint"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn cli_prints_the_lock_cycle_witness_and_exits_1() {
    let root = fixture_root("ws_r9_cycle_bad");
    let out = run_cli(&["check", "--root", root.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("R9 [lock-order]"), "{stdout}");
    assert!(stdout.contains("lock-order cycle queues → slots → queues"), "{stdout}");
    assert!(stdout.contains("holding `queues` (crates/solver/src/par.rs:6)"), "{stdout}");
    assert!(stdout.contains("acquires `queues` (crates/serve/src/edge.rs:6)"), "{stdout}");
}

#[test]
fn cli_exits_0_on_the_clean_twin_trees() {
    for tree in [
        "ws_r9_cycle_good",
        "ws_r10_taint_good",
        "ws_r11_layering_good",
        "ws_r12_cast_good",
        "ws_r12_scaled_good",
    ] {
        let root = fixture_root(tree);
        let out = run_cli(&["check", "--root", root.to_str().expect("utf8 path")]);
        assert_eq!(out.status.code(), Some(0), "{tree}: {out:?}");
    }
}

#[test]
fn cli_sarif_output_validates_and_names_the_rule() {
    let root = fixture_root("ws_r12_cast_bad");
    let out = run_cli(&[
        "check",
        "--root",
        root.to_str().expect("utf8 path"),
        "--format",
        "sarif",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let sarif = String::from_utf8(out.stdout).expect("utf8");
    enki_lint::sarif::validate(&sarif).expect("emitted SARIF must validate");
    assert!(sarif.contains("\"ruleId\":\"R12\""), "{sarif}");
    assert!(sarif.contains("cast-discipline"), "{sarif}");
}

/// A scratch workspace under the target directory, cleaned up on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(name: &str) -> Self {
        let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("enki-lint-{name}"));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/core/src")).expect("mkdir");
        Self { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, content).expect("write");
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn fixing_a_baselined_violation_exits_2_and_names_the_stale_file() {
    let ws = Scratch::new("shrink-cli");
    ws.write(
        "crates/core/src/lib.rs",
        "#![deny(unsafe_code)]\npub fn pay(bill: Option<f64>) -> f64 { bill.unwrap() }\n",
    );

    // Baseline the violation with a justification: the tree goes green.
    let config = CheckConfig {
        root: ws.root.clone(),
        baseline: None,
    };
    let dirty = run_check(&config).expect("runs");
    assert_eq!(dirty.violations.len(), 1, "{:#?}", dirty.violations);
    let justified = baseline::render(&dirty.violations)
        .replace("UNJUSTIFIED: explain why", "tracked legacy site");
    ws.write("lint.baseline", &justified);
    let root = ws.root.to_str().expect("utf8 path").to_string();
    let out = run_cli(&["check", "--root", &root]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // Fix the violation but leave the baseline entry behind: the entry
    // is stale, and staleness is a configuration error (exit 2), not a
    // rule violation (exit 1) — the baseline must shrink with the code.
    ws.write(
        "crates/core/src/lib.rs",
        "#![deny(unsafe_code)]\npub fn pay(bill: Option<f64>) -> f64 { bill.unwrap_or(0.0) }\n",
    );
    let out = run_cli(&["check", "--root", &root]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("stale entry"), "{stdout}");
    assert!(stdout.contains("crates/core/src/lib.rs"), "{stdout}");
    assert!(stdout.contains("update or delete the entry"), "{stdout}");
}
