//! Keeps the prose honest: the DESIGN.md rule table, the lib.rs doc
//! catalog, and the CLI usage text must all agree with the rule
//! registry in `rules.rs`. The registry is the single source of truth;
//! these tests fail the moment a doc surface drifts from it.

use enki_lint::rules::{markdown_table, ALL_RULES};

fn repo_file(rel: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// DESIGN.md embeds the generated table verbatim, so `rules --markdown`
/// is always copy-paste-current and a registry edit without a doc edit
/// fails CI.
#[test]
fn design_md_contains_the_generated_rule_table_verbatim() {
    let design = repo_file("DESIGN.md");
    let table = markdown_table();
    assert!(
        design.contains(&table),
        "DESIGN.md rule table has drifted from the registry; \
         re-paste the output of `cargo run -p enki-lint -- rules --markdown`.\n\
         Expected block:\n{table}"
    );
}

/// The lib.rs doc header names every rule as `R<n> **<name>**`, so the
/// rustdoc landing page can never silently omit a rule.
#[test]
fn lib_rs_doc_header_names_every_rule() {
    let lib = include_str!("../src/lib.rs");
    for rule in ALL_RULES {
        let entry = format!("{} **{}**", rule.code(), rule.name());
        assert!(
            lib.contains(&entry),
            "lib.rs doc header is missing `{entry}`; update the catalog section"
        );
    }
}

/// The CLI usage text documents that stale baseline entries are a
/// configuration error (exit 2), not a rule violation (exit 1).
#[test]
fn cli_usage_documents_the_stale_baseline_exit_code() {
    let main = include_str!("../src/main.rs");
    assert!(
        main.contains("including stale baseline entries"),
        "main.rs usage text no longer documents stale-entry exit semantics"
    );
}

/// DESIGN.md documents the workspace-graph passes and the SARIF output
/// by name, so a reader of the design doc learns the v2 surface exists.
#[test]
fn design_md_documents_the_v2_surface() {
    let design = repo_file("DESIGN.md");
    for needle in [
        "Workspace-graph passes",
        "lock-order cycle",
        "--format sarif",
        "rules --markdown",
    ] {
        assert!(design.contains(needle), "DESIGN.md is missing `{needle}`");
    }
}
