//! Fixture-driven rule tests: each rule gets a positive fixture (known
//! violation count at known lines) and a negative surface (the
//! compliant forms in the same file stay silent).

use enki_lint::engine::classify;
use enki_lint::rules::{check_file, RuleId, Violation};

fn check_fixture(pretend_path: &str, fixture: &str) -> Vec<Violation> {
    check_file(&classify(pretend_path, fixture))
}

fn rule_counts(violations: &[Violation]) -> Vec<(RuleId, usize)> {
    let mut counts: std::collections::BTreeMap<RuleId, usize> = Default::default();
    for v in violations {
        *counts.entry(v.rule).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

#[test]
fn r1_panic_fixture_flags_the_five_sites() {
    let v = check_fixture(
        "crates/core/src/r1_panic.rs",
        include_str!("fixtures/r1_panic.rs"),
    );
    assert_eq!(rule_counts(&v), vec![(RuleId::NoPanic, 5)], "{v:#?}");
    // The test module's unwrap stays silent: all hits are before it.
    let tests_start = include_str!("fixtures/r1_panic.rs")
        .lines()
        .position(|l| l.contains("mod tests"))
        .expect("fixture has a test module") as u32;
    assert!(v.iter().all(|v| v.line < tests_start), "{v:#?}");
}

#[test]
fn r1_fixture_is_clean_outside_the_scoped_crates() {
    let v = check_fixture(
        "crates/stats/src/r1_panic.rs",
        include_str!("fixtures/r1_panic.rs"),
    );
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn r2_clock_fixture_flags_both_reads() {
    let v = check_fixture(
        "crates/sim/src/r2_clock.rs",
        include_str!("fixtures/r2_clock.rs"),
    );
    assert_eq!(rule_counts(&v), vec![(RuleId::NoDirectClock, 2)], "{v:#?}");
}

#[test]
fn r2_fixture_is_exempt_in_the_clock_module() {
    let v = check_fixture(
        "crates/telemetry/src/clock.rs",
        include_str!("fixtures/r2_clock.rs"),
    );
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn r3_float_fixture_flags_the_four_sites() {
    let v = check_fixture(
        "crates/stats/src/r3_float.rs",
        include_str!("fixtures/r3_float.rs"),
    );
    assert_eq!(rule_counts(&v), vec![(RuleId::FloatDiscipline, 4)], "{v:#?}");
}

#[test]
fn r4_hash_fixture_flags_every_mention_in_scope_only() {
    let fixture = include_str!("fixtures/r4_hash.rs");
    let v = check_fixture("crates/core/src/r4_hash.rs", fixture);
    assert_eq!(rule_counts(&v), vec![(RuleId::NoHashIteration, 3)], "{v:#?}");
    // bench is outside the deterministic envelope.
    assert!(check_fixture("crates/bench/src/r4_hash.rs", fixture).is_empty());
}

#[test]
fn r5_thread_fixture_flags_lock_and_spawn() {
    let fixture = include_str!("fixtures/r5_thread.rs");
    let v = check_fixture("crates/bench/src/r5_thread.rs", fixture);
    assert_eq!(rule_counts(&v), vec![(RuleId::ThreadDiscipline, 3)], "{v:#?}");
    // threaded.rs and the telemetry substrate are sanctioned.
    assert!(check_fixture("crates/agents/src/threaded.rs", fixture).is_empty());
    assert!(check_fixture("crates/telemetry/src/r5_thread.rs", fixture).is_empty());
}

#[test]
fn serve_edge_allowlist_is_path_exact() {
    let clock = include_str!("fixtures/r2_clock.rs");
    let thread = include_str!("fixtures/r5_thread.rs");
    // The serve crate's nondeterministic edge may read clocks, spawn,
    // and lock.
    assert!(check_fixture("crates/serve/src/edge.rs", clock).is_empty());
    assert!(check_fixture("crates/serve/src/edge.rs", thread).is_empty());
    // Its deterministic core may not…
    let v = check_fixture("crates/serve/src/ingest.rs", clock);
    assert_eq!(rule_counts(&v), vec![(RuleId::NoDirectClock, 2)], "{v:#?}");
    let v = check_fixture("crates/serve/src/queue.rs", thread);
    assert_eq!(rule_counts(&v), vec![(RuleId::ThreadDiscipline, 3)], "{v:#?}");
    // …and an edge.rs in any other crate gets no special treatment.
    let v = check_fixture("crates/sim/src/edge.rs", clock);
    assert_eq!(rule_counts(&v), vec![(RuleId::NoDirectClock, 2)], "{v:#?}");
    let v = check_fixture("crates/core/src/edge.rs", thread);
    assert_eq!(rule_counts(&v), vec![(RuleId::ThreadDiscipline, 3)], "{v:#?}");
}

#[test]
fn serve_core_is_scoped_for_panic_and_hash_rules() {
    let panic = include_str!("fixtures/r1_panic.rs");
    let v = check_fixture("crates/serve/src/codec.rs", panic);
    assert_eq!(rule_counts(&v), vec![(RuleId::NoPanic, 5)], "{v:#?}");
    let hash = include_str!("fixtures/r4_hash.rs");
    let v = check_fixture("crates/serve/src/shed.rs", hash);
    assert_eq!(rule_counts(&v), vec![(RuleId::NoHashIteration, 3)], "{v:#?}");
}

#[test]
fn r6_mustuse_fixture_flags_the_two_bare_apis() {
    let v = check_fixture(
        "crates/core/src/r6_mustuse.rs",
        include_str!("fixtures/r6_mustuse.rs"),
    );
    assert_eq!(rule_counts(&v), vec![(RuleId::MustUseResult, 2)], "{v:#?}");
    let names: Vec<_> = v.iter().map(|v| v.message.clone()).collect();
    assert!(names.iter().any(|m| m.contains("`fn verify`")), "{names:?}");
    assert!(names.iter().any(|m| m.contains("`fn admit`")), "{names:?}");
}

#[test]
fn r7_header_fixture_flags_only_crate_roots_without_the_header() {
    let missing = include_str!("fixtures/r7_missing_header.rs");
    let v = check_fixture("crates/core/src/lib.rs", missing);
    assert_eq!(rule_counts(&v), vec![(RuleId::CrateHeader, 1)], "{v:#?}");
    // Same content as a non-root module: no header required.
    assert!(check_fixture("crates/core/src/inner.rs", missing).is_empty());
    // Compliant root (grouped deny list) passes.
    let with = include_str!("fixtures/r7_with_header.rs");
    assert!(check_fixture("crates/core/src/lib.rs", with).is_empty());
}

#[test]
fn r8_fs_fixture_flags_the_three_touches_in_scope_only() {
    let fixture = include_str!("fixtures/r8_fs.rs");
    let v = check_fixture("crates/core/src/r8_fs.rs", fixture);
    assert_eq!(rule_counts(&v), vec![(RuleId::FsBoundary, 3)], "{v:#?}");
    let v = check_fixture("crates/durable/src/wal.rs", fixture);
    assert_eq!(rule_counts(&v), vec![(RuleId::FsBoundary, 3)], "{v:#?}");
    // Crates outside the deterministic envelope may touch the disk
    // (bench writes experiment JSON, lint reads sources).
    assert!(check_fixture("crates/bench/src/r8_fs.rs", fixture).is_empty());
    assert!(check_fixture("crates/lint/src/engine.rs", fixture).is_empty());
}

#[test]
fn fs_boundary_allowlist_is_path_exact() {
    let fixture = include_str!("fixtures/r8_fs.rs");
    // The real-file Storage backend is the one sanctioned boundary.
    assert!(check_fixture("crates/durable/src/file.rs", fixture).is_empty());
    // A file.rs anywhere else gets no special treatment…
    let v = check_fixture("crates/serve/src/file.rs", fixture);
    assert_eq!(rule_counts(&v), vec![(RuleId::FsBoundary, 3)], "{v:#?}");
    // …and neither does any sibling inside the durable crate.
    let v = check_fixture("crates/durable/src/storage.rs", fixture);
    assert_eq!(rule_counts(&v), vec![(RuleId::FsBoundary, 3)], "{v:#?}");
}

#[test]
fn violations_carry_one_based_lines_pointing_at_the_site() {
    let v = check_fixture(
        "crates/sim/src/r2_clock.rs",
        include_str!("fixtures/r2_clock.rs"),
    );
    let source = include_str!("fixtures/r2_clock.rs");
    for violation in &v {
        let line = source
            .lines()
            .nth((violation.line - 1) as usize)
            .expect("line exists");
        assert!(line.contains("::now()"), "line {}: {line}", violation.line);
    }
}
