//! Workspace-graph analyses: lock-order (R9) and layering (R11).
//!
//! Unlike the per-file rules in [`crate::rules`], these passes see the
//! whole workspace at once. [`lock_order`] extracts a static
//! lock-acquisition graph — an edge `A → B` whenever some code path
//! acquires lock class `B` while a guard on class `A` is live,
//! including acquisitions reachable through one level of intra-crate
//! calls — and fails on any cycle, printing the full witness path.
//! [`layering`] checks the declarative crate DAG ([`ALLOWED_DEPS`])
//! against both `Cargo.toml` dependency sections and `enki_*::` paths
//! in source, and bans the nondeterministic modules
//! (`enki_serve::edge`, `enki_durable::file`) from every layered crate
//! that does not own them.
//!
//! ## Guard-liveness model
//!
//! The scanner mirrors Rust's temporary-scope rules closely enough to
//! be sound for this workspace's lock idioms:
//!
//! * `let g = x.lock();` — the guard is *bound*: it lives to the end
//!   of the enclosing block, or until `drop(g)`.
//! * any other `x.lock()` (method chain, match scrutinee, closure
//!   argument) — the guard is a *temporary*: it lives to the end of
//!   the enclosing statement. This is exactly the rule that makes
//!   `q[me].lock().pop().or_else(|| q[v].lock().pop())` hold the first
//!   guard across the second acquisition.
//!
//! A lock *class* is the receiver identifier of the `.lock()` call
//! (`queues[victim].lock()` → `queues`, `self.sink.metrics.lock()` →
//! `metrics`): instances of one field across threads share an order,
//! which is what deadlock freedom needs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{Token, TokenKind};
use crate::parse::{matching_delim, parse};
use crate::rules::{RuleId, SourceFile, Violation};

/// One internal crate's manifest, reduced to what layering needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Workspace-relative path (`crates/core/Cargo.toml`).
    pub rel_path: String,
    /// Package name from `[package]` (`enki-core`).
    pub package: String,
    /// Internal (`enki-*`) entries of `[dependencies]` with their
    /// 1-based lines. `[dev-dependencies]` are deliberately excluded:
    /// test-only edges do not constrain the runtime architecture.
    pub deps: Vec<(String, u32)>,
}

/// Parses the minimal TOML subset the workspace manifests use:
/// `[section]` headers, `key = …` entries, and `[dependencies.name]`
/// sub-tables.
#[must_use]
pub fn parse_manifest(rel_path: &str, text: &str) -> Manifest {
    let mut package = String::new();
    let mut deps = Vec::new();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            if let Some(name) = section.strip_prefix("dependencies.") {
                if name.starts_with("enki") {
                    deps.push((name.to_string(), lineno));
                }
            }
            continue;
        }
        if section == "package" {
            if let Some(value) = line.strip_prefix("name") {
                let value = value.trim_start();
                if let Some(value) = value.strip_prefix('=') {
                    package = value.trim().trim_matches('"').to_string();
                }
            }
        }
        if section == "dependencies" {
            let key = line
                .split(['=', '.', ' ', '\t'])
                .next()
                .unwrap_or_default()
                .trim();
            if key.starts_with("enki") {
                deps.push((key.to_string(), lineno));
            }
        }
    }
    Manifest {
        rel_path: rel_path.to_string(),
        package,
        deps,
    }
}

// ---------------------------------------------------------------------------
// R11 layering
// ---------------------------------------------------------------------------

/// The declarative crate DAG: every layered package and the internal
/// packages it may depend on. Packages absent from this table
/// (`enki-bench`, `enki-lint`, the root facade) are unconstrained
/// leaves — they may depend on anything, but since no layered crate is
/// allowed to name them, nothing inside the mechanism can depend on
/// *them*.
pub const ALLOWED_DEPS: &[(&str, &[&str])] = &[
    ("enki-core", &[]),
    ("enki-stats", &[]),
    ("enki-durable", &[]),
    ("enki-telemetry", &[]),
    ("enki-solver", &["enki-core", "enki-telemetry"]),
    ("enki-serve", &["enki-core", "enki-telemetry"]),
    ("enki-study", &["enki-core", "enki-stats"]),
    (
        "enki-sim",
        &["enki-core", "enki-solver", "enki-stats", "enki-telemetry"],
    ),
    ("enki-obs", &["enki-telemetry"]),
    (
        "enki-agents",
        &[
            "enki-core",
            "enki-durable",
            "enki-serve",
            "enki-sim",
            "enki-solver",
            "enki-telemetry",
        ],
    ),
];

/// Modules banned from every layered crate except their owner: the
/// nondeterministic serve edge and the real-filesystem storage backend
/// must be reached only through their crates' deterministic facades.
const BANNED_MODULES: &[(&str, &str, &str)] = &[
    ("enki_serve", "edge", "enki-serve"),
    ("enki_durable", "file", "enki-durable"),
];

fn allowed_for(package: &str) -> Option<&'static [&'static str]> {
    ALLOWED_DEPS
        .iter()
        .find(|(p, _)| *p == package)
        .map(|(_, deps)| *deps)
}

/// Maps a source path segment (`enki_core`) to its package name
/// (`enki-core`).
fn path_to_package(ident: &str) -> String {
    ident.replace('_', "-")
}

/// Checks the crate DAG: manifest edges and `enki_*::` source paths.
#[must_use]
pub fn layering(files: &[SourceFile], manifests: &[Manifest]) -> Vec<Violation> {
    let mut out = Vec::new();

    // Manifest edges.
    for m in manifests {
        let Some(allowed) = allowed_for(&m.package) else {
            continue;
        };
        for (dep, line) in &m.deps {
            if !allowed.contains(&dep.as_str()) {
                out.push(Violation {
                    rule: RuleId::Layering,
                    path: m.rel_path.clone(),
                    line: *line,
                    message: format!(
                        "`{}` must not depend on `{dep}`: the crate DAG allows only \
                         [{}] — a new edge here needs a DESIGN.md architecture change, \
                         not a Cargo.toml line",
                        m.package,
                        allowed.join(", "),
                    ),
                });
            }
        }
    }

    // Package lookup for source files: crate dir -> package name, from
    // the manifests when present, `enki-<dir>` otherwise.
    let dir_package: BTreeMap<String, String> = manifests
        .iter()
        .filter_map(|m| {
            m.rel_path
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next())
                .map(|dir| (dir.to_string(), m.package.clone()))
        })
        .collect();

    // Source path references. One violation per distinct (path, line,
    // target) so a grouped `use` and an inline path cannot double-count.
    let mut seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for file in files {
        if file.is_test_target {
            continue;
        }
        let Some(dir) = file.crate_dir.as_deref() else {
            continue;
        };
        let package = dir_package
            .get(dir)
            .cloned()
            .unwrap_or_else(|| format!("enki-{dir}"));
        let Some(allowed) = allowed_for(&package) else {
            continue;
        };

        // References via flattened `use` trees and via inline paths:
        // (first segment, second segment if any, line).
        let parsed = parse(&file.tokens);
        let mut refs: Vec<(String, Option<String>, u32)> = Vec::new();
        for u in &parsed.uses {
            if file.ctx.test_mask.get(u.token).copied().unwrap_or(false) {
                continue;
            }
            let mut segments = u.path.split("::");
            let Some(first) = segments.next() else { continue };
            if first.starts_with("enki_") {
                refs.push((first.to_string(), segments.next().map(str::to_string), u.line));
            }
        }
        for (i, t) in file.tokens.iter().enumerate() {
            if file.ctx.test_mask[i]
                || t.kind != TokenKind::Ident
                || !t.text.starts_with("enki_")
                || !file.tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
            {
                continue;
            }
            let second = file
                .tokens
                .get(i + 2)
                .filter(|n| n.kind == TokenKind::Ident)
                .map(|n| n.text.clone());
            refs.push((t.text.clone(), second, t.line));
        }

        for (first, second, line) in refs {
            let target = path_to_package(&first);
            if target == package {
                continue;
            }
            if !allowed.contains(&target.as_str()) {
                if seen.insert((file.rel_path.clone(), line, target.clone())) {
                    out.push(Violation {
                        rule: RuleId::Layering,
                        path: file.rel_path.clone(),
                        line,
                        message: format!(
                            "`{package}` must not reference `{target}`: the crate DAG \
                             allows only [{}]",
                            allowed.join(", "),
                        ),
                    });
                }
                continue;
            }
            // Allowed crate, but possibly a banned module within it.
            for (crate_path, module, owner) in BANNED_MODULES {
                if package != *owner
                    && first == *crate_path
                    && second.as_deref() == Some(*module)
                    && seen.insert((
                        file.rel_path.clone(),
                        line,
                        format!("{crate_path}::{module}"),
                    ))
                {
                    out.push(Violation {
                        rule: RuleId::Layering,
                        path: file.rel_path.clone(),
                        line,
                        message: format!(
                            "`{package}` reaches into `{crate_path}::{module}`: that \
                             module is the nondeterministic boundary of `{owner}` and \
                             may only be touched by its own crate — go through the \
                             deterministic facade instead",
                        ),
                    });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R9 lock-order
// ---------------------------------------------------------------------------

/// A source location of one lock acquisition.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Site {
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
}

/// One edge of the lock-acquisition graph: while a guard on `from` was
/// live, `to` was acquired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Held lock class.
    pub from: String,
    /// Where the held guard was acquired.
    pub from_site: Site,
    /// Acquired lock class.
    pub to: String,
    /// Where the nested acquisition happens.
    pub to_site: Site,
    /// `Some((callee, call_line))` when the nested acquisition is
    /// reached through one level of intra-crate call rather than
    /// directly in the holding function.
    pub via: Option<(String, u32)>,
}

#[derive(Debug)]
struct Guard {
    class: String,
    site: Site,
    depth: usize,
    stmt_scoped: bool,
    name: Option<String>,
}

#[derive(Debug, Default)]
struct FnFacts {
    acquires: Vec<(String, Site)>,
    edges: Vec<LockEdge>,
    calls: Vec<CallWhileHeld>,
}

#[derive(Debug)]
struct CallWhileHeld {
    callee: String,
    held: Vec<(String, Site)>,
    line: u32,
}

/// Finds the opening delimiter matching the closer at `close`, scanning
/// backwards and counting only that delimiter kind.
fn back_match(tokens: &[Token], close: usize) -> Option<usize> {
    let (open_text, close_text) = match tokens.get(close).map(|t| t.text.as_str()) {
        Some(")") => ("(", ")"),
        Some("]") => ("[", "]"),
        Some("}") => ("{", "}"),
        _ => return None,
    };
    let mut depth = 0usize;
    for j in (0..=close).rev() {
        if tokens[j].kind == TokenKind::Punct {
            if tokens[j].text == close_text {
                depth += 1;
            } else if tokens[j].text == open_text {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

/// The lock class of the receiver ending at the `.` token at `dot`:
/// the last identifier of the receiver chain, with any trailing index
/// or call groups skipped (`queues[victim]` → `queues`,
/// `self.sink.metrics` → `metrics`, `get_lock()` → `get_lock`).
fn receiver_class(tokens: &[Token], dot: usize) -> Option<String> {
    let mut j = dot.checked_sub(1)?;
    while matches!(tokens.get(j).map(|t| t.text.as_str()), Some(")" | "]")) {
        j = back_match(tokens, j)?.checked_sub(1)?;
    }
    let t = tokens.get(j)?;
    (t.kind == TokenKind::Ident).then(|| t.text.clone())
}

/// Keywords that look like calls when followed by `(` but are not.
fn is_non_call_keyword(text: &str) -> bool {
    matches!(
        text,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "else"
            | "let"
            | "move"
            | "break"
            | "continue"
            | "in"
            | "as"
            | "fn"
            | "await"
    )
}

/// Scans one function body (`open`/`close` are the brace token indices)
/// for lock acquisitions, held-across edges, and calls made while a
/// guard is live.
fn scan_fn_body(file: &SourceFile, open: usize, close: usize) -> FnFacts {
    let toks = &file.tokens;
    let mut facts = FnFacts::default();
    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // Index of the first token of the current statement, one slot per
    // open block.
    let mut stmt_first: Vec<usize> = vec![open + 1];

    let mut i = open + 1;
    while i < close.min(toks.len()) {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
            stmt_first.push(i + 1);
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            // Guards acquired inside the closing block die with it.
            held.retain(|g| g.depth < depth);
            depth = depth.saturating_sub(1);
            stmt_first.pop();
            if let Some(s) = stmt_first.last_mut() {
                *s = i + 1;
            }
            i += 1;
            continue;
        }
        if t.is_punct(";") {
            held.retain(|g| !(g.stmt_scoped && g.depth == depth));
            if let Some(s) = stmt_first.last_mut() {
                *s = i + 1;
            }
            i += 1;
            continue;
        }
        // `drop(name)` releases a bound guard early.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && toks.get(i + 2).is_some_and(|n| n.kind == TokenKind::Ident)
            && toks.get(i + 3).is_some_and(|n| n.is_punct(")"))
        {
            let name = toks[i + 2].text.as_str();
            held.retain(|g| g.name.as_deref() != Some(name));
            i += 4;
            continue;
        }
        // `.lock()` — an acquisition.
        if t.is_ident("lock")
            && i > open
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            let class = receiver_class(toks, i - 1).unwrap_or_else(|| "<expr>".to_string());
            let site = Site {
                path: file.rel_path.clone(),
                line: t.line,
            };
            for g in &held {
                facts.edges.push(LockEdge {
                    from: g.class.clone(),
                    from_site: g.site.clone(),
                    to: class.clone(),
                    to_site: site.clone(),
                    via: None,
                });
            }
            facts.acquires.push((class.clone(), site.clone()));

            // Scope of the new guard: `let name = x.lock();` (with an
            // optional `.unwrap()`/`.expect(…)` adapter) binds it to
            // the block; anything else is a statement temporary.
            let lock_close = matching_delim(toks, i + 1).unwrap_or(i + 2);
            let mut after = lock_close + 1;
            while toks.get(after).is_some_and(|n| n.is_punct("."))
                && toks
                    .get(after + 1)
                    .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
                && toks.get(after + 2).is_some_and(|n| n.is_punct("("))
            {
                after = matching_delim(toks, after + 2).map_or(after + 3, |c| c + 1);
            }
            let stmt_start = stmt_first.last().copied().unwrap_or(open + 1);
            let is_let = toks.get(stmt_start).is_some_and(|s| s.is_ident("let"));
            let ends_stmt = toks.get(after).is_some_and(|n| n.is_punct(";"));
            let (stmt_scoped, name) = if is_let && ends_stmt {
                let mut n = stmt_start + 1;
                if toks.get(n).is_some_and(|x| x.is_ident("mut")) {
                    n += 1;
                }
                let bound = toks
                    .get(n)
                    .filter(|x| x.kind == TokenKind::Ident)
                    .map(|x| x.text.clone());
                (false, bound)
            } else {
                (true, None)
            };
            held.push(Guard {
                class,
                site,
                depth,
                stmt_scoped,
                name,
            });
            i += 2;
            continue;
        }
        // A free-function call made while holding: candidate for
        // one-level expansion. Method and path calls (`.len()`,
        // `Vec::new()`) are excluded — bare-name resolution cannot see
        // the receiver's type, and `guard.len()` colliding with a
        // crate-local `fn len` would fabricate self-deadlocks.
        if t.kind == TokenKind::Ident
            && !held.is_empty()
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && !is_non_call_keyword(&t.text)
            && !(i > 0 && (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("::")))
        {
            facts.calls.push(CallWhileHeld {
                callee: t.text.clone(),
                held: held
                    .iter()
                    .map(|g| (g.class.clone(), g.site.clone()))
                    .collect(),
                line: t.line,
            });
        }
        i += 1;
    }
    facts
}

/// Builds the workspace lock-acquisition graph and reports every cycle
/// as an R9 violation with its full witness path.
#[must_use]
pub fn lock_order(files: &[SourceFile]) -> Vec<Violation> {
    let mut edges: Vec<LockEdge> = Vec::new();
    // crate dir -> fn name -> every acquisition in fns of that name.
    let mut crate_fns: BTreeMap<String, BTreeMap<String, Vec<(String, Site)>>> = BTreeMap::new();
    let mut crate_calls: BTreeMap<String, Vec<CallWhileHeld>> = BTreeMap::new();

    for file in files {
        if file.is_test_target {
            continue;
        }
        let crate_key = file.crate_dir.clone().unwrap_or_default();
        let parsed = parse(&file.tokens);
        for f in &parsed.fns {
            let Some((open, close)) = f.body else { continue };
            if file.ctx.test_mask.get(open).copied().unwrap_or(false) {
                continue;
            }
            let facts = scan_fn_body(file, open, close);
            edges.extend(facts.edges);
            if !facts.acquires.is_empty() {
                crate_fns
                    .entry(crate_key.clone())
                    .or_default()
                    .entry(f.name.clone())
                    .or_default()
                    .extend(facts.acquires);
            }
            crate_calls
                .entry(crate_key.clone())
                .or_default()
                .extend(facts.calls);
        }
    }

    // One level of intra-crate call expansion: holding X and calling a
    // crate-local fn that acquires Y adds X → Y.
    for (crate_key, calls) in &crate_calls {
        let Some(fns) = crate_fns.get(crate_key) else {
            continue;
        };
        for call in calls {
            let Some(acquires) = fns.get(&call.callee) else {
                continue;
            };
            for (held_class, held_site) in &call.held {
                for (to_class, to_site) in acquires {
                    edges.push(LockEdge {
                        from: held_class.clone(),
                        from_site: held_site.clone(),
                        to: to_class.clone(),
                        to_site: to_site.clone(),
                        via: Some((call.callee.clone(), call.line)),
                    });
                }
            }
        }
    }

    // Deterministic adjacency: one witness edge per (from, to), direct
    // edges preferred over call-expanded ones, then source order.
    edges.sort_by(|a, b| {
        (&a.from, &a.to, a.via.is_some(), &a.from_site, &a.to_site).cmp(&(
            &b.from,
            &b.to,
            b.via.is_some(),
            &b.from_site,
            &b.to_site,
        ))
    });
    let mut adj: BTreeMap<&str, BTreeMap<&str, &LockEdge>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().entry(&e.to).or_insert(e);
    }

    // Every cycle once: BFS the shortest cycle through each start node,
    // restricted to nodes ≥ start so each cycle is reported from its
    // lexicographically smallest class only.
    let mut out = Vec::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for start in nodes {
        let Some(cycle) = shortest_cycle(start, &adj) else {
            continue;
        };
        let classes: Vec<&str> = cycle
            .iter()
            .map(|e| e.from.as_str())
            .chain(std::iter::once(cycle[0].from.as_str()))
            .collect();
        let hops: Vec<String> = cycle
            .iter()
            .map(|e| {
                let via = e.via.as_ref().map_or(String::new(), |(callee, line)| {
                    format!(" via `{callee}()` called at line {line}")
                });
                format!(
                    "holding `{}` ({}:{}) acquires `{}` ({}:{}{via})",
                    e.from, e.from_site.path, e.from_site.line, e.to, e.to_site.path,
                    e.to_site.line,
                )
            })
            .collect();
        let anchor = &cycle[0];
        out.push(Violation {
            rule: RuleId::LockOrder,
            path: anchor.to_site.path.clone(),
            line: anchor.to_site.line,
            message: format!(
                "lock-order cycle {}: {} — two threads in opposite phases deadlock; \
                 acquire classes in one global order or drop the held guard first",
                classes.join(" → "),
                hops.join("; "),
            ),
        });
    }
    out
}

/// Shortest edge path `start → … → start` using only intermediate
/// nodes ≥ `start`; `None` when no cycle passes through `start`.
fn shortest_cycle<'a>(
    start: &'a str,
    adj: &BTreeMap<&'a str, BTreeMap<&'a str, &'a LockEdge>>,
) -> Option<Vec<&'a LockEdge>> {
    let mut parent: BTreeMap<&str, (&str, &'a LockEdge)> = BTreeMap::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    queue.push_back(start);
    while let Some(node) = queue.pop_front() {
        let Some(succs) = adj.get(node) else { continue };
        for (&next, &edge) in succs {
            if next == start {
                // Reconstruct start → … → node, then close the loop.
                let mut path = vec![edge];
                let mut cursor = node;
                while cursor != start {
                    let (prev, e) = parent.get(cursor)?;
                    path.push(e);
                    cursor = prev;
                }
                path.reverse();
                return Some(path);
            }
            if next < start || parent.contains_key(next) {
                continue;
            }
            parent.insert(next, (node, edge));
            queue.push_back(next);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::classify;

    fn violations_for(sources: &[(&str, &str)]) -> Vec<Violation> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(path, src)| classify(path, src))
            .collect();
        lock_order(&files)
    }

    #[test]
    fn manifest_parser_reads_package_and_internal_deps_only() {
        let m = parse_manifest(
            "crates/solver/Cargo.toml",
            "[package]\nname = \"enki-solver\"\nversion = \"0.1.0\"\n\n\
             [dependencies]\nenki-core.workspace = true\nenki-telemetry = { path = \"x\" }\n\
             parking_lot.workspace = true\n\n\
             [dev-dependencies]\nenki-obs.workspace = true\nproptest.workspace = true\n",
        );
        assert_eq!(m.package, "enki-solver");
        let deps: Vec<&str> = m.deps.iter().map(|(d, _)| d.as_str()).collect();
        assert_eq!(deps, vec!["enki-core", "enki-telemetry"]);
    }

    #[test]
    fn consistent_order_has_no_cycle() {
        let v = violations_for(&[(
            "crates/solver/src/par.rs",
            "fn a() { let g = queues.lock(); let h = slots.lock(); }",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn opposite_orders_across_files_form_a_cycle_with_witness() {
        let v = violations_for(&[
            (
                "crates/solver/src/par.rs",
                "fn a() { let g = queues.lock(); slots.lock().push(1); }",
            ),
            (
                "crates/serve/src/edge.rs",
                "fn b() { let g = slots.lock(); queues.lock().push(1); }",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        let msg = &v[0].message;
        assert!(msg.contains("queues → slots → queues"), "{msg}");
        assert!(msg.contains("crates/solver/src/par.rs:1"), "{msg}");
        assert!(msg.contains("crates/serve/src/edge.rs:1"), "{msg}");
    }

    #[test]
    fn statement_temporary_held_across_nested_acquire_is_a_self_cycle() {
        // The exact shape of a symmetric work-steal deadlock: the own-
        // queue guard is a temporary that lives to the end of the
        // statement, across the victim-queue acquisition.
        let v = violations_for(&[(
            "crates/solver/src/par.rs",
            "fn steal(me: usize, v: usize) {\n\
             let popped = queues[me].lock().pop_front().or_else(|| {\n\
             queues[v].lock().pop_back() });\n}",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("queues → queues"), "{}", v[0].message);
    }

    #[test]
    fn rebinding_to_its_own_statement_breaks_the_hold() {
        let v = violations_for(&[(
            "crates/solver/src/par.rs",
            "fn steal(me: usize, v: usize) {\n\
             let own = queues[me].lock().pop_front();\n\
             let popped = own.or_else(|| queues[v].lock().pop_back());\n}",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn bound_guard_lives_to_block_end_and_drop_releases_it() {
        // Bound guard held across the nested acquire in the next
        // statement: cycle with the reverse order elsewhere.
        let v = violations_for(&[(
            "crates/agents/src/threaded.rs",
            "fn a() { let g = alpha.lock(); beta.lock().push(1); }\n\
             fn b() { let g = beta.lock(); alpha.lock().push(1); }",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        // drop() before the nested acquire breaks the edge.
        let v = violations_for(&[(
            "crates/agents/src/threaded.rs",
            "fn a() { let g = alpha.lock(); drop(g); beta.lock().push(1); }\n\
             fn b() { let g = beta.lock(); drop(g); alpha.lock().push(1); }",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn one_level_call_expansion_finds_indirect_cycles() {
        let v = violations_for(&[(
            "crates/telemetry/src/recorder.rs",
            "fn flush() { let g = spans.lock(); emit(); }\n\
             fn emit() { metrics.lock().push(1); }\n\
             fn other() { let m = metrics.lock(); grab(); }\n\
             fn grab() { spans.lock().clear(); }",
        )]);
        // spans→metrics (via emit) and metrics→spans (via grab): a
        // 2-cycle found purely through one-level call expansion.
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].message.contains("via `emit()`") && v[0].message.contains("via `grab()`"),
            "expansion witness missing: {}",
            v[0].message
        );
    }

    #[test]
    fn method_calls_do_not_expand_by_bare_name() {
        // `.len()` on the locked Vec is std's method, not the
        // crate-local `fn len` that acquires the same class: bare-name
        // expansion must not fabricate a self-deadlock here.
        let v = violations_for(&[(
            "crates/serve/src/edge.rs",
            "fn len(&self) -> usize { self.frames.lock().len() }",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn guards_in_separate_statements_do_not_edge() {
        let v = violations_for(&[(
            "crates/serve/src/edge.rs",
            "fn a() { alpha.lock().push(1); beta.lock().push(1); }\n\
             fn b() { beta.lock().push(1); alpha.lock().push(1); }",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn match_scrutinee_guard_is_held_across_arms() {
        let v = violations_for(&[(
            "crates/telemetry/src/recorder.rs",
            "fn a() { match metrics.lock().get(k) { Some(_) => { spans.lock().push(1); } None => {} } }\n\
             fn b() { let g = spans.lock(); metrics.lock().push(1); }",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn test_code_is_exempt_from_lock_order() {
        let v = violations_for(&[(
            "crates/solver/src/par.rs",
            "#[cfg(test)]\nmod tests {\n\
             fn a() { let g = alpha.lock(); beta.lock().push(1); }\n\
             fn b() { let g = beta.lock(); alpha.lock().push(1); }\n}",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn layering_flags_disallowed_manifest_edge_and_source_path() {
        let files = vec![
            classify(
                "crates/core/src/config.rs",
                "use enki_obs::report::Summary;\nfn f() { let x = enki_solver::exact::solve(); }",
            ),
            classify(
                "crates/agents/src/runtime.rs",
                "use enki_serve::edge::EdgeMailbox;\nfn g() {}",
            ),
            classify(
                "crates/agents/src/durable.rs",
                "use enki_durable::Storage;\nfn h() {}",
            ),
        ];
        let manifests = vec![
            parse_manifest(
                "crates/core/Cargo.toml",
                "[package]\nname = \"enki-core\"\n[dependencies]\nenki-obs.workspace = true\n",
            ),
            parse_manifest(
                "crates/agents/Cargo.toml",
                "[package]\nname = \"enki-agents\"\n[dependencies]\n\
                 enki-serve.workspace = true\nenki-durable.workspace = true\n",
            ),
        ];
        let v = layering(&files, &manifests);
        let paths: Vec<&str> = v.iter().map(|x| x.path.as_str()).collect();
        // core: manifest edge + two source refs; agents: the edge module ban.
        assert!(paths.contains(&"crates/core/Cargo.toml"), "{v:?}");
        assert_eq!(
            v.iter()
                .filter(|x| x.path == "crates/core/src/config.rs")
                .count(),
            2,
            "{v:?}"
        );
        let ban: Vec<_> = v
            .iter()
            .filter(|x| x.path == "crates/agents/src/runtime.rs")
            .collect();
        assert_eq!(ban.len(), 1, "{v:?}");
        assert!(ban[0].message.contains("enki_serve::edge"), "{v:?}");
        // The plain durable facade import is fine.
        assert!(!paths.contains(&"crates/agents/src/durable.rs"), "{v:?}");
    }

    #[test]
    fn layering_ignores_test_code_and_unconstrained_crates() {
        let files = vec![
            classify(
                "crates/core/src/config.rs",
                "#[cfg(test)]\nmod tests { use enki_obs::x; }\nfn f() {}",
            ),
            classify("crates/core/tests/t.rs", "use enki_obs::x;\nfn f() {}"),
            classify(
                "crates/bench/src/bin/bench_all.rs",
                "use enki_serve::edge::EdgeMailbox;\nuse enki_obs::x;\nfn f() {}",
            ),
        ];
        assert!(layering(&files, &[]).is_empty());
    }
}
