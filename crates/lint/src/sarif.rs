//! SARIF 2.1.0 output (`check --format sarif`) plus a zero-dependency
//! validator for the required-property subset the emitter promises.
//!
//! SARIF (Static Analysis Results Interchange Format) is what code
//! hosts and CI dashboards ingest. The emitter covers the minimal
//! profile those consumers need:
//!
//! * `version` / `$schema` at the top level;
//! * one `run` with `tool.driver` carrying the full rule catalog
//!   (`id`, `name`, `shortDescription`, `fullDescription`,
//!   `helpUri`-free — the catalog is self-describing);
//! * one `result` per violation (`level: "error"`), per suppressed
//!   finding (`level: "note"` with a `suppressions` entry), and per
//!   stale baseline entry (`level: "warning"`, located at the baseline
//!   line);
//! * every `result` has `ruleId`, `message.text`, and one physical
//!   location with `artifactLocation.uri` and `region.startLine`.
//!
//! Because the crate takes no external dependencies, [`validate`]
//! ships its own small JSON parser ([`parse_json`]) and walks the
//! structure above; a unit test holds the emitter to it, and external
//! tampering (a missing `message`, a non-numeric `startLine`) fails
//! with a path-qualified error.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::baseline::StaleEntry;
use crate::report::Report;
use crate::rules::{Violation, ALL_RULES};

/// The SARIF spec version the emitter targets.
pub const SARIF_VERSION: &str = "2.1.0";

/// The schema URI stamped into `$schema`.
pub const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn result_json(v: &Violation, level: &str, suppressed: bool) -> String {
    let suppressions = if suppressed {
        ",\"suppressions\":[{\"kind\":\"external\"}]"
    } else {
        ""
    };
    format!(
        "{{\"ruleId\":\"{}\",\"level\":\"{level}\",\"message\":{{\"text\":\"{}\"}},\
         \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
         \"region\":{{\"startLine\":{}}}}}}}]{suppressions}}}",
        v.rule.code(),
        escape(&v.message),
        escape(&v.path),
        v.line.max(1),
    )
}

fn stale_json(s: &StaleEntry) -> String {
    format!(
        "{{\"ruleId\":\"{}\",\"level\":\"warning\",\"message\":{{\"text\":\"stale baseline \
         entry: {} {} expects {} violation(s), tree has {} — update or delete the \
         entry\"}},\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
         {{\"uri\":\"lint.baseline\"}},\"region\":{{\"startLine\":{}}}}}}}]}}",
        s.entry.rule.code(),
        s.entry.rule.code(),
        escape(&s.entry.path),
        s.entry.count,
        s.actual,
        s.entry.line.max(1),
    )
}

/// Renders the report as a SARIF 2.1.0 document.
#[must_use]
pub fn to_sarif(report: &Report) -> String {
    let rules: Vec<String> = ALL_RULES
        .iter()
        .map(|r| {
            format!(
                "{{\"id\":\"{}\",\"name\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\
                 \"fullDescription\":{{\"text\":\"{}\"}}}}",
                r.code(),
                r.name(),
                escape(r.enforces()),
                escape(r.rationale()),
            )
        })
        .collect();
    let mut results: Vec<String> = Vec::new();
    for v in &report.violations {
        results.push(result_json(v, "error", false));
    }
    for (v, _reason) in &report.suppressed {
        results.push(result_json(v, "note", true));
    }
    for s in &report.stale {
        results.push(stale_json(s));
    }
    format!(
        "{{\"$schema\":\"{SARIF_SCHEMA}\",\"version\":\"{SARIF_VERSION}\",\"runs\":[{{\
         \"tool\":{{\"driver\":{{\"name\":\"enki-lint\",\"version\":\"{}\",\
         \"informationUri\":\"https://example.invalid/enki\",\"rules\":[{}]}}}},\
         \"automationDetails\":{{\"id\":\"enki-lint/{}\"}},\
         \"results\":[{}]}}]}}\n",
        env!("CARGO_PKG_VERSION"),
        rules.join(","),
        report.run_id(),
        results.join(","),
    )
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (validation only)
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are kept as `f64`: SARIF's required
/// numeric properties (line numbers) fit exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// garbage is not.
///
/// # Errors
///
/// Returns a byte-offset-qualified message on malformed input.
#[must_use = "dropping the Result ignores JSON parse failures"]
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                char::from(b),
                self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| {
            matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        }) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through intact.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

fn require<'a>(value: &'a Json, key: &str, at: &str) -> Result<&'a Json, String> {
    value
        .get(key)
        .ok_or_else(|| format!("{at}: missing required property `{key}`"))
}

fn require_str<'a>(value: &'a Json, key: &str, at: &str) -> Result<&'a str, String> {
    require(value, key, at)?
        .as_str()
        .ok_or_else(|| format!("{at}.{key}: expected a string"))
}

/// Validates a SARIF document against the required-property subset of
/// SARIF 2.1.0 that [`to_sarif`] promises: `version`, a non-empty
/// `runs` array, `tool.driver.name`, rule `id`s, and per-result
/// `ruleId` / `message.text` / physical location with a positive
/// `startLine`. Errors name the offending JSON path.
///
/// # Errors
///
/// Returns a path-qualified message naming the first missing or
/// mistyped required property.
#[must_use = "dropping the Result ignores SARIF validation failures"]
pub fn validate(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    let version = require_str(&doc, "version", "$")?;
    if version != SARIF_VERSION {
        return Err(format!("$.version: expected \"{SARIF_VERSION}\", got \"{version}\""));
    }
    let runs = require(&doc, "runs", "$")?
        .as_arr()
        .ok_or("$.runs: expected an array")?;
    if runs.is_empty() {
        return Err("$.runs: must contain at least one run".to_string());
    }
    for (ri, run) in runs.iter().enumerate() {
        let at = format!("$.runs[{ri}]");
        let tool = require(run, "tool", &at)?;
        let driver = require(tool, "driver", &format!("{at}.tool"))?;
        require_str(driver, "name", &format!("{at}.tool.driver"))?;
        let mut rule_ids = Vec::new();
        if let Some(rules) = driver.get("rules").and_then(Json::as_arr) {
            for (i, rule) in rules.iter().enumerate() {
                rule_ids.push(
                    require_str(rule, "id", &format!("{at}.tool.driver.rules[{i}]"))?.to_string(),
                );
            }
        }
        let results = require(run, "results", &at)?
            .as_arr()
            .ok_or_else(|| format!("{at}.results: expected an array"))?;
        for (i, result) in results.iter().enumerate() {
            let rat = format!("{at}.results[{i}]");
            let rule_id = require_str(result, "ruleId", &rat)?;
            if !rule_ids.is_empty() && !rule_ids.iter().any(|r| r == rule_id) {
                return Err(format!("{rat}.ruleId: `{rule_id}` not in the driver rule catalog"));
            }
            let message = require(result, "message", &rat)?;
            require_str(message, "text", &format!("{rat}.message"))?;
            let locations = require(result, "locations", &rat)?
                .as_arr()
                .ok_or_else(|| format!("{rat}.locations: expected an array"))?;
            for (li, loc) in locations.iter().enumerate() {
                let lat = format!("{rat}.locations[{li}]");
                let phys = require(loc, "physicalLocation", &lat)?;
                let artifact =
                    require(phys, "artifactLocation", &format!("{lat}.physicalLocation"))?;
                require_str(artifact, "uri", &format!("{lat}.physicalLocation.artifactLocation"))?;
                let region = require(phys, "region", &format!("{lat}.physicalLocation"))?;
                match require(region, "startLine", &format!("{lat}.physicalLocation.region"))? {
                    Json::Num(n) if *n >= 1.0 && n.fract().abs() < f64::EPSILON => {}
                    other => {
                        return Err(format!(
                            "{lat}.physicalLocation.region.startLine: expected a positive \
                             integer, got {other:?}"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineEntry;
    use crate::rules::RuleId;

    fn sample() -> Report {
        Report {
            files: 2,
            violations: vec![Violation {
                rule: RuleId::LockOrder,
                path: "crates/solver/src/par.rs".to_string(),
                line: 12,
                message: "lock-order cycle \"queues → queues\"\nwitness".to_string(),
            }],
            suppressed: vec![(
                Violation {
                    rule: RuleId::NoPanic,
                    path: "crates/core/src/x.rs".to_string(),
                    line: 3,
                    message: "unwrap".to_string(),
                },
                "legacy".to_string(),
            )],
            stale: vec![StaleEntry {
                entry: BaselineEntry {
                    rule: RuleId::FloatDiscipline,
                    path: "crates/stats/src/y.rs".to_string(),
                    count: 2,
                    reason: "legacy".to_string(),
                    line: 7,
                },
                actual: 0,
            }],
            git_rev: "abc".to_string(),
        }
    }

    #[test]
    fn emitted_sarif_validates_against_the_required_subset() {
        let sarif = to_sarif(&sample());
        validate(&sarif).expect("emitter must satisfy its own validator");
    }

    #[test]
    fn sarif_carries_every_catalog_rule_and_all_finding_kinds() {
        let sarif = to_sarif(&sample());
        let doc = parse_json(&sarif).expect("parses");
        let run = &doc.get("runs").and_then(Json::as_arr).expect("runs")[0];
        let rules = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Json::as_arr)
            .expect("rules");
        assert_eq!(rules.len(), ALL_RULES.len());
        let results = run.get("results").and_then(Json::as_arr).expect("results");
        assert_eq!(results.len(), 3);
        let levels: Vec<&str> = results
            .iter()
            .filter_map(|r| r.get("level").and_then(Json::as_str))
            .collect();
        assert_eq!(levels, vec!["error", "note", "warning"]);
        // Suppressed findings carry a suppression marker.
        assert!(results[1].get("suppressions").is_some());
    }

    #[test]
    fn tampering_fails_with_a_path_qualified_error() {
        let sarif = to_sarif(&sample());
        let no_message = sarif.replace("\"message\"", "\"msg\"");
        let err = validate(&no_message).expect_err("must reject");
        assert!(err.contains("message"), "{err}");
        let bad_line = sarif.replace("\"startLine\":12", "\"startLine\":\"12\"");
        let err = validate(&bad_line).expect_err("must reject");
        assert!(err.contains("startLine"), "{err}");
        let wrong_version = sarif.replace("\"version\":\"2.1.0\"", "\"version\":\"9.9\"");
        let err = validate(&wrong_version).expect_err("must reject");
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn json_parser_handles_escapes_nesting_and_rejects_garbage() {
        let doc = parse_json("{\"a\": [1, {\"b\": \"x\\n\\u0041\"}, true, null]}").expect("parses");
        let arr = doc.get("a").and_then(Json::as_arr).expect("a");
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("x\nA"));
        assert_eq!(arr[2], Json::Bool(true));
        assert_eq!(arr[3], Json::Null);
        assert!(parse_json("{\"a\": 1} extra").is_err());
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
    }
}
