//! Baseline suppression files.
//!
//! A baseline grandfathers *known, justified* violations so the linter
//! can gate CI while legacy sites are burned down. The format is
//! line-oriented and diff-friendly:
//!
//! ```text
//! # comment lines and blanks are ignored
//! R1 crates/solver/src/exact.rs 2 # heap pop is guarded by the loop invariant …
//! ```
//!
//! Each entry is `<rule> <path> <count> # <justification>`:
//!
//! * the **justification is mandatory** — an entry without one (or with
//!   the `UNJUSTIFIED` placeholder emitted by `--write-baseline`) is a
//!   hard error, never a suppression;
//! * the **count must match the tree exactly**: fewer matches means the
//!   entry is stale and must be deleted (so fixed violations cannot
//!   silently regress), more matches means new violations leak through.

use std::collections::BTreeMap;

use crate::rules::{RuleId, Violation};

/// Placeholder reason written by `--write-baseline`; rejected at parse
/// time so generated baselines must be hand-justified before they count.
pub const UNJUSTIFIED: &str = "UNJUSTIFIED";

/// One parsed baseline line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Suppressed rule.
    pub rule: RuleId,
    /// Workspace-relative path the suppression applies to.
    pub path: String,
    /// Exact number of violations this entry covers.
    pub count: usize,
    /// Why the site is exempt.
    pub reason: String,
    /// 1-based line in the baseline file (for error messages).
    pub line: u32,
}

/// A stale or miscounted baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleEntry {
    /// The offending entry.
    pub entry: BaselineEntry,
    /// How many violations actually matched.
    pub actual: usize,
}

/// Parses a baseline file. Returns entries or every malformed line.
///
/// # Errors
///
/// One message per malformed line: unknown rule, missing count, or
/// missing/placeholder justification.
#[must_use = "dropping the Result ignores malformed baseline entries"]
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, Vec<String>> {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = (idx + 1) as u32;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (head, reason) = match trimmed.split_once('#') {
            Some((h, r)) => (h.trim(), r.trim()),
            None => (trimmed, ""),
        };
        if reason.is_empty() {
            errors.push(format!(
                "baseline line {line}: missing justification — every suppression \
                 needs `# <why this site is exempt>`"
            ));
            continue;
        }
        if reason.contains(UNJUSTIFIED) {
            errors.push(format!(
                "baseline line {line}: placeholder `{UNJUSTIFIED}` justification — \
                 replace it with the actual reason the site is exempt"
            ));
            continue;
        }
        let fields: Vec<&str> = head.split_whitespace().collect();
        let [rule, path, count] = fields[..] else {
            errors.push(format!(
                "baseline line {line}: expected `<rule> <path> <count> # <reason>`, \
                 got `{trimmed}`"
            ));
            continue;
        };
        let Some(rule) = RuleId::parse(rule) else {
            errors.push(format!("baseline line {line}: unknown rule `{rule}`"));
            continue;
        };
        let Ok(count) = count.parse::<usize>() else {
            errors.push(format!(
                "baseline line {line}: count `{count}` is not a non-negative integer"
            ));
            continue;
        };
        if count == 0 {
            errors.push(format!(
                "baseline line {line}: count 0 suppresses nothing — delete the entry"
            ));
            continue;
        }
        entries.push(BaselineEntry {
            rule,
            path: path.to_string(),
            count,
            reason: reason.to_string(),
            line,
        });
    }
    if errors.is_empty() {
        Ok(entries)
    } else {
        Err(errors)
    }
}

/// Outcome of matching a violation list against a baseline.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Violations not covered by any entry — these fail the build.
    pub remaining: Vec<Violation>,
    /// Violations absorbed by a baseline entry.
    pub suppressed: Vec<Violation>,
    /// Entries whose count no longer matches the tree — these also fail.
    pub stale: Vec<StaleEntry>,
}

/// Applies baseline entries to a violation list.
///
/// Violations are grouped by `(rule, path)`; an entry suppresses up to
/// `count` of its group's violations (lowest line first, so the set is
/// deterministic). A count mismatch in either direction yields a
/// [`StaleEntry`].
#[must_use]
pub fn apply(entries: &[BaselineEntry], violations: Vec<Violation>) -> BaselineOutcome {
    // (allowed, used, index of the entry reported on staleness).
    let mut budget: BTreeMap<(RuleId, String), (usize, usize, usize)> = BTreeMap::new();
    for (idx, e) in entries.iter().enumerate() {
        // Duplicate entries for the same (rule, path) sum their counts;
        // the last entry is reported on staleness.
        let slot = budget
            .entry((e.rule, e.path.clone()))
            .or_insert((0, 0, idx));
        slot.0 += e.count;
        slot.2 = idx;
    }

    let mut outcome = BaselineOutcome::default();
    let mut sorted = violations;
    sorted.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
    });
    for v in sorted {
        let key = (v.rule, v.path.clone());
        match budget.get_mut(&key) {
            Some((allowed, used, _)) if *used < *allowed => {
                *used += 1;
                outcome.suppressed.push(v);
            }
            _ => outcome.remaining.push(v),
        }
    }
    for (allowed, used, idx) in budget.values() {
        if used != allowed {
            outcome.stale.push(StaleEntry {
                entry: entries[*idx].clone(),
                actual: *used,
            });
        }
    }
    outcome
}

/// Renders a baseline file covering `violations`, grouped per rule and
/// path, with the [`UNJUSTIFIED`] placeholder reason (which `check`
/// rejects until replaced).
#[must_use]
pub fn render(violations: &[Violation]) -> String {
    let mut counts: BTreeMap<(RuleId, &str), usize> = BTreeMap::new();
    for v in violations {
        *counts.entry((v.rule, v.path.as_str())).or_insert(0) += 1;
    }
    let mut out = String::from(
        "# enki-lint baseline — `<rule> <path> <count> # <justification>`\n\
         # Every entry must carry a real justification; `UNJUSTIFIED` placeholders\n\
         # fail the check. Counts must match the tree exactly (no stale entries).\n",
    );
    for ((rule, path), count) in counts {
        out.push_str(&format!("{rule} {path} {count} # {UNJUSTIFIED}: explain why\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: RuleId, path: &str, line: u32) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn well_formed_baseline_parses() {
        let entries = parse(
            "# header\n\nR1 crates/core/src/x.rs 2 # guarded by invariant\n\
             no-direct-clock crates/sim/src/y.rs 1 # bench-only timing\n",
        )
        .expect("parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, RuleId::NoPanic);
        assert_eq!(entries[0].count, 2);
        assert_eq!(entries[1].rule, RuleId::NoDirectClock);
    }

    #[test]
    fn missing_justification_is_rejected() {
        let err = parse("R1 crates/core/src/x.rs 2\n").expect_err("rejected");
        assert!(err[0].contains("missing justification"), "{err:?}");
        let err = parse("R1 crates/core/src/x.rs 2 #   \n").expect_err("rejected");
        assert!(err[0].contains("missing justification"), "{err:?}");
    }

    #[test]
    fn placeholder_justification_is_rejected() {
        let err =
            parse("R1 crates/core/src/x.rs 2 # UNJUSTIFIED: explain why\n").expect_err("rejected");
        assert!(err[0].contains("UNJUSTIFIED"), "{err:?}");
    }

    #[test]
    fn unknown_rule_and_bad_count_are_rejected() {
        let err = parse("R99 a.rs 1 # x\nR1 a.rs none # x\nR1 a.rs 0 # x\n").expect_err("rejected");
        assert_eq!(err.len(), 3);
    }

    #[test]
    fn exact_match_suppresses_everything() {
        let entries = parse("R1 a.rs 2 # ok\n").expect("parses");
        let out = apply(
            &entries,
            vec![v(RuleId::NoPanic, "a.rs", 3), v(RuleId::NoPanic, "a.rs", 9)],
        );
        assert!(out.remaining.is_empty());
        assert_eq!(out.suppressed.len(), 2);
        assert!(out.stale.is_empty());
    }

    #[test]
    fn undercount_leaks_excess_violations() {
        let entries = parse("R1 a.rs 1 # ok\n").expect("parses");
        let out = apply(
            &entries,
            vec![v(RuleId::NoPanic, "a.rs", 9), v(RuleId::NoPanic, "a.rs", 3)],
        );
        // Deterministic: the lowest line is suppressed, the rest leak.
        assert_eq!(out.suppressed.len(), 1);
        assert_eq!(out.suppressed[0].line, 3);
        assert_eq!(out.remaining.len(), 1);
        assert_eq!(out.remaining[0].line, 9);
    }

    #[test]
    fn overcount_is_stale() {
        let entries = parse("R1 a.rs 3 # ok\n").expect("parses");
        let out = apply(&entries, vec![v(RuleId::NoPanic, "a.rs", 3)]);
        assert_eq!(out.stale.len(), 1);
        assert_eq!(out.stale[0].actual, 1);
        assert_eq!(out.stale[0].entry.count, 3);
    }

    #[test]
    fn entry_for_untouched_file_is_stale() {
        let entries = parse("R4 gone.rs 1 # ok\n").expect("parses");
        let out = apply(&entries, Vec::new());
        assert_eq!(out.stale.len(), 1);
        assert_eq!(out.stale[0].actual, 0);
    }

    #[test]
    fn rule_and_path_must_both_match() {
        let entries = parse("R1 a.rs 1 # ok\n").expect("parses");
        let out = apply(&entries, vec![v(RuleId::NoDirectClock, "a.rs", 3)]);
        assert_eq!(out.remaining.len(), 1);
        assert_eq!(out.stale.len(), 1);
    }

    #[test]
    fn render_round_trips_through_parse_after_justifying() {
        let violations = vec![
            v(RuleId::NoPanic, "a.rs", 3),
            v(RuleId::NoPanic, "a.rs", 9),
            v(RuleId::FloatDiscipline, "b.rs", 1),
        ];
        let rendered = render(&violations);
        // Placeholder reasons are rejected as-is …
        assert!(parse(&rendered).is_err());
        // … but once justified, the file parses and exactly covers the tree.
        let justified = rendered.replace("UNJUSTIFIED: explain why", "legacy, tracked in #42");
        let entries = parse(&justified).expect("parses");
        let out = apply(&entries, violations);
        assert!(out.remaining.is_empty());
        assert!(out.stale.is_empty());
        assert_eq!(out.suppressed.len(), 3);
    }
}
