//! Report rendering: human-readable text and machine-readable JSONL.
//!
//! The JSON output is line-oriented and reuses the `enki-telemetry/1`
//! header shape (`type`/`schema`/`run_id`/`label`/`seed`/`git_rev`/
//! `clock` on the first line) under its own schema tag `enki-lint/1`,
//! so the CI artifact tooling that already parses telemetry traces can
//! parse lint reports with the same reader:
//!
//! ```text
//! {"type":"run","schema":"enki-lint/1","run_id":"…","label":"enki-lint","seed":0,"git_rev":"…","clock":"none","files":96}
//! {"type":"violation","rule":"R1","name":"no-panic","file":"…","line":12,"message":"…"}
//! {"type":"suppressed","rule":"R1","file":"…","line":30,"reason":"…"}
//! {"type":"stale","rule":"R1","file":"…","expected":3,"actual":1,"baseline_line":7}
//! {"type":"summary","files":96,"violations":0,"suppressed":4,"stale":0,"ok":true}
//! ```
//!
//! Everything is deterministic: the `run_id` is a content hash of the
//! findings, not a timestamp, so identical trees produce identical
//! reports byte-for-byte (the same discipline R2 enforces on the code
//! under analysis).

use std::fmt::Write as _;
use std::path::Path;

use crate::baseline::StaleEntry;
use crate::rules::Violation;

/// Schema tag stamped into every JSON report header.
pub const SCHEMA: &str = "enki-lint/1";

/// The full result of one `check` run.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned.
    pub files: usize,
    /// Unsuppressed violations (fail the build).
    pub violations: Vec<Violation>,
    /// Baseline-suppressed violations, with their justifications.
    pub suppressed: Vec<(Violation, String)>,
    /// Stale baseline entries (fail the build).
    pub stale: Vec<StaleEntry>,
    /// Git revision of the tree, or `"unknown"`.
    pub git_rev: String,
}

impl Report {
    /// Whether the tree is clean: no violations and no stale entries.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty()
    }

    /// Deterministic content-hash id for this report (FNV-1a over the
    /// findings), in place of the timestamp a telemetry run would use.
    #[must_use]
    pub fn run_id(&self) -> String {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&(self.files as u64).to_le_bytes());
        for v in self.violations.iter().chain(self.suppressed.iter().map(|(v, _)| v)) {
            eat(v.rule.code().as_bytes());
            eat(v.path.as_bytes());
            eat(&v.line.to_le_bytes());
        }
        for s in &self.stale {
            eat(s.entry.path.as_bytes());
            eat(&(s.actual as u64).to_le_bytes());
        }
        format!("lint-{hash:016x}")
    }
}

/// Reads the current git revision from `.git` without shelling out
/// (the linter must work in minimal CI containers).
#[must_use]
pub fn git_rev(root: &Path) -> String {
    let head = match std::fs::read_to_string(root.join(".git/HEAD")) {
        Ok(h) => h,
        Err(_) => return "unknown".to_string(),
    };
    let head = head.trim();
    if let Some(reference) = head.strip_prefix("ref: ") {
        if let Ok(rev) = std::fs::read_to_string(root.join(".git").join(reference)) {
            return rev.trim().to_string();
        }
        // Packed refs fallback.
        if let Ok(packed) = std::fs::read_to_string(root.join(".git/packed-refs")) {
            for line in packed.lines() {
                if let Some(rev) = line.strip_suffix(reference) {
                    return rev.trim().to_string();
                }
            }
        }
        return "unknown".to_string();
    }
    head.to_string()
}

fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable JSONL report.
#[must_use]
pub fn to_jsonl(report: &Report) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"run\",\"schema\":\"{SCHEMA}\",\"run_id\":\"{}\",\"label\":\"enki-lint\",\
         \"seed\":0,\"git_rev\":\"{}\",\"clock\":\"none\",\"files\":{}}}",
        report.run_id(),
        escape_json(&report.git_rev),
        report.files
    );
    for v in &report.violations {
        let _ = writeln!(
            out,
            "{{\"type\":\"violation\",\"rule\":\"{}\",\"name\":\"{}\",\"file\":\"{}\",\
             \"line\":{},\"message\":\"{}\"}}",
            v.rule.code(),
            v.rule.name(),
            escape_json(&v.path),
            v.line,
            escape_json(&v.message)
        );
    }
    for (v, reason) in &report.suppressed {
        let _ = writeln!(
            out,
            "{{\"type\":\"suppressed\",\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\
             \"reason\":\"{}\"}}",
            v.rule.code(),
            escape_json(&v.path),
            v.line,
            escape_json(reason)
        );
    }
    for s in &report.stale {
        let _ = writeln!(
            out,
            "{{\"type\":\"stale\",\"rule\":\"{}\",\"file\":\"{}\",\"expected\":{},\
             \"actual\":{},\"baseline_line\":{}}}",
            s.entry.rule.code(),
            escape_json(&s.entry.path),
            s.entry.count,
            s.actual,
            s.entry.line
        );
    }
    let _ = writeln!(
        out,
        "{{\"type\":\"summary\",\"files\":{},\"violations\":{},\"suppressed\":{},\
         \"stale\":{},\"ok\":{}}}",
        report.files,
        report.violations.len(),
        report.suppressed.len(),
        report.stale.len(),
        report.ok()
    );
    out
}

/// Renders the human-readable report.
#[must_use]
pub fn to_text(report: &Report) -> String {
    let mut out = String::new();
    for v in &report.violations {
        let _ = writeln!(
            out,
            "{}:{}: {} [{}]: {}",
            v.path,
            v.line,
            v.rule.code(),
            v.rule.name(),
            v.message
        );
    }
    for s in &report.stale {
        let _ = writeln!(
            out,
            "lint.baseline:{}: stale entry: {} {} expects {} violation(s), tree has {} — \
             update or delete the entry",
            s.entry.line,
            s.entry.rule.code(),
            s.entry.path,
            s.entry.count,
            s.actual
        );
    }
    let _ = writeln!(
        out,
        "enki-lint: {} file(s), {} violation(s), {} suppressed, {} stale — {}",
        report.files,
        report.violations.len(),
        report.suppressed.len(),
        report.stale.len(),
        if report.ok() { "ok" } else { "FAIL" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    fn sample() -> Report {
        Report {
            files: 3,
            violations: vec![Violation {
                rule: RuleId::NoPanic,
                path: "crates/core/src/x.rs".to_string(),
                line: 7,
                message: "a \"quoted\" message\nwith newline".to_string(),
            }],
            suppressed: vec![(
                Violation {
                    rule: RuleId::FloatDiscipline,
                    path: "crates/stats/src/y.rs".to_string(),
                    line: 2,
                    message: String::new(),
                },
                "legacy".to_string(),
            )],
            stale: Vec::new(),
            git_rev: "abc123".to_string(),
        }
    }

    #[test]
    fn jsonl_header_reuses_the_telemetry_shape() {
        let json = to_jsonl(&sample());
        let header = json.lines().next().expect("header");
        for key in ["\"type\":\"run\"", "\"schema\":\"enki-lint/1\"", "\"run_id\"", "\"label\"", "\"seed\"", "\"git_rev\"", "\"clock\""] {
            assert!(header.contains(key), "missing {key} in {header}");
        }
    }

    #[test]
    fn jsonl_escapes_quotes_and_newlines() {
        let json = to_jsonl(&sample());
        assert!(json.contains("a \\\"quoted\\\" message\\nwith newline"));
        assert!(!json.contains("message\nwith"));
    }

    #[test]
    fn run_id_is_a_deterministic_content_hash() {
        assert_eq!(sample().run_id(), sample().run_id());
        let mut other = sample();
        other.violations[0].line = 8;
        assert_ne!(sample().run_id(), other.run_id());
    }

    #[test]
    fn ok_tracks_violations_and_staleness() {
        let mut r = sample();
        assert!(!r.ok());
        r.violations.clear();
        assert!(r.ok());
    }

    #[test]
    fn text_report_names_file_line_and_rule() {
        let text = to_text(&sample());
        assert!(text.contains("crates/core/src/x.rs:7: R1 [no-panic]"));
        assert!(text.contains("1 violation(s), 1 suppressed"));
        assert!(text.contains("FAIL"));
    }
}
