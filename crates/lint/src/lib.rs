//! # enki-lint
//!
//! Workspace-aware static analysis for the Enki reproduction. The
//! mechanism's headline guarantees — ex ante budget balance
//! (Theorem 1) and weak Bayesian incentive compatibility (Theorem 2) —
//! only hold in code if the hot paths are *deterministic*, *panic-free
//! on adversarial input*, and *careful with floating-point money*.
//! Earlier PRs established those disciplines by convention (clock
//! injection, `total_cmp` sorts, `Result` over `unwrap`); this crate
//! makes them machine-checked.
//!
//! Like `enki-telemetry`, the crate has **zero external dependencies**:
//! a small Rust token scanner ([`lexer`]), a test-region analyzer
//! ([`context`]), a seven-rule engine ([`rules`]), baseline
//! suppression files with mandatory justifications ([`baseline`]), and
//! deterministic text/JSONL reporting ([`report`]) that reuses the
//! `enki-telemetry/1` header shape.
//!
//! ## Usage
//!
//! ```text
//! cargo run -p enki-lint -- check                  # gate the workspace
//! cargo run -p enki-lint -- check --format json    # machine-readable
//! cargo run -p enki-lint -- rules                  # print the catalog
//! ```
//!
//! ## Programmatic entry point
//!
//! ```
//! use enki_lint::engine::{classify, run_check, CheckConfig};
//! use enki_lint::rules::check_file;
//!
//! let file = classify(
//!     "crates/core/src/example.rs",
//!     "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }",
//! );
//! let violations = check_file(&file);
//! assert_eq!(violations.len(), 1);
//! assert_eq!(violations[0].rule.code(), "R1");
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod context;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use engine::{run_check, CheckConfig};
pub use report::Report;
pub use rules::{RuleId, Violation, ALL_RULES};
