//! # enki-lint
//!
//! Workspace-aware static analysis for the Enki reproduction. The
//! mechanism's headline guarantees — ex ante budget balance
//! (Theorem 1) and weak Bayesian incentive compatibility (Theorem 2) —
//! only hold in code if the hot paths are *deterministic*, *panic-free
//! on adversarial input*, and *careful with floating-point money*.
//! Earlier PRs established those disciplines by convention (clock
//! injection, `total_cmp` sorts, `Result` over `unwrap`); this crate
//! makes them machine-checked.
//!
//! Like `enki-telemetry`, the crate has **zero external dependencies**:
//! a small Rust token scanner ([`lexer`]), a test-region analyzer
//! ([`context`]), an item-level parser ([`parse`]), a twelve-rule
//! engine ([`rules`]) with workspace-graph passes ([`graph`],
//! [`taint`]), baseline suppression files with mandatory
//! justifications ([`baseline`]), and deterministic text/JSONL/SARIF
//! reporting ([`report`], [`sarif`]) — the JSONL output reuses the
//! `enki-telemetry/1` header shape.
//!
//! ## The catalog
//!
//! The per-file rules: R1 **no-panic**, R2 **no-direct-clock**,
//! R3 **float-discipline**, R4 **no-hash-iteration**,
//! R5 **thread-discipline**, R6 **must-use-result**,
//! R7 **crate-header**, R8 **fs-boundary**, R12 **cast-discipline**.
//! The workspace-graph rules, which see every file at once:
//! R9 **lock-order** (static lock-acquisition graph must be acyclic,
//! cycles fail with their full witness path), R10 **determinism-taint**
//! (nondeterminism sources must not flow into WAL/checkpoint encoders
//! or trace derivation), R11 **layering** (the declarative crate DAG).
//! [`rules::RuleId`] is the single source of truth: the CLI catalog and
//! the DESIGN.md table are both generated from it.
//!
//! ## Usage
//!
//! ```text
//! cargo run -p enki-lint -- check                  # gate the workspace
//! cargo run -p enki-lint -- check --format json    # machine-readable
//! cargo run -p enki-lint -- check --format sarif   # SARIF 2.1.0
//! cargo run -p enki-lint -- rules                  # print the catalog
//! cargo run -p enki-lint -- rules --markdown       # the DESIGN.md table
//! ```
//!
//! ## Programmatic entry point
//!
//! ```
//! use enki_lint::engine::{classify, run_check, CheckConfig};
//! use enki_lint::rules::check_file;
//!
//! let file = classify(
//!     "crates/core/src/example.rs",
//!     "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }",
//! );
//! let violations = check_file(&file);
//! assert_eq!(violations.len(), 1);
//! assert_eq!(violations[0].rule.code(), "R1");
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod context;
pub mod engine;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod taint;

pub use engine::{run_check, CheckConfig};
pub use report::Report;
pub use rules::{RuleId, Violation, ALL_RULES};
