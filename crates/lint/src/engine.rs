//! Workspace walking and check orchestration.

use std::path::{Path, PathBuf};

use crate::baseline;
use crate::context::analyze;
use crate::graph;
use crate::lexer::tokenize;
use crate::report::{git_rev, Report};
use crate::rules::{check_file, SourceFile, Violation};
use crate::taint;

/// Directory names never descended into: build output, vendored
/// dependency stand-ins, VCS metadata, and the linter's own rule
/// fixtures (which violate rules on purpose).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "node_modules"];

/// Configuration for one `check` run.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Baseline file; `None` disables suppression entirely.
    pub baseline: Option<PathBuf>,
}

/// Classifies one source file: which crate it belongs to, whether it
/// is a test target or a crate root, and its analyzed token stream.
#[must_use]
pub fn classify(rel_path: &str, source: &str) -> SourceFile {
    let tokens = tokenize(source);
    let ctx = analyze(&tokens);
    let crate_dir = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .map(str::to_string);
    let is_test_target = rel_path
        .split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples");
    let is_crate_root = rel_path.ends_with("src/lib.rs")
        || rel_path.ends_with("src/main.rs")
        || (rel_path.contains("src/bin/") && rel_path.ends_with(".rs"));
    SourceFile {
        rel_path: rel_path.to_string(),
        crate_dir,
        is_test_target,
        is_crate_root,
        tokens,
        ctx,
    }
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, files)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Discovers every lintable `.rs` file under `root`, sorted for
/// deterministic reports.
///
/// # Errors
///
/// Returns a message when a directory cannot be read.
#[must_use = "dropping the Result discards the file list and hides walk errors"]
pub fn discover(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    Ok(files)
}

/// Discovers every internal crate manifest (`crates/*/Cargo.toml`)
/// under `root`, sorted for deterministic reports.
fn discover_manifests(root: &Path) -> Vec<graph::Manifest> {
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path().join("Cargo.toml")))
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    paths
        .iter()
        .filter_map(|p| {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(p)
                .to_string_lossy()
                .replace('\\', "/");
            std::fs::read_to_string(p)
                .ok()
                .map(|text| graph::parse_manifest(&rel, &text))
        })
        .collect()
}

/// Runs the full check: walk, lex, per-file rule scan, the workspace
/// passes (R9 lock-order, R10 determinism-taint, R11 layering), and
/// baseline application.
///
/// # Errors
///
/// Returns a message on I/O failures or a malformed baseline file
/// (callers should treat this as a configuration error, distinct from
/// rule violations).
#[must_use = "dropping the report discards every finding and hides configuration errors"]
pub fn run_check(config: &CheckConfig) -> Result<Report, String> {
    let mut violations: Vec<Violation> = Vec::new();
    let files = discover(&config.root)?;
    let mut sources: Vec<SourceFile> = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path
            .strip_prefix(&config.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let classified = classify(&rel, &source);
        violations.extend(check_file(&classified));
        sources.push(classified);
    }
    // Workspace passes see every file at once.
    let manifests = discover_manifests(&config.root);
    violations.extend(graph::lock_order(&sources));
    violations.extend(graph::layering(&sources, &manifests));
    violations.extend(taint::determinism_taint(&sources));
    violations.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
    });

    let mut report = Report {
        files: files.len(),
        git_rev: git_rev(&config.root),
        ..Report::default()
    };
    match &config.baseline {
        Some(path) if path.exists() => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
            let entries = baseline::parse(&text).map_err(|errors| errors.join("\n"))?;
            let reasons: std::collections::BTreeMap<(crate::rules::RuleId, String), String> =
                entries
                    .iter()
                    .map(|e| ((e.rule, e.path.clone()), e.reason.clone()))
                    .collect();
            let outcome = baseline::apply(&entries, violations);
            report.violations = outcome.remaining;
            report.suppressed = outcome
                .suppressed
                .into_iter()
                .map(|v| {
                    let reason = reasons
                        .get(&(v.rule, v.path.clone()))
                        .cloned()
                        .unwrap_or_default();
                    (v, reason)
                })
                .collect();
            report.stale = outcome.stale;
        }
        _ => report.violations = violations,
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_workspace_layout() {
        let f = classify("crates/solver/src/exact.rs", "fn f() {}");
        assert_eq!(f.crate_dir.as_deref(), Some("solver"));
        assert!(!f.is_test_target);
        assert!(!f.is_crate_root);

        let f = classify("crates/agents/tests/chaos.rs", "fn f() {}");
        assert!(f.is_test_target);

        for root in [
            "src/lib.rs",
            "crates/core/src/lib.rs",
            "crates/lint/src/main.rs",
            "crates/bench/src/bin/repro_all.rs",
        ] {
            assert!(classify(root, "").is_crate_root, "{root}");
        }
        assert!(!classify("crates/core/src/time.rs", "").is_crate_root);
    }
}
