//! `enki-lint` CLI: the workspace invariant gate.
//!
//! ```text
//! enki-lint check [--root DIR] [--baseline FILE] [--no-baseline]
//!                 [--format text|json|sarif] [--output FILE]
//!                 [--write-baseline FILE]
//! enki-lint rules [--markdown]
//! ```
//!
//! Exit codes: `0` clean, `1` rule violations, `2` usage or
//! configuration errors — unreadable files, a malformed baseline, or a
//! stale baseline entry (the baseline no longer matches the tree and
//! must be shrunk by hand, so it is a configuration error, not a code
//! one).

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use enki_lint::engine::{run_check, CheckConfig};
use enki_lint::{baseline, report, ALL_RULES};

const USAGE: &str = "usage: enki-lint <check|rules> [options]\n\
  check --root DIR         workspace root (default: current directory)\n\
        --baseline FILE    suppression file (default: <root>/lint.baseline)\n\
        --no-baseline      ignore any baseline file\n\
        --format FMT       text (default), json, or sarif\n\
        --output FILE      write the report there instead of stdout\n\
        --write-baseline F snapshot current violations as a baseline\n\
                           (entries carry an UNJUSTIFIED placeholder that\n\
                           check rejects until hand-justified)\n\
  rules [--markdown]       print the rule catalog (or the DESIGN.md table)\n\
exit codes: 0 clean, 1 rule violations, 2 usage/configuration errors\n\
            (including stale baseline entries)";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn fail(message: &str) -> ExitCode {
    eprintln!("enki-lint: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn print_rules(markdown: bool) {
    if markdown {
        print!("{}", enki_lint::rules::markdown_table());
        return;
    }
    println!("enki-lint rules:");
    for rule in ALL_RULES {
        let kind = if rule.is_workspace_rule() {
            " (workspace)"
        } else {
            ""
        };
        println!("  {:<3} {:<18} {}{kind}", rule.code(), rule.name(), rule.enforces());
        println!("      why: {}", rule.rationale());
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return fail("missing command");
    };
    match command.as_str() {
        "rules" => match args.get(1).map(String::as_str) {
            None => {
                print_rules(false);
                ExitCode::SUCCESS
            }
            Some("--markdown") => {
                print_rules(true);
                ExitCode::SUCCESS
            }
            Some(other) => fail(&format!("unknown option `{other}`")),
        },
        "check" => check(&args[1..]),
        other => fail(&format!("unknown command `{other}`")),
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut no_baseline = false;
    let mut format = Format::Text;
    let mut output: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--root" => match take("--root") {
                Ok(v) => root = PathBuf::from(v),
                Err(e) => return fail(&e),
            },
            "--baseline" => match take("--baseline") {
                Ok(v) => baseline_path = Some(PathBuf::from(v)),
                Err(e) => return fail(&e),
            },
            "--no-baseline" => no_baseline = true,
            "--format" => match take("--format").as_deref() {
                Ok("text") => format = Format::Text,
                Ok("json") => format = Format::Json,
                Ok("sarif") => format = Format::Sarif,
                Ok(other) => return fail(&format!("unknown format `{other}`")),
                Err(e) => return fail(e),
            },
            "--output" => match take("--output") {
                Ok(v) => output = Some(PathBuf::from(v)),
                Err(e) => return fail(&e),
            },
            "--write-baseline" => match take("--write-baseline") {
                Ok(v) => write_baseline = Some(PathBuf::from(v)),
                Err(e) => return fail(&e),
            },
            other => return fail(&format!("unknown option `{other}`")),
        }
    }

    let baseline_file = if no_baseline {
        None
    } else {
        Some(baseline_path.unwrap_or_else(|| root.join("lint.baseline")))
    };
    let config = CheckConfig {
        root,
        baseline: baseline_file,
    };
    let checked = match run_check(&config) {
        Ok(report) => report,
        Err(message) => return fail(&message),
    };

    if let Some(path) = write_baseline {
        // Snapshot covers *all* current findings (remaining + already
        // suppressed) so the written file stands alone.
        let all: Vec<_> = checked
            .violations
            .iter()
            .cloned()
            .chain(checked.suppressed.iter().map(|(v, _)| v.clone()))
            .collect();
        if let Err(e) = std::fs::write(&path, baseline::render(&all)) {
            return fail(&format!("cannot write baseline {}: {e}", path.display()));
        }
        eprintln!(
            "enki-lint: wrote {} entr(ies) to {} — justify each before checking it in",
            all.len(),
            path.display()
        );
    }

    let rendered = match format {
        Format::Text => report::to_text(&checked),
        Format::Json => report::to_jsonl(&checked),
        Format::Sarif => enki_lint::sarif::to_sarif(&checked),
    };
    match output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &rendered) {
                return fail(&format!("cannot write {}: {e}", path.display()));
            }
            // Keep the terminal summary visible even when the report
            // goes to a file.
            eprint!("{}", report::to_text(&checked));
        }
        None => print!("{rendered}"),
    }

    if !checked.violations.is_empty() {
        ExitCode::FAILURE
    } else if !checked.stale.is_empty() {
        // A stale entry means the baseline file no longer matches the
        // tree: configuration error, same class as a malformed baseline.
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
