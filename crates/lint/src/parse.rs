//! Item-level parsing layered on the token scanner.
//!
//! The cross-file rules (R9–R12) need more shape than a flat token
//! stream: which `fn` owns a lock acquisition, what a `use` declaration
//! actually imports once its braces are flattened, where a function
//! body starts and ends. This module recovers exactly that much
//! structure — items, flattened use trees, function body ranges — and
//! nothing more. It is not a grammar: anything it cannot classify is
//! skipped as an *opaque item* rather than guessed at, so adversarial
//! input (raw strings full of keywords, `r#`-escaped identifiers,
//! macro bodies) degrades to "no structure here" instead of a
//! misparse. The parser always terminates and never panics: every loop
//! makes forward progress and every index is bounds-checked.

use crate::lexer::{Token, TokenKind};

/// One flattened `use` path, e.g. `enki_serve::edge::EdgeMailbox`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsePath {
    /// Full path with `::` separators; globs end in `*`, `self`
    /// imports end in `::self`.
    pub path: String,
    /// 1-based line of the first path segment.
    pub line: u32,
    /// Token index of the first path segment, so callers can consult
    /// the test mask for this import.
    pub token: usize,
}

/// A function item and the token range of its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// Token indices of the body's `{` and matching `}`, inclusive;
    /// `None` for bodyless declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
}

/// The item-level view of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every function item, including methods inside `impl`/`trait`
    /// blocks and functions in nested `mod` blocks.
    pub fns: Vec<FnItem>,
    /// Every flattened `use` path.
    pub uses: Vec<UsePath>,
    /// Items the parser declined to classify (macro invocations,
    /// unrecognized constructs). A nonzero count is not an error —
    /// it is the sanctioned degradation mode.
    pub opaque_items: usize,
}

/// Returns the index of the delimiter matching the opener at `open`
/// (`(`, `[`, or `{`), counting only that delimiter kind — string and
/// comment contents are already stripped by the lexer, so same-kind
/// counting cannot be fooled. `None` when unbalanced (malformed input);
/// callers must treat that as "rest of file".
#[must_use]
pub fn matching_delim(tokens: &[Token], open: usize) -> Option<usize> {
    let (open_text, close_text) = match tokens.get(open).map(|t| t.text.as_str()) {
        Some("(") => ("(", ")"),
        Some("[") => ("[", "]"),
        Some("{") => ("{", "}"),
        _ => return None,
    };
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            if t.text == open_text {
                depth += 1;
            } else if t.text == close_text {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

/// Parses a token stream into its item-level view.
#[must_use]
pub fn parse(tokens: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    parse_items(tokens, 0, tokens.len(), &mut out);
    out
}

/// Item keywords whose bodies contain further items to recurse into.
fn is_container_keyword(text: &str) -> bool {
    matches!(text, "mod" | "impl" | "trait")
}

/// Item keywords recognized and skipped without recursion.
fn is_plain_item_keyword(text: &str) -> bool {
    matches!(
        text,
        "struct" | "enum" | "union" | "type" | "static" | "const" | "macro_rules" | "macro"
    )
}

fn parse_items(tokens: &[Token], start: usize, end: usize, out: &mut ParsedFile) {
    let end = end.min(tokens.len());
    let mut i = start;
    while i < end {
        let before = i;

        // Attribute groups: `#[ … ]` / `#![ … ]`.
        if tokens[i].is_punct("#") {
            let open = i + 1 + usize::from(tokens.get(i + 1).is_some_and(|t| t.is_punct("!")));
            if tokens.get(open).is_some_and(|t| t.is_punct("[")) {
                i = matching_delim(tokens, open).map_or(end, |c| c + 1);
                continue;
            }
            i += 1;
            continue;
        }

        // Visibility: `pub`, `pub(crate)`, `pub(in path)`.
        if tokens[i].is_ident("pub") {
            i += 1;
            if tokens.get(i).is_some_and(|t| t.is_punct("(")) {
                i = matching_delim(tokens, i).map_or(end, |c| c + 1);
            }
            continue;
        }

        // Qualifiers that may precede `fn`/`mod`/`trait`.
        if matches!(tokens[i].text.as_str(), "const" | "async" | "unsafe" | "extern" | "default")
            && tokens.get(i + 1).is_some_and(|t| {
                t.is_ident("fn")
                    || t.kind == TokenKind::Str
                    || matches!(t.text.as_str(), "const" | "async" | "unsafe" | "extern")
            })
        {
            i += 1;
            continue;
        }

        match tokens[i].text.as_str() {
            "use" => {
                let semi = next_semi(tokens, i + 1, end);
                flatten_use(tokens, i + 1, semi, String::new(), &mut out.uses);
                i = semi + 1;
            }
            "fn" => {
                i = parse_fn(tokens, i, end, out);
            }
            kw if is_container_keyword(kw) => {
                // `mod name { … }`, `impl … { … }`, `trait … { … }`:
                // recurse into the braces for nested fns.
                match body_open(tokens, i + 1, end) {
                    Some(open) => {
                        let close = matching_delim(tokens, open).unwrap_or(end);
                        parse_items(tokens, open + 1, close, out);
                        i = close + 1;
                    }
                    // `mod name;` or unbalanced input.
                    None => i = next_semi(tokens, i + 1, end) + 1,
                }
            }
            kw if is_plain_item_keyword(kw) => {
                // Recognized item without interior items we care about:
                // skip to its terminating `;` or past its braced body.
                match body_open(tokens, i + 1, end) {
                    Some(open) => i = matching_delim(tokens, open).map_or(end, |c| c + 1),
                    None => i = next_semi(tokens, i + 1, end) + 1,
                }
            }
            _ if tokens[i].kind == TokenKind::Ident
                && tokens.get(i + 1).is_some_and(|t| t.is_punct("!")) =>
            {
                // Item-level macro invocation: skip its delimited body
                // wholesale. The body may contain token soup
                // (`use`-lookalikes, unbalanced-looking fragments) that
                // must not be parsed as items.
                out.opaque_items += 1;
                let mut j = i + 2;
                // Optional macro name: `macro_rules! name { … }`-style.
                if tokens.get(j).is_some_and(|t| t.kind == TokenKind::Ident) {
                    j += 1;
                }
                match tokens.get(j).map(|t| t.text.as_str()) {
                    Some("(" | "[" | "{") => {
                        i = matching_delim(tokens, j).map_or(end, |c| c + 1);
                        // Paren/bracket invocations end with `;`.
                        if tokens.get(i).is_some_and(|t| t.is_punct(";")) {
                            i += 1;
                        }
                    }
                    _ => i = next_semi(tokens, j, end) + 1,
                }
            }
            _ => {
                // Unrecognized construct: opaque item. Skip to the next
                // `;` or past the next braced group, whichever closes it
                // first, and never re-inspect the skipped tokens.
                out.opaque_items += 1;
                let mut j = i + 1;
                while j < end {
                    if tokens[j].is_punct(";") {
                        j += 1;
                        break;
                    }
                    if tokens[j].is_punct("{") {
                        j = matching_delim(tokens, j).map_or(end, |c| c + 1);
                        break;
                    }
                    j += 1;
                }
                i = j;
            }
        }

        // Forward-progress backstop: malformed input must never loop.
        if i <= before {
            i = before + 1;
        }
    }
}

/// Parses one `fn` item starting at the `fn` keyword; returns the index
/// just past the item.
fn parse_fn(tokens: &[Token], at: usize, end: usize, out: &mut ParsedFile) -> usize {
    let Some(name_tok) = tokens.get(at + 1).filter(|t| t.kind == TokenKind::Ident) else {
        out.opaque_items += 1;
        return at + 1;
    };
    let name = name_tok.text.clone();
    let line = name_tok.line;

    // Scan for the body `{` or declaration `;` at zero paren/bracket
    // nesting. Angle brackets are not tracked: `{` cannot appear inside
    // a type except in const-generic braces, which this workspace does
    // not use — and if one ever slips through, the body range is merely
    // shorter than real, never out of bounds.
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut k = at + 2;
    while k < end {
        let t = &tokens[k];
        match t.text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" if paren == 0 && bracket == 0 => {
                let close = matching_delim(tokens, k).unwrap_or(end.saturating_sub(1));
                out.fns.push(FnItem {
                    name,
                    line,
                    body: Some((k, close)),
                });
                return close + 1;
            }
            ";" if paren == 0 && bracket == 0 => {
                out.fns.push(FnItem { name, line, body: None });
                return k + 1;
            }
            _ => {}
        }
        k += 1;
    }
    // Ran off the end mid-signature: record the declaration, consume all.
    out.fns.push(FnItem { name, line, body: None });
    end
}

/// Index of the next `;` at zero delimiter nesting, or `end`.
fn next_semi(tokens: &[Token], from: usize, end: usize) -> usize {
    let mut j = from;
    while j < end {
        match tokens[j].text.as_str() {
            ";" => return j,
            "(" | "[" | "{" => {
                j = matching_delim(tokens, j).map_or(end, |c| c + 1);
            }
            _ => j += 1,
        }
    }
    end
}

/// Index of the first `{` before the next `;`, scanning from `from` —
/// the opening brace of an item body, if the item has one.
fn body_open(tokens: &[Token], from: usize, end: usize) -> Option<usize> {
    let mut j = from;
    while j < end {
        match tokens[j].text.as_str() {
            "{" => return Some(j),
            ";" => return None,
            "(" | "[" => j = matching_delim(tokens, j).map_or(end, |c| c + 1),
            _ => j += 1,
        }
    }
    None
}

/// Flattens one use-tree element starting at `i` (tokens run to `stop`,
/// exclusive), appending full paths to `out`; returns the index after
/// the element (at a `,`, the group's `}`, or `stop`).
fn flatten_use(
    tokens: &[Token],
    mut i: usize,
    stop: usize,
    prefix: String,
    out: &mut Vec<UsePath>,
) -> usize {
    let mut path = prefix.clone();
    let mut line = 0u32;
    let mut first_token = i;
    while i < stop {
        let t = &tokens[i];
        if line == 0 {
            line = t.line;
            first_token = i;
        }
        if t.is_ident("as") {
            // Alias: `x as y` — the alias does not change what is
            // imported, so skip it.
            i += 2;
            continue;
        }
        if t.kind == TokenKind::Ident || t.is_punct("*") {
            path.push_str(&t.text);
            i += 1;
            continue;
        }
        if t.is_punct("::") {
            path.push_str("::");
            i += 1;
            continue;
        }
        if t.is_punct("{") {
            // Group: recurse once per comma-separated subtree, each
            // inheriting the accumulated prefix.
            let close = matching_delim(tokens, i).unwrap_or(stop);
            let mut j = i + 1;
            while j < close {
                j = flatten_use(tokens, j, close, path.clone(), out);
                if tokens.get(j).is_some_and(|t| t.is_punct(",")) {
                    j += 1;
                }
            }
            return close.saturating_add(1).min(stop);
        }
        if t.is_punct(",") || t.is_punct("}") {
            break;
        }
        // Unexpected token (attribute inside a use tree, stray punct):
        // tolerate and move on.
        i += 1;
    }
    if path.len() > prefix.len() {
        out.push(UsePath {
            path,
            line,
            token: first_token,
        });
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn paths(src: &str) -> Vec<String> {
        parse(&tokenize(src)).uses.into_iter().map(|u| u.path).collect()
    }

    #[test]
    fn simple_and_grouped_use_trees_flatten() {
        assert_eq!(paths("use std::fmt;"), vec!["std::fmt"]);
        assert_eq!(
            paths("use enki_serve::{codec::Frame, edge::EdgeMailbox, queue};"),
            vec![
                "enki_serve::codec::Frame",
                "enki_serve::edge::EdgeMailbox",
                "enki_serve::queue"
            ]
        );
    }

    #[test]
    fn nested_groups_globs_self_and_aliases() {
        assert_eq!(
            paths("use a::{b::{c, d::*}, self, e as f};"),
            vec!["a::b::c", "a::b::d::*", "a::self", "a::e"]
        );
    }

    #[test]
    fn fns_are_found_with_body_ranges_including_impl_methods() {
        let toks = tokenize(
            "fn top(x: u32) -> u32 { x + 1 }\n\
             impl Foo { pub fn method(&self) { self.go(); } }\n\
             mod inner { fn nested() {} }\n\
             trait T { fn decl(&self); fn defaulted(&self) {} }",
        );
        let parsed = parse(&toks);
        let names: Vec<&str> = parsed.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["top", "method", "nested", "decl", "defaulted"]);
        assert!(parsed.fns[0].body.is_some());
        assert!(parsed.fns[3].body.is_none(), "trait decl has no body");
        // Body range really brackets the body tokens.
        let (open, close) = parsed.fns[1].body.expect("method body");
        assert!(toks[open].is_punct("{") && toks[close].is_punct("}"));
        assert!(toks[open..=close].iter().any(|t| t.is_ident("go")));
    }

    #[test]
    fn fn_with_complex_signature_finds_its_body() {
        let toks = tokenize(
            "pub fn generic<T: Fn(u32) -> Vec<Vec<u8>>>(f: T, v: Vec<Vec<u8>>) -> impl Iterator<Item = u8> \
             where T: Clone { v.into_iter().flatten() }",
        );
        let parsed = parse(&toks);
        assert_eq!(parsed.fns.len(), 1);
        assert!(parsed.fns[0].body.is_some());
    }

    #[test]
    fn macro_invocations_and_unknown_items_become_opaque() {
        let toks = tokenize(
            "thread_local! { static X: u32 = 0; }\n\
             lazy_init!(a, b);\n\
             fn real() {}\n",
        );
        let parsed = parse(&toks);
        assert_eq!(parsed.opaque_items, 2);
        assert_eq!(parsed.fns.len(), 1);
        assert_eq!(parsed.fns[0].name, "real");
    }

    #[test]
    fn keywords_inside_raw_strings_do_not_create_items() {
        let toks = tokenize(
            "const DOC: &str = r#\"use fake::path; fn ghost() { unsafe {} }\"#;\nfn real() {}",
        );
        let parsed = parse(&toks);
        assert!(parsed.uses.is_empty());
        let names: Vec<&str> = parsed.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn raw_identifier_keywords_do_not_open_items() {
        // `r#use` / `r#fn` are identifiers, not keywords; the parser
        // must treat the statement as opaque rather than as a use/fn.
        let toks = tokenize("static r#use: u32 = 1; fn ok() { let r#fn = 2; }");
        let parsed = parse(&toks);
        assert!(parsed.uses.is_empty());
        let names: Vec<&str> = parsed.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["ok"]);
    }

    #[test]
    fn unbalanced_input_terminates() {
        for src in ["fn f() {", "use a::{b", "impl X {{{", "mod m { fn g( }"] {
            let _ = parse(&tokenize(src));
        }
    }
}
