//! The rule catalog: twelve machine-checked project invariants.
//!
//! This module is the **single source of truth** for the catalog:
//! [`RuleId::code`], [`RuleId::name`], [`RuleId::rationale`],
//! [`RuleId::enforces`], and [`RuleId::protects`] feed the CLI `rules`
//! output, and [`markdown_table`] renders the DESIGN.md table — a
//! docs-sync test asserts both stay verbatim-identical to this
//! registry, so the documentation cannot drift.
//!
//! Rules R1–R8 are per-file ([`check_file`]); R9–R11 need the whole
//! workspace at once and live in [`crate::graph`] (lock-order,
//! layering) and [`crate::taint`] (determinism taint). R12
//! (cast-discipline) is per-file and implemented here.
//!
//! Each rule guards a property the paper's guarantees lean on (see
//! DESIGN.md § Static analysis for the full rationale):
//!
//! * **R1 no-panic** — `unwrap`/`expect`/`panic!`-family in non-test
//!   code of `enki-core`, `enki-solver`, `enki-agents`, `enki-serve`. A
//!   panic in the center aborts settlement and voids ex ante budget
//!   balance (Theorem 1); adversarial input must surface as `Result`.
//! * **R2 no-direct-clock** — `Instant::now`/`SystemTime::now` outside
//!   `enki-telemetry::clock` and the serve crate's nondeterministic
//!   edge (`crates/serve/src/edge.rs`). Clock injection keeps
//!   degradation behaviour and telemetry byte-reproducible.
//! * **R3 float-discipline** — `==`/`!=` against float literals and
//!   `partial_cmp` anywhere: money and load are `f64`, so ordering must
//!   go through `total_cmp` (or the `enki-core::float` helpers) and
//!   equality through explicit tolerances.
//! * **R4 no-hash-iteration** — `HashMap`/`HashSet` in deterministic
//!   crates: iteration order would leak randomness into allocations
//!   and payments.
//! * **R5 thread-discipline** — `thread::spawn`/locks only in
//!   `threaded.rs`, inside `enki-telemetry` (the sanctioned concurrency
//!   substrate), the solver's work-stealing pool (`solver/par.rs`), or
//!   the serve crate's nondeterministic edge
//!   (`crates/serve/src/edge.rs`) — the deterministic-core /
//!   nondeterministic-edge split made machine-checked.
//! * **R6 must-use-result** — public fallible APIs (`pub fn … ->
//!   Result`) must carry `#[must_use]`: a silently dropped
//!   `Settlement::verify` hides a budget-balance violation.
//! * **R7 crate-header** — every crate root opts into
//!   `#![deny(unsafe_code)]` (or `forbid`).
//! * **R8 fs-boundary** — `std::fs` only inside the sanctioned storage
//!   backend (`crates/durable/src/file.rs`): everywhere else in the
//!   deterministic crates, persistence must go through the injectable
//!   `enki_durable::Storage` trait, or crash-recovery tests could not
//!   fault it.
//! * **R9 lock-order** — the workspace lock-acquisition graph must be
//!   acyclic; any cycle is a potential deadlock and fails with its
//!   full witness path.
//! * **R10 determinism-taint** — nondeterminism sources (clock reads,
//!   thread ids, pointer formatting, `RandomState`) must not flow into
//!   checkpoint/WAL encoders or trace derivation.
//! * **R11 layering** — the declarative crate DAG: deterministic
//!   crates cannot grow dependencies on the nondeterministic edge,
//!   the real-filesystem backend, observability, or bench bins.
//! * **R12 cast-discipline** — no narrowing `as` casts on money/
//!   energy/time-typed values; truncation must be explicit
//!   (`try_from`) so overflow surfaces as an error.

use crate::context::{attrs_before, FileContext};
use crate::lexer::{Token, TokenKind};

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// No `unwrap`/`expect`/`panic!` in mechanism crates.
    NoPanic,
    /// No direct `Instant::now`/`SystemTime::now`.
    NoDirectClock,
    /// No float `==`/`!=` literals, no `partial_cmp`.
    FloatDiscipline,
    /// No `HashMap`/`HashSet` in deterministic crates.
    NoHashIteration,
    /// Threads and locks only in `threaded.rs`.
    ThreadDiscipline,
    /// `pub fn … -> Result` requires `#[must_use]`.
    MustUseResult,
    /// Crate roots must deny `unsafe_code`.
    CrateHeader,
    /// `std::fs` only in the sanctioned storage backend.
    FsBoundary,
    /// The workspace lock-acquisition graph must be acyclic.
    LockOrder,
    /// Nondeterminism must not flow into encoders or trace derivation.
    DeterminismTaint,
    /// The declarative crate DAG must hold.
    Layering,
    /// No narrowing `as` casts on domain-typed values.
    CastDiscipline,
}

/// Every rule, in report order.
pub const ALL_RULES: [RuleId; 12] = [
    RuleId::NoPanic,
    RuleId::NoDirectClock,
    RuleId::FloatDiscipline,
    RuleId::NoHashIteration,
    RuleId::ThreadDiscipline,
    RuleId::MustUseResult,
    RuleId::CrateHeader,
    RuleId::FsBoundary,
    RuleId::LockOrder,
    RuleId::DeterminismTaint,
    RuleId::Layering,
    RuleId::CastDiscipline,
];

impl RuleId {
    /// Short stable code used in baselines and reports (`R1`…`R12`).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Self::NoPanic => "R1",
            Self::NoDirectClock => "R2",
            Self::FloatDiscipline => "R3",
            Self::NoHashIteration => "R4",
            Self::ThreadDiscipline => "R5",
            Self::MustUseResult => "R6",
            Self::CrateHeader => "R7",
            Self::FsBoundary => "R8",
            Self::LockOrder => "R9",
            Self::DeterminismTaint => "R10",
            Self::Layering => "R11",
            Self::CastDiscipline => "R12",
        }
    }

    /// Human-readable rule slug.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::NoPanic => "no-panic",
            Self::NoDirectClock => "no-direct-clock",
            Self::FloatDiscipline => "float-discipline",
            Self::NoHashIteration => "no-hash-iteration",
            Self::ThreadDiscipline => "thread-discipline",
            Self::MustUseResult => "must-use-result",
            Self::CrateHeader => "crate-header",
            Self::FsBoundary => "fs-boundary",
            Self::LockOrder => "lock-order",
            Self::DeterminismTaint => "determinism-taint",
            Self::Layering => "layering",
            Self::CastDiscipline => "cast-discipline",
        }
    }

    /// True for rules that need the whole workspace at once (a single
    /// file cannot witness them); they run after the per-file pass.
    #[must_use]
    pub fn is_workspace_rule(self) -> bool {
        matches!(
            self,
            Self::LockOrder | Self::DeterminismTaint | Self::Layering
        )
    }

    /// One-line rationale, tied to the paper guarantee it protects.
    #[must_use]
    pub fn rationale(self) -> &'static str {
        match self {
            Self::NoPanic => {
                "a panic in the center aborts settlement mid-day and voids ex ante \
                 budget balance (Theorem 1); adversarial input must surface as Result"
            }
            Self::NoDirectClock => {
                "clock injection (enki-telemetry::clock) keeps solver degradation and \
                 traces byte-reproducible; ad-hoc Instant::now breaks replay — only \
                 the clock module and the serve edge touch the OS clock"
            }
            Self::FloatDiscipline => {
                "money and load are f64; NaN-unaware comparisons reorder allocations \
                 and mis-split bills — use total_cmp or the enki-core::float helpers"
            }
            Self::NoHashIteration => {
                "HashMap/HashSet iteration order is randomized per process, which \
                 would leak nondeterminism into allocations and payments"
            }
            Self::ThreadDiscipline => {
                "confining spawn/locks to threaded.rs (and the telemetry substrate, \
                 solver pool, and serve edge) keeps the mechanism single-threaded \
                 and auditable"
            }
            Self::MustUseResult => {
                "a silently dropped Result (e.g. Settlement::verify) hides an \
                 invariant violation; public fallible APIs must be #[must_use]"
            }
            Self::CrateHeader => {
                "every crate root must carry #![deny(unsafe_code)] so the whole \
                 workspace stays within safe Rust"
            }
            Self::FsBoundary => {
                "all persistence must flow through the injectable enki_durable::Storage \
                 trait; ad-hoc std::fs in mechanism code would dodge crash-consistency \
                 testing — only the sanctioned file backend touches the filesystem"
            }
            Self::LockOrder => {
                "two threads acquiring the same locks in opposite orders deadlock; \
                 the static acquisition graph over the sanctioned concurrency sites \
                 must stay acyclic or the solver pool and serve edge can hang a day's \
                 settlement forever"
            }
            Self::DeterminismTaint => {
                "wall-clock reads, thread ids, pointer formatting, and RandomState \
                 must not reach the WAL/checkpoint encoders or trace derivation: a \
                 single tainted byte makes recovery replay and cross-run trace \
                 comparison diverge"
            }
            Self::Layering => {
                "the deterministic core must not grow imports of the nondeterministic \
                 edge (serve::edge), the real filesystem backend (durable::file), or \
                 observability; the crate DAG is declared once and machine-checked so \
                 replay-safety cannot erode one convenient import at a time"
            }
            Self::CastDiscipline => {
                "a narrowing `as` cast silently truncates; on money, energy, or time \
                 values that turns an overflow into a wrong bill instead of an error — \
                 use try_from so the failure surfaces"
            }
        }
    }

    /// What the rule checks, mechanically (middle column of the
    /// DESIGN.md table; also shown by `enki-lint rules`).
    #[must_use]
    pub fn enforces(self) -> &'static str {
        match self {
            Self::NoPanic => {
                "no `panic!`/`todo!`/`unimplemented!`/`unreachable!`/`.unwrap()`/\
                 `.expect()` in non-test code of the mechanism crates"
            }
            Self::NoDirectClock => {
                "no `Instant::now()`/`SystemTime::now()` outside the sanctioned \
                 clock wrapper and the serve edge"
            }
            Self::FloatDiscipline => {
                "no `==`/`!=` against float literals, no `.sort_by(partial_cmp)`, \
                 no bare `f64::NAN` comparisons"
            }
            Self::NoHashIteration => {
                "no iteration over `HashMap`/`HashSet` in deterministic crates \
                 (use `BTreeMap`/`BTreeSet` or sort first)"
            }
            Self::ThreadDiscipline => {
                "`thread::spawn`/`Mutex`/`RwLock`/`Condvar` only in the sanctioned \
                 concurrency sites"
            }
            Self::MustUseResult => {
                "public fallible APIs in `enki-core` carry `#[must_use]`"
            }
            Self::CrateHeader => "every crate root declares `#![deny(unsafe_code)]`",
            Self::FsBoundary => {
                "`std::fs` only inside `crates/durable/src/file.rs`; everything \
                 else goes through the `Storage` trait"
            }
            Self::LockOrder => {
                "the workspace lock-acquisition graph (including locks reached \
                 through one level of intra-crate calls) has no cycle; violations \
                 print the full witness path"
            }
            Self::DeterminismTaint => {
                "nondeterminism sources (`Instant`/`SystemTime`, thread ids, `{:p}` \
                 formatting, `RandomState`) never flow into WAL/checkpoint encoders \
                 or `TraceContext` derivation"
            }
            Self::Layering => {
                "crate imports match the declared DAG; deterministic crates never \
                 import `serve::edge`, `durable::file`, `enki-obs`, or bench bins"
            }
            Self::CastDiscipline => {
                "no narrowing `as` casts (`as u8`…`as i32`) on money/energy/time-\
                 typed values in mechanism crates; use `try_from`"
            }
        }
    }

    /// Which paper guarantee the rule protects (right column of the
    /// DESIGN.md table).
    #[must_use]
    pub fn protects(self) -> &'static str {
        match self {
            Self::NoPanic => "Theorem 1 — settlement must complete on adversarial input",
            Self::NoDirectClock => "byte-reproducible replay and trace comparison",
            Self::FloatDiscipline => "deterministic allocation order; exact bill splits",
            Self::NoHashIteration => "deterministic allocation and payment order",
            Self::ThreadDiscipline => "single-threaded, auditable mechanism core",
            Self::MustUseResult => "invariant violations surface instead of vanishing",
            Self::CrateHeader => "memory safety across the whole workspace",
            Self::FsBoundary => "crash-consistency via injectable storage faults",
            Self::LockOrder => "liveness — a deadlocked center never settles the day",
            Self::DeterminismTaint => "recovery replay equals the original run, byte for byte",
            Self::Layering => "the deterministic core stays replayable as the repo grows",
            Self::CastDiscipline => "Theorem 1 — overflow becomes an error, not a wrong bill",
        }
    }

    /// Parses a rule code (`R1`) or slug (`no-panic`).
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        ALL_RULES
            .into_iter()
            .find(|r| r.code() == text || r.name() == text)
    }
}

/// Renders the rule catalog as the DESIGN.md table. A docs-sync test
/// asserts DESIGN.md contains this output verbatim, so the table can
/// only be changed by changing the registry.
#[must_use]
pub fn markdown_table() -> String {
    let mut out = String::from("| Rule | Enforces | Paper guarantee it protects |\n|---|---|---|\n");
    for rule in ALL_RULES {
        let enforces: String = rule.enforces().split_whitespace().collect::<Vec<_>>().join(" ");
        out.push_str(&format!(
            "| {} `{}` | {} | {} |\n",
            rule.code(),
            rule.name(),
            enforces,
            rule.protects()
        ));
    }
    out
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated rule.
    pub rule: RuleId,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// What was found and what to do instead.
    pub message: String,
}

/// A scanned source file plus everything the rules need to know about
/// where it sits in the workspace.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel_path: String,
    /// Directory under `crates/` (`"core"`, `"solver"`, …); `None` for
    /// the root facade crate.
    pub crate_dir: Option<String>,
    /// Lives under a `tests/`, `benches/`, or `examples/` directory.
    pub is_test_target: bool,
    /// Is a crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`).
    pub is_crate_root: bool,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Test-region mask and attribute spans.
    pub ctx: FileContext,
}

impl SourceFile {
    fn file_name(&self) -> &str {
        self.rel_path.rsplit('/').next().unwrap_or(&self.rel_path)
    }

    fn in_crate(&self, dirs: &[&str]) -> bool {
        self.crate_dir.as_deref().is_some_and(|d| dirs.contains(&d))
    }
}

/// Runs every applicable rule on one file.
#[must_use]
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    if file.is_crate_root {
        crate_header(file, &mut out);
    }
    if file.is_test_target {
        // Integration tests, benches, and examples are exempt from the
        // body rules: panics and ad-hoc timing are idiomatic there.
        return out;
    }
    if file.in_crate(&["core", "solver", "agents", "serve", "durable"]) {
        no_panic(file, &mut out);
    }
    no_direct_clock(file, &mut out);
    float_discipline(file, &mut out);
    if file.in_crate(&["core", "solver", "agents", "serve", "durable", "sim", "study"]) {
        no_hash_iteration(file, &mut out);
    }
    thread_discipline(file, &mut out);
    must_use_result(file, &mut out);
    if file.in_crate(&["core", "solver", "agents", "serve", "durable"]) {
        fs_boundary(file, &mut out);
        cast_discipline(file, &mut out);
    }
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

/// Yields indices of non-test tokens.
fn live_indices(file: &SourceFile) -> impl Iterator<Item = usize> + '_ {
    (0..file.tokens.len()).filter(|&i| !file.ctx.test_mask[i])
}

fn push(out: &mut Vec<Violation>, file: &SourceFile, rule: RuleId, line: u32, message: String) {
    out.push(Violation {
        rule,
        path: file.rel_path.clone(),
        line,
        message,
    });
}

fn no_panic(file: &SourceFile, out: &mut Vec<Violation>) {
    let toks = &file.tokens;
    for i in live_indices(file) {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "panic" | "todo" | "unimplemented" | "unreachable"
                if toks.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
            {
                push(
                    out,
                    file,
                    RuleId::NoPanic,
                    t.line,
                    format!(
                        "`{}!` in mechanism code: return a structured Error instead \
                         (a panic voids Theorem 1's settlement guarantees)",
                        t.text
                    ),
                );
            }
            "unwrap" | "expect"
                if i > 0
                    && toks[i - 1].is_punct(".")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) =>
            {
                push(
                    out,
                    file,
                    RuleId::NoPanic,
                    t.line,
                    format!(
                        "`.{}()` in mechanism code: propagate with `?` or handle the \
                         None/Err case explicitly",
                        t.text
                    ),
                );
            }
            _ => {}
        }
    }
}

fn no_direct_clock(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.rel_path == "crates/telemetry/src/clock.rs"
        || file.rel_path == "crates/serve/src/edge.rs"
    {
        // The one sanctioned wrapper around the OS clock, and the serve
        // crate's nondeterministic edge (real producer threads). The
        // deterministic serve core (codec, queue, ingest) reads time
        // only as caller-supplied ticks and stays under the rule.
        return;
    }
    let toks = &file.tokens;
    for i in live_indices(file) {
        let t = &toks[i];
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("now"))
        {
            push(
                out,
                file,
                RuleId::NoDirectClock,
                t.line,
                format!(
                    "direct `{}::now()`: read time through an injected \
                     `enki_telemetry::Clock` (MonotonicClock in production, \
                     VirtualClock in tests)",
                    t.text
                ),
            );
        }
    }
}

fn float_discipline(file: &SourceFile, out: &mut Vec<Violation>) {
    let toks = &file.tokens;
    for i in live_indices(file) {
        let t = &toks[i];
        if t.is_punct("==") || t.is_punct("!=") {
            let left_float = i > 0 && toks[i - 1].kind == TokenKind::Float;
            let right_float = match toks.get(i + 1) {
                Some(n) if n.kind == TokenKind::Float => true,
                Some(n) if n.is_punct("-") => {
                    toks.get(i + 2).is_some_and(|m| m.kind == TokenKind::Float)
                }
                _ => false,
            };
            if left_float || right_float {
                push(
                    out,
                    file,
                    RuleId::FloatDiscipline,
                    t.line,
                    format!(
                        "float literal compared with `{}`: use an explicit tolerance \
                         (`enki_core::float::approx_eq`) — exact f64 equality mis-splits \
                         money",
                        t.text
                    ),
                );
            }
        }
        if t.is_ident("partial_cmp") && !(i > 0 && toks[i - 1].is_ident("fn")) {
            push(
                out,
                file,
                RuleId::FloatDiscipline,
                t.line,
                "`partial_cmp` on floats panics or misorders on NaN: use `total_cmp` \
                 (or `enki_core::float::cmp_f64`) for a total order"
                    .to_string(),
            );
        }
    }
}

fn no_hash_iteration(file: &SourceFile, out: &mut Vec<Violation>) {
    let toks = &file.tokens;
    for i in live_indices(file) {
        let t = &toks[i];
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            push(
                out,
                file,
                RuleId::NoHashIteration,
                t.line,
                format!(
                    "`{}` in a deterministic crate: iteration order is randomized — \
                     use BTreeMap/BTreeSet or a sorted Vec",
                    t.text
                ),
            );
        }
    }
}

fn thread_discipline(file: &SourceFile, out: &mut Vec<Violation>) {
    let is_solver_pool =
        file.crate_dir.as_deref() == Some("solver") && file.file_name() == "par.rs";
    let is_serve_edge = file.rel_path == "crates/serve/src/edge.rs";
    if file.crate_dir.as_deref() == Some("telemetry")
        || file.file_name() == "threaded.rs"
        || is_solver_pool
        || is_serve_edge
    {
        // telemetry is the sanctioned lock-bearing substrate; threaded.rs
        // is the one deployment entry point allowed to spawn; the
        // solver's par.rs is the work-stealing pool behind the
        // deterministic parallel solve; the serve crate's edge.rs is the
        // producer-thread boundary of its deterministic core — every
        // other file in those crates must route concurrency through
        // them.
        return;
    }
    let toks = &file.tokens;
    for i in live_indices(file) {
        let t = &toks[i];
        if t.is_ident("thread")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.is_ident("spawn") || n.is_ident("scope"))
        {
            push(
                out,
                file,
                RuleId::ThreadDiscipline,
                t.line,
                "thread spawning outside threaded.rs: route concurrency through the \
                 threaded deployment module"
                    .to_string(),
            );
        }
        if t.is_ident("Mutex") || t.is_ident("RwLock") || t.is_ident("Condvar") {
            push(
                out,
                file,
                RuleId::ThreadDiscipline,
                t.line,
                format!(
                    "`{}` outside threaded.rs/enki-telemetry: the mechanism core is \
                     single-threaded by design",
                    t.text
                ),
            );
        }
    }
}

fn fs_boundary(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.rel_path == "crates/durable/src/file.rs" {
        // The one sanctioned filesystem boundary: the real-file Storage
        // backend. Everything else reaches disk through the trait.
        return;
    }
    let toks = &file.tokens;
    for i in live_indices(file) {
        let t = &toks[i];
        // `fs::write(..)`, `std::fs::File`, `use std::fs;` — the module
        // name adjacent to a path separator on either side.
        if t.is_ident("fs")
            && (toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                || (i > 0 && toks[i - 1].is_punct("::")))
        {
            push(
                out,
                file,
                RuleId::FsBoundary,
                t.line,
                "`std::fs` outside the sanctioned storage backend \
                 (crates/durable/src/file.rs): persist through an injected \
                 `enki_durable::Storage` so crash tests can fault the write path"
                    .to_string(),
            );
        }
    }
}

/// Keywords that may sit between `pub` and `fn`.
fn is_fn_qualifier(t: &Token) -> bool {
    matches!(t.text.as_str(), "const" | "async" | "unsafe" | "extern") || t.kind == TokenKind::Str
}

fn must_use_result(file: &SourceFile, out: &mut Vec<Violation>) {
    let toks = &file.tokens;
    for i in live_indices(file) {
        if !toks[i].is_ident("pub") {
            continue;
        }
        // Restricted visibility (`pub(crate)`) is not public API.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        while toks.get(j).is_some_and(is_fn_qualifier) {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.is_ident("fn")) {
            continue;
        }
        let Some(name_tok) = toks.get(j + 1) else { continue };
        let fn_line = name_tok.line;
        let fn_name = name_tok.text.clone();

        // Scan the signature for the return arrow at zero nesting.
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut angle = 0i32;
        let mut k = j + 2;
        let mut arrow = None;
        let mut body = None;
        while let Some(t) = toks.get(k) {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "<" if t.kind == TokenKind::Punct => angle += 1,
                ">" if t.kind == TokenKind::Punct => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                "->" if paren == 0 && bracket == 0 && angle <= 0 && arrow.is_none() => {
                    arrow = Some(k);
                }
                "{" | ";" if paren == 0 && bracket == 0 => {
                    body = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let (Some(arrow), Some(body)) = (arrow, body) else { continue };

        // Return type = tokens between `->` and the body/`;`/`where`.
        let ret_end = toks[arrow..body]
            .iter()
            .position(|t| t.is_ident("where"))
            .map_or(body, |w| arrow + w);
        let returns_result = toks[arrow..ret_end]
            .iter()
            .any(|t| t.is_ident("Result"));
        if !returns_result {
            continue;
        }

        let has_must_use = attrs_before(&file.ctx, i).iter().any(|a| {
            file.tokens[a.start..=a.end]
                .iter()
                .any(|t| t.is_ident("must_use"))
        });
        if !has_must_use {
            push(
                out,
                file,
                RuleId::MustUseResult,
                fn_line,
                format!(
                    "public fallible `fn {fn_name}` returns Result without \
                     `#[must_use]`: annotate it (with a message naming the dropped \
                     invariant) so callers cannot ignore failure"
                ),
            );
        }
    }
}

fn crate_header(file: &SourceFile, out: &mut Vec<Violation>) {
    let has_header = file.ctx.attrs.iter().any(|a| {
        if !a.inner {
            return false;
        }
        let idents: Vec<&str> = file.tokens[a.start..=a.end]
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        idents.iter().any(|&i| i == "deny" || i == "forbid")
            && idents.contains(&"unsafe_code")
    });
    if !has_header {
        push(
            out,
            file,
            RuleId::CrateHeader,
            1,
            "crate root lacks `#![deny(unsafe_code)]`: every compilation root must \
             opt out of unsafe Rust"
                .to_string(),
        );
    }
}

/// Integer types a cast *into* can silently truncate toward.
const NARROW_CASTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier segments that mark a value as money-, energy-, or
/// time-typed. Matched per snake_case segment after lowercasing, with
/// a trailing plural `s` stripped (`deadlines` → `deadline`).
const TYPED_VALUE_MARKERS: [&str; 27] = [
    "bill", "payment", "pay", "price", "cost", "tariff", "load", "power", "energy", "kwh", "tick",
    "deadline", "day", "hour", "slot", "duration", "begin", "end", "len", "payload", "frame",
    "report", "amount", "money", "unit", "sumsq", "scaled",
];

/// Returns the marker a snake_case identifier matches, if any.
fn typed_value_marker(ident: &str) -> Option<&'static str> {
    for seg in ident.split('_') {
        let lower = seg.to_ascii_lowercase();
        let stem = lower.strip_suffix('s').unwrap_or(&lower);
        if let Some(m) = TYPED_VALUE_MARKERS
            .iter()
            .find(|&&m| m == lower || m == stem)
        {
            return Some(m);
        }
    }
    None
}

/// Expression terminators for the backward operand walk: any of these
/// at nesting depth zero means we have walked past the cast operand.
fn ends_cast_operand(t: &Token) -> bool {
    matches!(
        t.text.as_str(),
        "let" | "return" | "if" | "else" | "match" | "while" | "for" | "in" | "as"
    )
}

fn cast_discipline(file: &SourceFile, out: &mut Vec<Violation>) {
    let toks = &file.tokens;
    for i in live_indices(file) {
        if !toks[i].is_ident("as") {
            continue;
        }
        let Some(ty) = toks
            .get(i + 1)
            .filter(|n| n.kind == TokenKind::Ident && NARROW_CASTS.contains(&n.text.as_str()))
        else {
            continue;
        };
        // Walk the operand backwards through its postfix chain
        // (`self.frame.payload.len() as u32` → len, payload, frame),
        // collecting identifiers until a depth-zero token that cannot
        // belong to the operand. The first identifier matching a
        // typed-value marker is the witness.
        let mut depth = 0i32;
        let mut j = i;
        let mut steps = 0;
        let mut witness: Option<(String, &'static str)> = None;
        while j > 0 && steps < 24 && witness.is_none() {
            j -= 1;
            steps += 1;
            let p = &toks[j];
            match p.kind {
                TokenKind::Punct => match p.text.as_str() {
                    ")" | "]" => depth += 1,
                    "(" | "[" if depth > 0 => depth -= 1,
                    "(" | "[" => break,
                    "." | "::" => {}
                    _ if depth == 0 => break,
                    _ => {}
                },
                TokenKind::Ident if ends_cast_operand(p) && depth == 0 => break,
                TokenKind::Ident => {
                    if let Some(m) = typed_value_marker(&p.text) {
                        witness = Some((p.text.clone(), m));
                    }
                }
                _ => {}
            }
        }
        if let Some((ident, marker)) = witness {
            let ty = &ty.text;
            push(
                out,
                file,
                RuleId::CastDiscipline,
                toks[i].line,
                format!(
                    "narrowing `as {ty}` on `{ident}` (typed-value marker `{marker}`): \
                     truncation silently corrupts money/energy/time values — convert \
                     with `{ty}::try_from` and surface the overflow"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::analyze;
    use crate::lexer::tokenize;

    fn file(rel_path: &str, src: &str) -> SourceFile {
        let tokens = tokenize(src);
        let ctx = analyze(&tokens);
        let crate_dir = rel_path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .map(str::to_string);
        let is_test_target = rel_path
            .split('/')
            .any(|c| c == "tests" || c == "benches" || c == "examples");
        let is_crate_root = rel_path.ends_with("src/lib.rs")
            || rel_path.ends_with("src/main.rs")
            || (rel_path.contains("src/bin/") && rel_path.ends_with(".rs"));
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_dir,
            is_test_target,
            is_crate_root,
            tokens,
            ctx,
        }
    }

    fn codes(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule.code()).collect()
    }

    #[test]
    fn unwrap_in_core_is_flagged_but_not_in_tests() {
        let v = check_file(&file(
            "crates/core/src/x.rs",
            "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n\
             #[cfg(test)] mod tests { fn g(o: Option<u32>) -> u32 { o.unwrap() } }",
        ));
        assert_eq!(codes(&v), vec!["R1"]);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn unwrap_outside_scoped_crates_is_not_r1() {
        let v = check_file(&file(
            "crates/stats/src/x.rs",
            "fn f(o: Option<u32>) -> u32 { o.unwrap() }",
        ));
        assert!(codes(&v).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_allowed() {
        let v = check_file(&file(
            "crates/core/src/x.rs",
            "fn f(o: Option<u32>) -> u32 { o.unwrap_or(0).max(o.unwrap_or_default()) }",
        ));
        assert!(codes(&v).is_empty());
    }

    #[test]
    fn instant_now_is_flagged_everywhere_but_the_clock_module() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(codes(&check_file(&file("crates/sim/src/x.rs", src))), vec!["R2"]);
        assert!(codes(&check_file(&file("crates/telemetry/src/clock.rs", src))).is_empty());
    }

    #[test]
    fn float_equality_and_partial_cmp_are_flagged() {
        let v = check_file(&file(
            "crates/stats/src/x.rs",
            "fn f(x: f64, ys: &mut [f64]) -> bool {\n\
             ys.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
             x == 0.0\n}",
        ));
        assert_eq!(codes(&v), vec!["R3", "R3"]);
    }

    #[test]
    fn total_cmp_and_tolerant_compare_pass() {
        let v = check_file(&file(
            "crates/stats/src/x.rs",
            "fn f(x: f64, ys: &mut [f64]) -> bool {\n\
             ys.sort_by(|a, b| a.total_cmp(b));\n\
             (x - 1.0).abs() < 1e-9\n}",
        ));
        assert!(codes(&v).is_empty());
    }

    #[test]
    fn partial_cmp_definition_in_a_trait_impl_is_allowed() {
        let v = check_file(&file(
            "crates/agents/src/x.rs",
            "impl PartialOrd for T { fn partial_cmp(&self, o: &Self) -> Option<Ordering> \
             { Some(self.cmp(o)) } }",
        ));
        assert!(codes(&v).is_empty());
    }

    #[test]
    fn hashmap_flagged_in_deterministic_crates_only() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let v = check_file(&file("crates/core/src/x.rs", src));
        assert!(codes(&v).iter().all(|&c| c == "R4"));
        assert_eq!(v.len(), 3);
        assert!(codes(&check_file(&file("crates/bench/src/x.rs", src))).is_empty());
    }

    #[test]
    fn locks_flagged_outside_threaded_rs() {
        let src = "use std::sync::Mutex;\nfn f() { std::thread::spawn(|| {}); }";
        let v = check_file(&file("crates/agents/src/runtime.rs", src));
        assert_eq!(codes(&v), vec!["R5", "R5"]);
        assert!(codes(&check_file(&file("crates/agents/src/threaded.rs", src))).is_empty());
        assert!(codes(&check_file(&file("crates/telemetry/src/recorder.rs", src))).is_empty());
    }

    #[test]
    fn solver_work_stealing_pool_is_allowlisted_for_threads() {
        // The pool itself may spawn scoped threads and hold locks…
        let src = "use parking_lot::Mutex;\nfn f() { std::thread::scope(|_| {}); }";
        assert!(codes(&check_file(&file("crates/solver/src/par.rs", src))).is_empty());
        // …but everywhere else in enki-solver the discipline still holds:
        // concurrency must route through par.rs, not be re-invented.
        for elsewhere in [
            "crates/solver/src/exact.rs",
            "crates/solver/src/pipeline.rs",
            "crates/solver/src/local_search.rs",
            "crates/solver/src/bounds.rs",
        ] {
            assert_eq!(
                codes(&check_file(&file(elsewhere, src))),
                vec!["R5", "R5"],
                "{elsewhere} must not spawn or lock directly"
            );
        }
        // A par.rs in any other crate gets no special treatment.
        assert_eq!(
            codes(&check_file(&file("crates/agents/src/par.rs", src))),
            vec!["R5", "R5"]
        );
    }

    #[test]
    fn serve_edge_is_allowlisted_for_threads_and_clocks() {
        let src = "use parking_lot::Mutex;\n\
                   fn f() { std::thread::spawn(|| {}); \
                   let t = std::time::Instant::now(); }";
        // The edge file — and only the edge file — may spawn, lock, and
        // read the OS clock.
        assert!(codes(&check_file(&file("crates/serve/src/edge.rs", src))).is_empty());
        // The deterministic serve core stays fully under R2 and R5.
        for core_file in [
            "crates/serve/src/ingest.rs",
            "crates/serve/src/queue.rs",
            "crates/serve/src/codec.rs",
            "crates/serve/src/lib.rs",
        ] {
            let v = check_file(&file(core_file, src));
            assert!(
                codes(&v).contains(&"R2") && codes(&v).contains(&"R5"),
                "{core_file} must not spawn, lock, or read clocks: {v:?}"
            );
        }
        // An edge.rs in any other crate gets no special treatment.
        let v = check_file(&file("crates/sim/src/edge.rs", src));
        assert!(codes(&v).contains(&"R2") && codes(&v).contains(&"R5"));
    }

    #[test]
    fn serve_is_a_mechanism_crate_for_panics_and_hashes() {
        let src = "fn f(o: Option<u32>) -> u32 { let m: HashMap<u32,u32> = HashMap::new(); o.unwrap() }";
        let v = check_file(&file("crates/serve/src/ingest.rs", src));
        assert!(codes(&v).contains(&"R1"), "unwrap in serve core: {v:?}");
        assert!(codes(&v).contains(&"R4"), "HashMap in serve core: {v:?}");
        // The edge allowlist covers R2/R5 only — panics and hash maps
        // are still flagged there.
        let v = check_file(&file("crates/serve/src/edge.rs", src));
        assert!(codes(&v).contains(&"R1"));
        assert!(codes(&v).contains(&"R4"));
    }

    #[test]
    fn pub_fallible_fn_requires_must_use() {
        let v = check_file(&file(
            "crates/core/src/x.rs",
            "pub fn fallible() -> Result<u32, E> { Ok(1) }",
        ));
        assert_eq!(codes(&v), vec!["R6"]);
        let ok = check_file(&file(
            "crates/core/src/x.rs",
            "#[must_use = \"why\"]\npub fn fallible() -> Result<u32, E> { Ok(1) }",
        ));
        assert!(codes(&ok).is_empty());
    }

    #[test]
    fn must_use_rule_skips_non_public_and_infallible_fns() {
        let v = check_file(&file(
            "crates/core/src/x.rs",
            "fn private() -> Result<u32, E> { Ok(1) }\n\
             pub(crate) fn internal() -> Result<u32, E> { Ok(1) }\n\
             pub fn infallible() -> u32 { 1 }",
        ));
        assert!(codes(&v).is_empty());
    }

    #[test]
    fn must_use_rule_ignores_result_in_generic_bounds() {
        let v = check_file(&file(
            "crates/core/src/x.rs",
            "pub fn apply<F: Fn() -> Result<u32, E>>(f: F) -> u32 { f().unwrap_or(0) }",
        ));
        assert!(codes(&v).is_empty());
    }

    #[test]
    fn crate_root_without_deny_unsafe_is_flagged() {
        let v = check_file(&file("crates/core/src/lib.rs", "pub mod x;"));
        assert_eq!(codes(&v), vec!["R7"]);
        let ok = check_file(&file(
            "crates/core/src/lib.rs",
            "#![deny(unsafe_code)]\npub mod x;",
        ));
        assert!(codes(&ok).is_empty());
        let forbid = check_file(&file(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod x;",
        ));
        assert!(codes(&forbid).is_empty());
    }

    #[test]
    fn test_targets_only_get_the_header_rule() {
        let v = check_file(&file(
            "crates/core/tests/t.rs",
            "fn f(o: Option<u32>) { o.unwrap(); let m: HashMap<u32,u32> = HashMap::new(); }",
        ));
        assert!(codes(&v).is_empty());
    }

    #[test]
    fn fs_use_is_flagged_in_scoped_crates_only() {
        let src = "use std::fs;\nfn f() { let _ = fs::read(\"x\"); }";
        for scoped in [
            "crates/core/src/x.rs",
            "crates/agents/src/durable.rs",
            "crates/durable/src/wal.rs",
        ] {
            let v = check_file(&file(scoped, src));
            assert_eq!(codes(&v), vec!["R8", "R8"], "{scoped}: {v:?}");
        }
        // Outside the deterministic envelope, fs access is fine.
        assert!(codes(&check_file(&file("crates/bench/src/x.rs", src))).is_empty());
        // A local identifier named `fs` with no path separator is not
        // a filesystem touch.
        let ok = check_file(&file("crates/core/src/x.rs", "fn f(fs: u32) -> u32 { fs + 1 }"));
        assert!(codes(&ok).is_empty(), "{ok:?}");
    }

    #[test]
    fn fs_boundary_exempts_the_sanctioned_backend_path_exactly() {
        let src = "use std::fs::File;\nfn f() { let _ = File::open(\"x\"); }";
        assert!(codes(&check_file(&file("crates/durable/src/file.rs", src))).is_empty());
        // Any other file named file.rs stays under the rule.
        let v = check_file(&file("crates/durable/src/other.rs", src));
        assert_eq!(codes(&v), vec!["R8"], "{v:?}");
        let v = check_file(&file("crates/serve/src/file.rs", src));
        assert_eq!(codes(&v), vec!["R8"], "{v:?}");
    }

    #[test]
    fn durable_is_a_mechanism_crate_for_panics_and_hashes() {
        let src =
            "fn f(o: Option<u32>) -> u32 { let m: HashMap<u32,u32> = HashMap::new(); o.unwrap() }";
        let v = check_file(&file("crates/durable/src/wal.rs", src));
        assert!(codes(&v).contains(&"R1"), "unwrap in durable: {v:?}");
        assert!(codes(&v).contains(&"R4"), "HashMap in durable: {v:?}");
    }

    #[test]
    fn cast_discipline_flags_typed_values_narrowed() {
        let v = check_file(&file(
            "crates/serve/src/codec.rs",
            "fn f(total_bill: u64) -> u32 { total_bill as u32 }",
        ));
        assert_eq!(codes(&v), vec!["R12"], "{v:?}");
        assert!(v[0].message.contains("`as u32`"), "{}", v[0].message);
        assert!(v[0].message.contains("`total_bill`"), "{}", v[0].message);
        // Postfix chains walk back through calls and field accesses.
        let v = check_file(&file(
            "crates/serve/src/codec.rs",
            "fn g(frame: &Frame) -> u16 { frame.payload.len() as u16 }",
        ));
        assert_eq!(codes(&v), vec!["R12"], "{v:?}");
        // Plural segments match their singular marker.
        let v = check_file(&file(
            "crates/solver/src/problem.rs",
            "fn h(deferments: &[Deferment]) -> u32 { deferments.len() as u32 }",
        ));
        assert_eq!(codes(&v), vec!["R12"], "{v:?}");
    }

    #[test]
    fn cast_discipline_flags_fixed_point_solver_values() {
        // The solver's flat integer arithmetic: unit counts, exact Σc²
        // accumulators, and fixed-point (scaled) prices are all typed
        // values — a narrowing `as` silently corrupts the search.
        for (src, ident) in [
            ("fn f(unit_count: u64) -> u32 { unit_count as u32 }", "`unit_count`"),
            ("fn f(sumsq: u64) -> u32 { sumsq as u32 }", "`sumsq`"),
            (
                "fn f(scaled_price: u64) -> u16 { scaled_price as u16 }",
                "`scaled_price`",
            ),
        ] {
            let v = check_file(&file("crates/solver/src/exact.rs", src));
            assert_eq!(codes(&v), vec!["R12"], "{src}: {v:?}");
            assert!(v[0].message.contains(ident), "{}", v[0].message);
        }
    }

    #[test]
    fn cast_discipline_ignores_untyped_and_widening_casts() {
        // No typed-value marker in the operand: not our business.
        let ok = check_file(&file(
            "crates/core/src/x.rs",
            "fn f(idx: usize) -> u32 { idx as u32 }",
        ));
        assert!(codes(&ok).is_empty(), "{ok:?}");
        // Widening casts never truncate.
        let ok = check_file(&file(
            "crates/core/src/x.rs",
            "fn f(bill_cents: u32) -> u64 { bill_cents as u64 }",
        ));
        assert!(codes(&ok).is_empty(), "{ok:?}");
        // Binary operators bound the operand walk: only the right-hand
        // side of `+` belongs to the cast.
        let ok = check_file(&file(
            "crates/core/src/x.rs",
            "fn f(day: u32, idx: usize) -> u32 { day + idx as u32 }",
        ));
        assert!(codes(&ok).is_empty(), "{ok:?}");
        // Outside the mechanism crates the rule is silent.
        let ok = check_file(&file(
            "crates/bench/src/x.rs",
            "fn f(total_bill: u64) -> u32 { total_bill as u32 }",
        ));
        assert!(codes(&ok).is_empty(), "{ok:?}");
    }

    #[test]
    fn markdown_table_covers_every_rule_once() {
        let table = super::markdown_table();
        assert!(table.starts_with("| Rule | Enforces | Paper guarantee it protects |\n|---|---|---|\n"));
        for rule in ALL_RULES {
            let cell = format!("| {} `{}` |", rule.code(), rule.name());
            assert_eq!(table.matches(&cell).count(), 1, "{cell}");
        }
        assert_eq!(table.lines().count(), 2 + ALL_RULES.len());
    }
}
