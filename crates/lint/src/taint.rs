//! R10 determinism-taint: nondeterminism must not reach the bytes
//! that recovery replays or the ids that traces compare.
//!
//! Sources are the workspace's known nondeterminism producers:
//! `Instant::now()` / `SystemTime::now()` (the same token shapes the R2
//! clock rule looks for), `thread::current()` ids, `RandomState`, and
//! `{:p}` pointer formatting inside string literals (read from
//! [`Token::content`], since `text` strips the literal body).
//!
//! Two checks run over the whole workspace:
//!
//! 1. **Location rule** — the deterministic persistence zone
//!    (`crates/durable/src/**` and `crates/telemetry/src/trace.rs`)
//!    must contain *no* source token at all: everything there feeds
//!    checkpoint bytes or trace derivation directly.
//! 2. **Flow rule** — everywhere else (minus the bench/lint/obs crates,
//!    which legitimately time things and write reports), a source value
//!    must not flow into a sink call. Flow is tracked through simple
//!    `let` chains (`let t = Instant::now(); let n = t.elapsed();`
//!    taints `n`) and through one level of intra-crate calls (a call to
//!    a crate-local fn whose body reads a source taints the binding).
//!    Sinks are the WAL/checkpoint encoder and `TraceContext`
//!    derivation surface: `append`, `encode`, `compact`, `checkpoint`,
//!    `snapshot`, `day_root`, `child_salted`, `report_stage`.
//!
//! `crates/telemetry/src/clock.rs` is exempt end to end: it is the one
//! sanctioned wrapper around the OS clock, and values read through the
//! injected `Clock` trait are the *designed* deterministic boundary
//! (VirtualClock replays them), so calls into clock-defined fns do not
//! taint.

use std::collections::BTreeMap;

use crate::lexer::{Token, TokenKind};
use crate::parse::{matching_delim, parse};
use crate::rules::{RuleId, SourceFile, Violation};

/// The sanctioned OS-clock wrapper; fully exempt.
const CLOCK_WRAPPER: &str = "crates/telemetry/src/clock.rs";

/// Crates whose whole job is timing and report-writing; the flow rule
/// does not apply to them.
const FLOW_EXEMPT_CRATES: &[&str] = &["bench", "lint", "obs"];

/// Sink functions: WAL/checkpoint encoding and trace derivation.
const SINK_FNS: &[&str] = &[
    "append",
    "encode",
    "compact",
    "checkpoint",
    "snapshot",
    "day_root",
    "child_salted",
    "report_stage",
];

/// Paths whose bytes become durable state or trace ids: no source
/// token may appear here at all.
fn in_deterministic_zone(rel_path: &str) -> bool {
    rel_path.starts_with("crates/durable/src/") || rel_path == "crates/telemetry/src/trace.rs"
}

/// A nondeterminism source found in a token range.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Source {
    desc: &'static str,
    line: u32,
}

/// Scans `toks[range]` for the first source pattern, ignoring tokens
/// masked as test code.
fn find_source(file: &SourceFile, start: usize, end: usize) -> Option<Source> {
    let toks = &file.tokens;
    for i in start..end.min(toks.len()) {
        if file.ctx.test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokenKind::Str && t.content.contains("{:p}") {
            return Some(Source {
                desc: "`{:p}` pointer formatting",
                line: t.line,
            });
        }
        if t.kind != TokenKind::Ident {
            continue;
        }
        let double_colon_next = toks.get(i + 1).is_some_and(|n| n.is_punct("::"));
        match t.text.as_str() {
            "Instant" if double_colon_next && toks.get(i + 2).is_some_and(|n| n.is_ident("now")) => {
                return Some(Source {
                    desc: "`Instant::now()`",
                    line: t.line,
                });
            }
            "SystemTime"
                if double_colon_next && toks.get(i + 2).is_some_and(|n| n.is_ident("now")) =>
            {
                return Some(Source {
                    desc: "`SystemTime::now()`",
                    line: t.line,
                });
            }
            "thread"
                if double_colon_next && toks.get(i + 2).is_some_and(|n| n.is_ident("current")) =>
            {
                return Some(Source {
                    desc: "`thread::current()`",
                    line: t.line,
                });
            }
            "RandomState" => {
                return Some(Source {
                    desc: "`RandomState`",
                    line: t.line,
                });
            }
            _ => {}
        }
    }
    None
}

/// Collects, per crate, the names of fns whose bodies read a source:
/// one level of call indirection for the flow rule. Fns defined in the
/// clock wrapper are the sanctioned boundary and excluded.
fn tainted_returning_fns(files: &[SourceFile]) -> BTreeMap<String, BTreeMap<String, &'static str>> {
    let mut out: BTreeMap<String, BTreeMap<String, &'static str>> = BTreeMap::new();
    for file in files {
        if file.is_test_target || file.rel_path == CLOCK_WRAPPER {
            continue;
        }
        let Some(dir) = file.crate_dir.clone() else {
            continue;
        };
        let parsed = parse(&file.tokens);
        for f in &parsed.fns {
            let Some((open, close)) = f.body else { continue };
            if file.ctx.test_mask.get(open).copied().unwrap_or(false) {
                continue;
            }
            if let Some(src) = find_source(file, open, close) {
                out.entry(dir.clone())
                    .or_default()
                    .entry(f.name.clone())
                    .or_insert(src.desc);
            }
        }
    }
    out
}

/// Where a tainted local binding got its taint.
#[derive(Debug, Clone)]
struct Taint {
    desc: String,
    line: u32,
}

/// Runs the determinism-taint pass over the whole workspace.
#[must_use]
pub fn determinism_taint(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    let tainted_fns = tainted_returning_fns(files);

    for file in files {
        if file.is_test_target || file.rel_path == CLOCK_WRAPPER {
            continue;
        }

        // Location rule: the deterministic zone admits no source.
        if in_deterministic_zone(&file.rel_path) {
            if let Some(src) = find_source(file, 0, file.tokens.len()) {
                out.push(Violation {
                    rule: RuleId::DeterminismTaint,
                    path: file.rel_path.clone(),
                    line: src.line,
                    message: format!(
                        "{} inside the deterministic persistence zone: every byte \
                         here feeds checkpoint/WAL encoding or trace derivation, so \
                         nondeterminism sources are banned outright — take the value \
                         as a caller-supplied parameter instead",
                        src.desc,
                    ),
                });
            }
            continue;
        }

        let Some(dir) = file.crate_dir.as_deref() else {
            continue;
        };
        if FLOW_EXEMPT_CRATES.contains(&dir) {
            continue;
        }
        let crate_tainted_fns = tainted_fns.get(dir);

        let parsed = parse(&file.tokens);
        for f in &parsed.fns {
            let Some((open, close)) = f.body else { continue };
            if file.ctx.test_mask.get(open).copied().unwrap_or(false) {
                continue;
            }
            flow_check(file, open, close, crate_tainted_fns, &mut out);
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// Is `toks[i]` a *call* to `name` (not its definition)?
fn is_call(toks: &[Token], i: usize) -> bool {
    toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        && !(i > 0 && toks[i - 1].is_ident("fn"))
}

/// Scans one fn body: taints simple `let` bindings whose initializer
/// contains a source, a tainted name, or a call to a tainted-returning
/// crate-local fn; flags sink calls whose argument range carries taint.
fn flow_check(
    file: &SourceFile,
    open: usize,
    close: usize,
    crate_tainted_fns: Option<&BTreeMap<String, &'static str>>,
    out: &mut Vec<Violation>,
) {
    let toks = &file.tokens;
    let mut tainted: BTreeMap<String, Taint> = BTreeMap::new();

    // Returns taint provenance if `toks[start..end]` carries taint.
    let carries_taint = |tainted: &BTreeMap<String, Taint>, start: usize, end: usize| {
        if let Some(src) = find_source(file, start, end) {
            return Some(Taint {
                desc: src.desc.to_string(),
                line: src.line,
            });
        }
        for i in start..end.min(toks.len()) {
            let t = &toks[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            if let Some(origin) = tainted.get(&t.text) {
                return Some(Taint {
                    desc: format!("`{}` (tainted by {} at line {})", t.text, origin.desc, origin.line),
                    line: t.line,
                });
            }
            if is_call(toks, i) {
                if let Some(desc) = crate_tainted_fns.and_then(|m| m.get(&t.text)) {
                    return Some(Taint {
                        desc: format!("call to `{}()` which reads {desc}", t.text),
                        line: t.line,
                    });
                }
            }
        }
        None
    };

    let mut i = open + 1;
    while i < close.min(toks.len()) {
        let t = &toks[i];
        // `let [mut] name = <init>;` — taint the binding if the
        // initializer carries taint.
        if t.is_ident("let") {
            let mut n = i + 1;
            if toks.get(n).is_some_and(|x| x.is_ident("mut")) {
                n += 1;
            }
            let name = toks
                .get(n)
                .filter(|x| x.kind == TokenKind::Ident)
                .map(|x| x.text.clone());
            if let Some(name) = name {
                if toks.get(n + 1).is_some_and(|x| x.is_punct("=")) {
                    // Initializer runs to the statement's `;` at
                    // bracket depth zero.
                    let mut depth = 0i32;
                    let mut j = n + 2;
                    while j < close.min(toks.len()) {
                        match toks[j].text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            ";" if depth == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if let Some(origin) = carries_taint(&tainted, n + 2, j) {
                        tainted.insert(name, origin);
                    }
                    i = j + 1;
                    continue;
                }
            }
        }
        // Sink call with tainted arguments.
        if t.kind == TokenKind::Ident
            && SINK_FNS.contains(&t.text.as_str())
            && is_call(toks, i)
            && !file.ctx.test_mask.get(i).copied().unwrap_or(false)
        {
            let args_end = matching_delim(toks, i + 1).unwrap_or(i + 2);
            if let Some(origin) = carries_taint(&tainted, i + 2, args_end) {
                out.push(Violation {
                    rule: RuleId::DeterminismTaint,
                    path: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "nondeterministic value flows into sink `{}(…)`: argument \
                         carries {} — WAL/checkpoint bytes and trace ids must be \
                         derived only from deterministic inputs or recovery replay \
                         diverges from the original run",
                        t.text, origin.desc,
                    ),
                });
                i = args_end + 1;
                continue;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::classify;

    fn violations_for(sources: &[(&str, &str)]) -> Vec<Violation> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(path, src)| classify(path, src))
            .collect();
        determinism_taint(&files)
    }

    #[test]
    fn deterministic_zone_bans_sources_outright() {
        for (path, src) in [
            (
                "crates/durable/src/wal.rs",
                "fn stamp() -> u64 { Instant::now().elapsed().as_nanos() as u64 }",
            ),
            (
                "crates/telemetry/src/trace.rs",
                "fn salt() -> u64 { let s = RandomState::new(); 0 }",
            ),
        ] {
            let v = violations_for(&[(path, src)]);
            assert_eq!(v.len(), 1, "{path}: {v:?}");
            assert_eq!(v[0].path, path);
            assert!(v[0].message.contains("deterministic persistence zone"));
        }
    }

    #[test]
    fn let_chain_into_wal_append_is_flagged() {
        let v = violations_for(&[(
            "crates/serve/src/edge.rs",
            "fn f(w: &mut Wal) {\n let t = Instant::now();\n let n = t.elapsed().as_nanos();\n \
             w.append(Kind::Report, n);\n}",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        let msg = &v[0].message;
        assert!(msg.contains("sink `append(…)`"), "{msg}");
        assert!(msg.contains("Instant::now()"), "{msg}");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn direct_source_in_sink_args_is_flagged() {
        let v = violations_for(&[(
            "crates/agents/src/runtime.rs",
            "fn f(ctx: &TraceContext) { ctx.child_salted(\"span\", thread::current().id().as_u64()); }",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("thread::current()"), "{}", v[0].message);
    }

    #[test]
    fn pointer_formatting_taints_through_let() {
        let v = violations_for(&[(
            "crates/agents/src/runtime.rs",
            "fn f(ctx: &TraceContext, x: &X) { let id = format!(\"{:p}\", x);\n \
             ctx.report_stage(seed, day, id.len() as u64, 1); }",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].message.contains("{:p}` pointer formatting"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn one_level_call_indirection_taints_the_binding() {
        let v = violations_for(&[(
            "crates/serve/src/edge.rs",
            "fn now_us() -> u64 { Instant::now().elapsed().as_micros() as u64 }\n\
             fn g(w: &mut Wal) { let t = now_us(); w.append(Kind::X, t); }",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].message.contains("call to `now_us()` which reads `Instant::now()`"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn untainted_sink_calls_and_sourceless_files_pass() {
        let v = violations_for(&[(
            "crates/serve/src/edge.rs",
            "fn f(w: &mut Wal, payload: &[u8]) { let n = payload.len(); w.append(Kind::X, n); }",
        )]);
        assert!(v.is_empty(), "{v:?}");
        // A source that never reaches a sink is R2's business, not R10's.
        let v = violations_for(&[(
            "crates/serve/src/edge.rs",
            "fn f() { let t = Instant::now(); log(t); }",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn clock_wrapper_bench_obs_and_test_code_are_exempt() {
        let v = violations_for(&[
            (
                "crates/telemetry/src/clock.rs",
                "fn now(&self) -> u64 { let t = Instant::now(); self.encode(t) }",
            ),
            (
                "crates/bench/src/bin/bench_all.rs",
                "fn f(w: &mut Wal) { let t = Instant::now(); w.append(K, t); }",
            ),
            (
                "crates/obs/src/report.rs",
                "fn f(w: &mut Wal) { let t = SystemTime::now(); w.append(K, t); }",
            ),
            (
                "crates/serve/src/queue.rs",
                "#[cfg(test)]\nmod tests {\n fn f(w: &mut Wal) { let t = Instant::now(); \
                 w.append(K, t); }\n}",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn clock_defined_fns_do_not_enter_the_tainted_table() {
        // `monotonic_now` lives in the sanctioned wrapper: calling it
        // elsewhere is the designed boundary, not a taint source.
        let v = violations_for(&[
            (
                "crates/telemetry/src/clock.rs",
                "pub fn monotonic_now() -> u64 { Instant::now().elapsed().as_nanos() as u64 }",
            ),
            (
                "crates/telemetry/src/recorder.rs",
                "fn f(w: &mut Sink) { let t = monotonic_now(); w.append(t); }",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }
}
