//! Per-file token context: which tokens live in test-only code.
//!
//! Rules must not fire on `#[cfg(test)]` modules or `#[test]` functions
//! — `unwrap()` in a unit test is idiomatic, not a violation. This pass
//! walks the token stream once, tracking brace nesting and attribute
//! groups, and produces a boolean mask: `mask[i]` is true when token
//! `i` belongs to a test-only region.
//!
//! Detection is structural, not semantic: an attribute group whose
//! head is `test`, `should_panic`, or `bench`, or a `cfg(...)` group
//! mentioning `test`, marks the *next* braced item (fn body, mod body,
//! impl body) as a test region. A `;` at top nesting cancels a pending
//! marker (e.g. `#[cfg(test)] use …;`). Regions nest: everything under
//! a `#[cfg(test)] mod tests { … }` is masked regardless of inner
//! attributes.

use crate::lexer::{Token, TokenKind};

/// Span of one attribute group `#[ … ]` / `#![ … ]` in the token
/// stream, inclusive of the delimiters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrSpan {
    /// Index of the `#` token.
    pub start: usize,
    /// Index of the closing `]` token.
    pub end: usize,
    /// Whether this is an inner attribute (`#![ … ]`).
    pub inner: bool,
}

/// The analyzed context for one file's token stream.
#[derive(Debug)]
pub struct FileContext {
    /// `mask[i]` — token `i` is inside test-only code.
    pub test_mask: Vec<bool>,
    /// Every attribute group, in source order.
    pub attrs: Vec<AttrSpan>,
}

fn attr_marks_test(tokens: &[Token], span: AttrSpan) -> bool {
    let body = &tokens[span.start..=span.end];
    let idents: Vec<&str> = body
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    match idents.first() {
        Some(&"test" | &"should_panic" | &"bench") => true,
        Some(&"cfg" | &"cfg_attr") => idents.contains(&"test"),
        _ => false,
    }
}

/// Analyzes a token stream: attribute spans and the test-region mask.
#[must_use]
pub fn analyze(tokens: &[Token]) -> FileContext {
    let mut test_mask = vec![false; tokens.len()];
    let mut attrs = Vec::new();

    // Stack of booleans, one per open brace: is the region test-only?
    let mut braces: Vec<bool> = Vec::new();
    // An attribute marked the next braced item as test-only.
    let mut pending_test = false;
    // Depth of `(`/`[` groups, to ignore `;`/`{` inside e.g. arrays.
    let mut delim_depth = 0usize;

    let mut i = 0usize;
    while i < tokens.len() {
        let in_test = braces.last().copied().unwrap_or(false);

        // Attribute group?
        if tokens[i].is_punct("#") {
            let inner = tokens.get(i + 1).is_some_and(|t| t.is_punct("!"));
            let open = i + 1 + usize::from(inner);
            if tokens.get(open).is_some_and(|t| t.is_punct("[")) {
                // Find the matching `]`, tracking bracket nesting.
                let mut depth = 0usize;
                let mut j = open;
                let mut end = None;
                while j < tokens.len() {
                    if tokens[j].is_punct("[") {
                        depth += 1;
                    } else if tokens[j].is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            end = Some(j);
                            break;
                        }
                    }
                    j += 1;
                }
                if let Some(end) = end {
                    let span = AttrSpan { start: i, end, inner };
                    attrs.push(span);
                    if !inner && attr_marks_test(tokens, span) {
                        pending_test = true;
                    }
                    for m in &mut test_mask[i..=end] {
                        *m = in_test;
                    }
                    i = end + 1;
                    continue;
                }
            }
        }

        match &tokens[i] {
            t if t.is_punct("{") => {
                braces.push(in_test || pending_test);
                pending_test = false;
                test_mask[i] = in_test;
            }
            t if t.is_punct("}") => {
                test_mask[i] = in_test;
                braces.pop();
            }
            t if t.is_punct("(") || t.is_punct("[") => {
                delim_depth += 1;
                test_mask[i] = in_test;
            }
            t if t.is_punct(")") || t.is_punct("]") => {
                delim_depth = delim_depth.saturating_sub(1);
                test_mask[i] = in_test;
            }
            t if t.is_punct(";") && delim_depth == 0 => {
                // `#[cfg(test)] use super::*;` — no braced item follows.
                pending_test = false;
                test_mask[i] = in_test;
            }
            _ => test_mask[i] = in_test,
        }
        i += 1;
    }

    FileContext { test_mask, attrs }
}

/// Walks backwards from token index `at` (the start of an item, e.g.
/// its `pub` keyword) over any directly preceding outer attribute
/// groups and returns their spans, innermost-first.
#[must_use]
pub fn attrs_before(ctx: &FileContext, at: usize) -> Vec<AttrSpan> {
    let mut found = Vec::new();
    let mut cursor = at;
    while let Some(attr) = ctx
        .attrs
        .iter()
        .rev()
        .find(|a| !a.inner && a.end + 1 == cursor)
    {
        found.push(*attr);
        cursor = attr.start;
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn mask_for(src: &str) -> (Vec<Token>, FileContext) {
        let toks = tokenize(src);
        let ctx = analyze(&toks);
        (toks, ctx)
    }

    fn ident_masked(toks: &[Token], ctx: &FileContext, name: &str) -> bool {
        let idx = toks
            .iter()
            .position(|t| t.is_ident(name))
            .unwrap_or_else(|| panic!("ident {name} not found"));
        ctx.test_mask[idx]
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let (toks, ctx) = mask_for(
            "fn prod() { work(); }\n#[cfg(test)]\nmod tests { fn helper() { probe(); } }",
        );
        assert!(!ident_masked(&toks, &ctx, "work"));
        assert!(ident_masked(&toks, &ctx, "probe"));
    }

    #[test]
    fn test_fn_is_masked_but_sibling_is_not() {
        let (toks, ctx) = mask_for(
            "#[test]\nfn check() { probe(); }\nfn prod() { work(); }",
        );
        assert!(ident_masked(&toks, &ctx, "probe"));
        assert!(!ident_masked(&toks, &ctx, "work"));
    }

    #[test]
    fn cfg_test_use_does_not_leak_onto_next_item() {
        let (toks, ctx) = mask_for("#[cfg(test)]\nuse std::fmt;\nfn prod() { work(); }");
        assert!(!ident_masked(&toks, &ctx, "work"));
    }

    #[test]
    fn stacked_attributes_keep_the_marker() {
        let (toks, ctx) = mask_for("#[test]\n#[ignore]\nfn check() { probe(); }");
        assert!(ident_masked(&toks, &ctx, "probe"));
    }

    #[test]
    fn cfg_any_test_is_masked() {
        let (toks, ctx) =
            mask_for("#[cfg(any(test, feature = \"x\"))]\nmod helpers { fn h() { probe(); } }");
        assert!(ident_masked(&toks, &ctx, "probe"));
    }

    #[test]
    fn non_test_cfg_is_not_masked() {
        let (toks, ctx) = mask_for("#[cfg(unix)]\nfn prod() { work(); }");
        assert!(!ident_masked(&toks, &ctx, "work"));
    }

    #[test]
    fn attrs_before_finds_the_whole_stack() {
        let (toks, ctx) = mask_for("#[must_use]\n#[inline]\npub fn f() -> u32 { 1 }");
        let at = toks.iter().position(|t| t.is_ident("pub")).unwrap();
        let stack = attrs_before(&ctx, at);
        assert_eq!(stack.len(), 2);
    }
}
