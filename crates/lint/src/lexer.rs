//! A small Rust token scanner.
//!
//! This is not a full parser: the rule engine only needs a faithful
//! token stream — identifiers, literals, punctuation — with comments and
//! string contents stripped, so that `"unwrap()"` inside a string or a
//! doc comment never triggers a rule. The scanner handles every lexical
//! form that appears in this workspace: nested block comments, raw
//! strings with arbitrary `#` fences, byte strings, char literals vs.
//! lifetimes, numeric literals with underscores/exponents/suffixes, and
//! multi-character punctuation (`::`, `==`, `->`, …).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, …).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `1e-9`, `2f64`).
    Float,
    /// String, raw string, byte string (contents discarded).
    Str,
    /// Char or byte-char literal (contents discarded).
    Char,
    /// Punctuation, possibly multi-character (`::`, `==`, `#`, `{`).
    Punct,
}

/// One lexeme with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The kind of lexeme.
    pub kind: TokenKind,
    /// The lexeme text; empty for [`TokenKind::Str`]/[`TokenKind::Char`]
    /// so string contents can never match a rule pattern.
    pub text: String,
    /// 1-based line the lexeme starts on.
    pub line: u32,
    /// Raw lexeme for [`TokenKind::Str`] only (quotes and fences
    /// included), empty for every other kind. Rules must keep matching
    /// on `text`; this exists solely for passes that need to inspect
    /// literal bodies, such as `{:p}` format-string detection.
    pub content: String,
}

impl Token {
    /// True when the token is the identifier `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// True when the token is the punctuation `p`.
    #[must_use]
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }
}

/// Multi-character punctuation, longest first so greedy matching works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "==", "!=", "<=", ">=", "->", "=>", "..", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "^=", "|=", "&=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes Rust source. Unterminated constructs (possible only on
/// malformed input, which rustc would reject anyway) are closed at end
/// of file rather than reported: the linter's job is rule enforcement,
/// not syntax validation.
#[must_use]
pub fn tokenize(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    // Advances over `chars[from..to)` counting newlines.
    let count_lines = |chars: &[char], from: usize, to: usize| -> u32 {
        chars[from..to.min(chars.len())]
            .iter()
            .filter(|&&c| c == '\n')
            .count() as u32
    };

    while i < chars.len() {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (covers `//`, `///`, `//!`).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Nested block comment.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            line += count_lines(&chars, start, i);
            continue;
        }
        // Raw / byte string prefixes: r", r#...", b", br", br#...".
        if (c == 'r' || c == 'b') && i + 1 < chars.len() {
            let (fence_at, is_raw) = match (c, chars.get(i + 1), chars.get(i + 2)) {
                ('r', Some('"' | '#'), _) => (i + 1, true),
                ('b', Some('r'), Some('"' | '#')) => (i + 2, true),
                ('b', Some('"'), _) => (i + 1, false),
                ('b', Some('\''), _) => {
                    // Byte char literal b'x'.
                    let start_line = line;
                    let start = i;
                    i += 2; // past b'
                    if chars.get(i) == Some(&'\\') {
                        i += 2;
                    } else {
                        i += 1;
                    }
                    if chars.get(i) == Some(&'\'') {
                        i += 1;
                    }
                    line += count_lines(&chars, start, i);
                    tokens.push(Token {
                        kind: TokenKind::Char,
                        text: String::new(),
                        line: start_line,
                        content: String::new(),
                    });
                    continue;
                }
                _ => (0, false),
            };
            if fence_at > 0 {
                let start_line = line;
                let start = i;
                if is_raw {
                    // Count the # fence, then scan to `"####` of equal length.
                    let mut j = fence_at;
                    let mut hashes = 0usize;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    // `r#ident` (raw identifier), not a raw string: no
                    // quote after the fence. Emit a single Ident token
                    // whose text keeps the `r#` prefix, so `r#use` can
                    // never be mistaken for the `use` keyword.
                    if chars.get(j) != Some(&'"') {
                        let mut k = j;
                        while k < chars.len() && is_ident_continue(chars[k]) {
                            k += 1;
                        }
                        tokens.push(Token {
                            kind: TokenKind::Ident,
                            text: chars[start..k].iter().collect(),
                            line,
                            content: String::new(),
                        });
                        i = k;
                        continue;
                    }
                    j += 1; // opening quote
                    loop {
                        match chars.get(j) {
                            None => break,
                            Some('"') => {
                                let mut k = 0usize;
                                while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                                    k += 1;
                                }
                                if k == hashes {
                                    j += 1 + hashes;
                                    break;
                                }
                                j += 1;
                            }
                            Some(_) => j += 1,
                        }
                    }
                    i = j;
                } else {
                    // Cooked byte string with escapes.
                    let mut j = fence_at + 1;
                    loop {
                        match chars.get(j) {
                            None => break,
                            Some('\\') => j += 2,
                            Some('"') => {
                                j += 1;
                                break;
                            }
                            Some(_) => j += 1,
                        }
                    }
                    i = j;
                }
                line += count_lines(&chars, start, i);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: String::new(),
                    line: start_line,
                    content: chars[start..i.min(chars.len())].iter().collect(),
                });
                continue;
            }
        }
        // Cooked string.
        if c == '"' {
            let start_line = line;
            let start = i;
            let mut j = i + 1;
            loop {
                match chars.get(j) {
                    None => break,
                    Some('\\') => j += 2,
                    Some('"') => {
                        j += 1;
                        break;
                    }
                    Some(_) => j += 1,
                }
            }
            i = j;
            line += count_lines(&chars, start, i);
            tokens.push(Token {
                kind: TokenKind::Str,
                text: String::new(),
                line: start_line,
                content: chars[start..i.min(chars.len())].iter().collect(),
            });
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            // Escaped char: definitely a literal.
            if chars.get(i + 1) == Some(&'\\') {
                let mut j = i + 2;
                if chars.get(j) == Some(&'u') && chars.get(j + 1) == Some(&'{') {
                    while j < chars.len() && chars[j] != '}' {
                        j += 1;
                    }
                }
                j += 1;
                if chars.get(j) == Some(&'\'') {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Char,
                    text: String::new(),
                    line,
                    content: String::new(),
                });
                i = j;
                continue;
            }
            // `'x'` → char literal; `'ident` not followed by `'` → lifetime.
            if chars.get(i + 1).is_some_and(|&n| is_ident_start(n) || n.is_ascii_digit()) {
                let mut j = i + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                if chars.get(j) == Some(&'\'') {
                    tokens.push(Token {
                        kind: TokenKind::Char,
                        text: String::new(),
                        line,
                        content: String::new(),
                    });
                    i = j + 1;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: chars[i + 1..j].iter().collect(),
                        line,
                        content: String::new(),
                    });
                    i = j;
                }
                continue;
            }
            // `'(`-style degenerate input: emit the quote as punctuation.
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: "'".to_string(),
                line,
                content: String::new(),
            });
            i += 1;
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            let radix_prefixed = c == '0'
                && matches!(chars.get(i + 1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
            if radix_prefixed {
                i += 2;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            } else {
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
                // Fractional part only when `.` is followed by a digit
                // (so `1..n` ranges and `0.partial_cmp` stay separate).
                if chars.get(i) == Some(&'.')
                    && chars.get(i + 1).is_some_and(char::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        i += 1;
                    }
                }
                // Exponent.
                if matches!(chars.get(i), Some('e' | 'E')) {
                    let sign = usize::from(matches!(chars.get(i + 1), Some('+' | '-')));
                    if chars.get(i + 1 + sign).is_some_and(char::is_ascii_digit) {
                        is_float = true;
                        i += 1 + sign;
                        while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_')
                        {
                            i += 1;
                        }
                    }
                }
                // Suffix (u32, f64, …).
                let suffix_start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let suffix: String = chars[suffix_start..i].iter().collect();
                if suffix == "f32" || suffix == "f64" {
                    is_float = true;
                }
            }
            tokens.push(Token {
                kind: if is_float { TokenKind::Float } else { TokenKind::Int },
                text: chars[start..i].iter().collect(),
                line,
                content: String::new(),
            });
            continue;
        }
        // Identifier / keyword. Raw identifiers (`r#ident`) are handled
        // in the raw-string branch above, which falls back to a single
        // Ident token when no quote follows the `#` fence.
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
                content: String::new(),
            });
            continue;
        }
        // Punctuation, longest match first.
        let mut matched = false;
        for p in PUNCTS {
            let len = p.chars().count();
            if i + len <= chars.len() && chars[i..i + len].iter().collect::<String>() == **p {
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (*p).to_string(),
                    line,
                    content: String::new(),
                });
                i += len;
                matched = true;
                break;
            }
        }
        if !matched {
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line,
                content: String::new(),
            });
            i += 1;
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let toks = tokenize(
            r##"
            // unwrap() in a comment
            /* panic!() /* nested */ still comment */
            let s = "unwrap()"; // cooked
            let r = r#"Instant::now()"#;
            let b = b"expect(";
            "##,
        );
        assert!(!toks.iter().any(|t| t.text.contains("unwrap")));
        assert!(!toks.iter().any(|t| t.text.contains("Instant")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 3);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Char).count(),
            2
        );
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = tokenize("let a = 1.0; let b = 1e-9; let c = 2f64; let d = 1..3; let e = 0xff; let f = x.0.total_cmp(&y.0);");
        let floats: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Float)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(floats, vec!["1.0", "1e-9", "2f64"]);
        let ints: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Int)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(ints, vec!["1", "3", "0xff", "0", "0"]);
    }

    #[test]
    fn multichar_punctuation_is_greedy() {
        assert_eq!(
            texts("a::b == c != d -> e ..= f"),
            vec!["a", "::", "b", "==", "c", "!=", "d", "->", "e", "..=", "f"]
        );
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "a\n/*\n\n*/\nb\n\"x\ny\"\nc";
        let toks = tokenize(src);
        let find = |name: &str| toks.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(5));
        assert_eq!(find("c"), Some(8));
    }

    #[test]
    fn raw_identifiers_lex_as_single_idents_with_prefix() {
        let toks = tokenize("let r#use = r#match; fn r#fn() {}");
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "r#use", "r#match", "fn", "r#fn"]);
        // Crucially the keyword spellings never appear bare.
        assert!(!toks.iter().any(|t| t.is_ident("use") || t.is_ident("match")));
    }

    #[test]
    fn str_tokens_carry_raw_content_but_empty_text() {
        let toks = tokenize("let s = \"ptr={:p}\"; let r = r#\"x\"#;");
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].text.is_empty());
        assert!(strs[0].content.contains("{:p}"));
        assert_eq!(strs[1].content, "r#\"x\"#");
    }

    #[test]
    fn raw_string_fences_of_unequal_length_do_not_close() {
        let toks = tokenize("let x = r##\"inner \"# quote\"##; let y = 1;");
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
        assert!(toks.iter().any(|t| t.text == "y"));
    }
}
