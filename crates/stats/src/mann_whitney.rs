//! The Mann–Whitney U test (Mann & Whitney, 1947).
//!
//! The paper's user study (§VII) tests whether subjects defect less than a
//! random-defection null (Table III) and whether they select their true
//! interval more often in the Cooperate stage than in Initial (Fig. 8).
//! Both are two-sided Mann–Whitney U tests on samples of 16–20 subjects.
//!
//! This implementation handles ties by mid-ranking with the standard tie
//! correction in the normal approximation, and switches to the exact
//! permutation distribution (dynamic programming) for small tie-free
//! samples.

use serde::{Deserialize, Serialize};

use crate::special::normal_cdf;

/// Which tail(s) of the distribution form the alternative hypothesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Alternative {
    /// `H₁`: the two distributions differ (default, used by the paper).
    #[default]
    TwoSided,
    /// `H₁`: sample 1 is stochastically smaller than sample 2.
    Less,
    /// `H₁`: sample 1 is stochastically greater than sample 2.
    Greater,
}

/// How the p-value was computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// Exact permutation distribution (small samples, no ties).
    Exact,
    /// Normal approximation with tie and continuity corrections.
    NormalApproximation,
}

/// Result of a Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UTest {
    /// U statistic of the first sample (`U₁ = R₁ − n₁(n₁+1)/2`).
    pub u1: f64,
    /// U statistic of the second sample (`U₂ = n₁n₂ − U₁`).
    pub u2: f64,
    /// The test statistic `U = min(U₁, U₂)`.
    pub u: f64,
    /// The p-value for the requested alternative.
    pub p_value: f64,
    /// Standardized statistic (0 when the exact method was used).
    pub z: f64,
    /// How the p-value was obtained.
    pub method: Method,
}

/// Threshold below which the exact distribution is used (per-sample size),
/// provided the pooled data has no ties.
const EXACT_LIMIT: usize = 12;

/// Runs a Mann–Whitney U test of `sample1` against `sample2`.
///
/// # Panics
///
/// Panics if either sample is empty or contains NaN.
///
/// # Examples
///
/// ```
/// # use enki_stats::mann_whitney::{mann_whitney_u, Alternative};
/// let treated = [1.0, 2.0, 3.0, 4.0];
/// let control = [10.0, 11.0, 12.0, 13.0];
/// let t = mann_whitney_u(&treated, &control, Alternative::TwoSided);
/// assert!(t.p_value < 0.05);
/// ```
#[must_use]
pub fn mann_whitney_u(sample1: &[f64], sample2: &[f64], alternative: Alternative) -> UTest {
    assert!(
        !sample1.is_empty() && !sample2.is_empty(),
        "mann_whitney_u requires non-empty samples"
    );
    let n1 = sample1.len();
    let n2 = sample2.len();

    // Pool, sort, midrank.
    let mut pooled: Vec<(f64, usize)> = sample1
        .iter()
        .map(|&x| (x, 0usize))
        .chain(sample2.iter().map(|&x| (x, 1usize)))
        .collect();
    assert!(
        pooled.iter().all(|(x, _)| !x.is_nan()),
        "mann_whitney_u requires non-NaN data"
    );
    pooled.sort_by(|a, b| a.0.total_cmp(&b.0));

    let n = pooled.len();
    let mut rank_sum1 = 0.0;
    let mut tie_groups: Vec<usize> = Vec::new();
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let group = j - i + 1;
        // Average rank of positions i..=j (1-based ranks).
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for item in &pooled[i..=j] {
            if item.1 == 0 {
                rank_sum1 += avg_rank;
            }
        }
        if group > 1 {
            tie_groups.push(group);
        }
        i = j + 1;
    }

    let u1 = rank_sum1 - (n1 * (n1 + 1)) as f64 / 2.0;
    let u2 = (n1 * n2) as f64 - u1;
    let u = u1.min(u2);

    let has_ties = !tie_groups.is_empty();
    if !has_ties && n1 <= EXACT_LIMIT && n2 <= EXACT_LIMIT {
        let p_value = exact_p_value(n1, n2, u1, alternative);
        return UTest {
            u1,
            u2,
            u,
            p_value,
            z: 0.0,
            method: Method::Exact,
        };
    }

    // Normal approximation with tie correction.
    let nf = n as f64;
    let mean = (n1 * n2) as f64 / 2.0;
    let tie_term: f64 = tie_groups
        .iter()
        .map(|&t| {
            let t = t as f64;
            t * t * t - t
        })
        .sum();
    let var = (n1 * n2) as f64 / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    let sd = var.sqrt();
    // sd is a sqrt, hence non-negative; an exact-zero test on it is the
    // degenerate all-ties case, reached only when var is exactly 0.
    let (z, p_value) = if sd <= f64::EPSILON {
        (0.0, 1.0)
    } else {
        match alternative {
            Alternative::TwoSided => {
                // Continuity correction toward the mean.
                let z = (u1 - mean).abs() - 0.5;
                let z = (z.max(0.0)) / sd;
                (z, (2.0 * (1.0 - normal_cdf(z))).min(1.0))
            }
            Alternative::Less => {
                let z = (u1 - mean + 0.5) / sd;
                (z, normal_cdf(z))
            }
            Alternative::Greater => {
                let z = (u1 - mean - 0.5) / sd;
                (z, 1.0 - normal_cdf(z))
            }
        }
    };
    UTest {
        u1,
        u2,
        u,
        p_value,
        z,
        method: Method::NormalApproximation,
    }
}

/// Exact p-value from the null distribution of U₁ via the classic counting
/// recurrence: `count[n1][u]` over placements of sample-1 ranks.
fn exact_p_value(n1: usize, n2: usize, u1: f64, alternative: Alternative) -> f64 {
    let max_u = n1 * n2;
    // Classic counting recurrence f(m, k, u) = f(m−1, k, u−k) + f(m, k−1, u)
    // for the number of rank interleavings of m sample-1 and k sample-2
    // items with statistic u. dp rolls over k: after the k-th outer pass,
    // dp[m][u] = f(m, k, u). Rows are updated in increasing m so dp[m−1]
    // already holds the current-k values while dp[m][u] still holds k−1.
    let mut dp = vec![vec![0.0_f64; max_u + 1]; n1 + 1];
    for row in dp.iter_mut() {
        row[0] = 1.0; // f(m, 0, 0) = 1
    }
    for k in 1..=n2 {
        for m in 1..=n1 {
            for u in k..=max_u {
                dp[m][u] += dp[m - 1][u - k];
            }
        }
    }
    let total: f64 = dp[n1].iter().sum();
    debug_assert!((total - binomial(n1 + n2, n1)).abs() < total * 1e-9);
    let u1r = u1.round() as usize;
    let cdf_le: f64 = dp[n1][..=u1r.min(max_u)].iter().sum::<f64>() / total;
    let cdf_ge: f64 = dp[n1][u1r.min(max_u)..].iter().sum::<f64>() / total;
    match alternative {
        Alternative::TwoSided => (2.0 * cdf_le.min(cdf_ge)).min(1.0),
        Alternative::Less => cdf_le,
        Alternative::Greater => cdf_ge,
    }
}

/// Binomial coefficient as f64 (small arguments only; used for a sanity
/// check of the exact distribution's total mass).
fn binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut acc = 1.0_f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearly_separated_samples_reject_null() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [10.0, 11.0, 12.0, 13.0, 14.0];
        let t = mann_whitney_u(&a, &b, Alternative::TwoSided);
        assert!(t.p_value < 0.01, "p = {}", t.p_value);
        assert_eq!(t.u, 0.0);
    }

    #[test]
    fn identical_samples_accept_null() {
        let a = [5.0, 6.0, 7.0, 8.0];
        let t = mann_whitney_u(&a, &a, Alternative::TwoSided);
        assert!(t.p_value > 0.9, "p = {}", t.p_value);
    }

    #[test]
    fn u1_plus_u2_is_n1_n2() {
        let a = [3.0, 9.0, 1.5, 7.0];
        let b = [2.0, 8.0, 4.0];
        let t = mann_whitney_u(&a, &b, Alternative::TwoSided);
        assert!((t.u1 + t.u2 - 12.0).abs() < 1e-12);
    }

    #[test]
    fn exact_method_used_for_small_tie_free_samples() {
        let a = [1.0, 4.0, 6.0];
        let b = [2.0, 3.0, 5.0];
        let t = mann_whitney_u(&a, &b, Alternative::TwoSided);
        assert_eq!(t.method, Method::Exact);
    }

    #[test]
    fn normal_method_used_with_ties_or_large_samples() {
        let a = [1.0, 2.0, 2.0];
        let b = [2.0, 3.0, 4.0];
        let t = mann_whitney_u(&a, &b, Alternative::TwoSided);
        assert_eq!(t.method, Method::NormalApproximation);

        let big1: Vec<f64> = (0..30).map(f64::from).collect();
        let big2: Vec<f64> = (0..30).map(|i| f64::from(i) + 0.5).collect();
        let t = mann_whitney_u(&big1, &big2, Alternative::TwoSided);
        assert_eq!(t.method, Method::NormalApproximation);
    }

    #[test]
    fn exact_p_matches_textbook_small_case() {
        // n1 = n2 = 3, U = 0 (complete separation).
        // Two-sided exact p = 2·(1/C(6,3)) = 2/20 = 0.1.
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        let t = mann_whitney_u(&a, &b, Alternative::TwoSided);
        assert_eq!(t.method, Method::Exact);
        assert!((t.p_value - 0.1).abs() < 1e-9, "p = {}", t.p_value);
    }

    #[test]
    fn one_sided_directions_are_consistent() {
        let small = [1.0, 2.0, 3.0, 4.0, 5.0];
        let large = [6.0, 7.0, 8.0, 9.0, 10.0];
        let less = mann_whitney_u(&small, &large, Alternative::Less);
        let greater = mann_whitney_u(&small, &large, Alternative::Greater);
        assert!(less.p_value < 0.05);
        assert!(greater.p_value > 0.9);
    }

    #[test]
    fn paper_style_defection_test_is_significant() {
        // Table III, Overall: sample 1 = rounds defected out of 16 per
        // subject (low), sample 2 = constant 8 (random-defection null).
        let observed = [
            3.0, 2.0, 4.0, 5.0, 1.0, 3.0, 2.0, 6.0, 4.0, 3.0, 2.0, 5.0, 3.0, 4.0, 2.0, 3.0,
            4.0, 3.0, 2.0, 4.0,
        ];
        let null = [8.0; 20];
        let t = mann_whitney_u(&observed, &null, Alternative::TwoSided);
        assert!(t.p_value < 0.0001, "p = {}", t.p_value);
    }

    #[test]
    fn tie_correction_reduces_variance_but_keeps_p_valid() {
        let a = [1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 8.0, 1.0, 2.0, 2.0, 1.0, 3.0, 2.0];
        let b = [2.0, 2.0, 3.0, 3.0, 3.0, 4.0, 4.0, 2.0, 3.0, 4.0, 3.0, 3.0, 4.0];
        let t = mann_whitney_u(&a, &b, Alternative::TwoSided);
        assert!((0.0..=1.0).contains(&t.p_value));
        assert!(t.p_value < 0.05);
    }

    #[test]
    fn constant_identical_samples_have_p_one() {
        let a = [4.0; 6];
        let b = [4.0; 6];
        let t = mann_whitney_u(&a, &b, Alternative::TwoSided);
        assert_eq!(t.p_value, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        let _ = mann_whitney_u(&[], &[1.0], Alternative::TwoSided);
    }

    #[test]
    fn exact_distribution_symmetry() {
        // Swapping samples mirrors U₁ ↔ U₂ and keeps the two-sided p.
        let a = [1.0, 5.0, 9.0, 13.0];
        let b = [2.0, 6.0, 10.0];
        let t1 = mann_whitney_u(&a, &b, Alternative::TwoSided);
        let t2 = mann_whitney_u(&b, &a, Alternative::TwoSided);
        assert!((t1.u1 - t2.u2).abs() < 1e-12);
        assert!((t1.p_value - t2.p_value).abs() < 1e-9);
    }
}
