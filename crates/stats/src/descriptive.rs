//! Descriptive statistics and confidence intervals.
//!
//! The simulation study (§VI) reports means over 10 simulated days with 95%
//! confidence intervals; [`Summary`] computes exactly that.

use serde::{Deserialize, Serialize};

use crate::special::student_t_critical;

/// Sample mean. Returns 0 for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n−1 denominator). Returns 0 for fewer than two
/// observations.
#[must_use]
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (average of middle pair for even length). Returns 0 when empty.
#[must_use]
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// A numeric summary of a sample: count, mean, spread, extremes, and a
/// Student-t confidence half-width.
///
/// # Examples
///
/// ```
/// # use enki_stats::descriptive::Summary;
/// let s = Summary::from_sample(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// let (lo, hi) = s.confidence_interval(0.95);
/// assert!(lo < 2.5 && 2.5 < hi);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std_dev: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    #[must_use]
    pub fn from_sample(xs: &[f64]) -> Self {
        let (min, max) = xs.iter().fold(
            (f64::INFINITY, f64::NEG_INFINITY),
            |(lo, hi), &x| (lo.min(x), hi.max(x)),
        );
        Self {
            count: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: if xs.is_empty() { 0.0 } else { min },
            max: if xs.is_empty() { 0.0 } else { max },
        }
    }

    /// Standard error of the mean (0 for fewer than two observations).
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.std_dev / (self.count as f64).sqrt()
        }
    }

    /// Two-sided Student-t confidence interval for the mean. With fewer
    /// than two observations the interval degenerates to the mean itself.
    ///
    /// # Panics
    ///
    /// Panics unless `confidence ∈ (0, 1)`.
    #[must_use]
    pub fn confidence_interval(&self, confidence: f64) -> (f64, f64) {
        let half = self.confidence_half_width(confidence);
        (self.mean - half, self.mean + half)
    }

    /// Half-width of the confidence interval (the plotted error bar).
    ///
    /// # Panics
    ///
    /// Panics unless `confidence ∈ (0, 1)`.
    #[must_use]
    pub fn confidence_half_width(&self, confidence: f64) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let t = student_t_critical((self.count - 1) as f64, confidence);
        t * self.std_error()
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let xs: Vec<f64> = iter.into_iter().collect();
        Self::from_sample(&xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_reference() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample variance with n−1 = 7: Σ(x−5)² = 32 ⇒ 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(median(&[]), 0.0);
        let s = Summary::from_sample(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.confidence_half_width(0.95), 0.0);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn summary_tracks_extremes() {
        let s = Summary::from_sample(&[5.0, -2.0, 8.5, 0.0]);
        assert_eq!(s.min, -2.0);
        assert_eq!(s.max, 8.5);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn confidence_interval_is_symmetric_and_widens() {
        let s = Summary::from_sample(&[10.0, 12.0, 9.0, 11.0, 13.0, 10.5]);
        let (lo95, hi95) = s.confidence_interval(0.95);
        let (lo99, hi99) = s.confidence_interval(0.99);
        assert!((s.mean - lo95 - (hi95 - s.mean)).abs() < 1e-12);
        assert!(lo99 < lo95 && hi99 > hi95);
    }

    #[test]
    fn confidence_matches_t_table() {
        // n = 10, df = 9, 95% two-sided t = 2.262.
        let xs: Vec<f64> = (0..10).map(f64::from).collect();
        let s = Summary::from_sample(&xs);
        let expected = 2.262 * s.std_dev / 10f64.sqrt();
        assert!((s.confidence_half_width(0.95) - expected).abs() < 1e-3);
    }

    #[test]
    fn summary_from_iterator() {
        let s: Summary = (1..=5).map(f64::from).collect();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn constant_sample_has_zero_width_interval() {
        let s = Summary::from_sample(&[4.2; 12]);
        assert!(s.std_dev < 1e-12);
        let (lo, hi) = s.confidence_interval(0.95);
        assert!((hi - lo).abs() < 1e-9);
    }
}
