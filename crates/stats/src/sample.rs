//! Random samplers for the simulation study.
//!
//! The paper's workload generator (§VI) draws preferred begin times from a
//! Poisson distribution with mean 16 and durations from a discrete uniform
//! `[1, 4]`. Samplers are implemented here (Knuth's Poisson algorithm with
//! an inversion fallback for large means) so the workspace needs no extra
//! distribution crates.

use rand::{Rng, RngExt};

/// Draws from a Poisson distribution with the given mean.
///
/// Uses Knuth's multiplication method for `mean ≤ 30` (exact, cheap at the
/// paper's mean of 16) and normal-approximation rejection beyond that.
///
/// # Panics
///
/// Panics unless `mean` is positive and finite.
///
/// # Examples
///
/// ```
/// # use rand::SeedableRng;
/// # use enki_stats::sample::poisson;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = poisson(&mut rng, 16.0);
/// assert!(x < 100);
/// ```
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u32 {
    assert!(mean > 0.0 && mean.is_finite(), "poisson requires a positive finite mean");
    if mean <= 30.0 {
        // Knuth: multiply uniforms until the product drops below e^{-mean}.
        let threshold = (-mean).exp();
        let mut k = 0u32;
        let mut p = 1.0_f64;
        loop {
            p *= rng.random::<f64>();
            if p <= threshold {
                return k;
            }
            k += 1;
        }
    } else {
        // Normal approximation with continuity correction, clamped at zero.
        let z = standard_normal(rng);
        let x = mean + mean.sqrt() * z;
        x.round().max(0.0) as u32
    }
}

/// Draws a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws an integer uniformly from the inclusive range `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn uniform_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: u8, hi: u8) -> u8 {
    assert!(lo <= hi, "uniform_inclusive requires lo <= hi");
    rng.random_range(lo..=hi)
}

/// Draws a Poisson(`mean`) value clamped into `[lo, hi]` — the paper's
/// begin-time generator needs values that stay inside the day.
pub fn poisson_clamped<R: Rng + ?Sized>(rng: &mut R, mean: f64, lo: u8, hi: u8) -> u8 {
    let raw = poisson(rng, mean);
    (raw.min(u32::from(u8::MAX)) as u8).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_and_variance_match() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| f64::from(poisson(&mut rng, 16.0))).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 16.0).abs() < 0.2, "mean = {mean}");
        assert!((var - 16.0).abs() < 1.0, "var = {var}");
    }

    #[test]
    fn poisson_small_mean_mostly_zero_or_one() {
        let mut rng = StdRng::seed_from_u64(7);
        let draws: Vec<u32> = (0..5_000).map(|_| poisson(&mut rng, 0.1)).collect();
        let zeros = draws.iter().filter(|&&x| x == 0).count();
        // P(X = 0) = e^{-0.1} ≈ 0.905
        assert!(zeros > 4_300 && zeros < 4_800, "zeros = {zeros}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_branch() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| f64::from(poisson(&mut rng, 100.0))).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean = {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn uniform_inclusive_covers_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let x = uniform_inclusive(&mut rng, 1, 4);
            assert!((1..=4).contains(&x));
            seen[(x - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all values in [1,4] drawn");
    }

    #[test]
    fn uniform_inclusive_degenerate_range() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(uniform_inclusive(&mut rng, 9, 9), 9);
    }

    #[test]
    fn poisson_clamped_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let x = poisson_clamped(&mut rng, 16.0, 0, 20);
            assert!(x <= 20);
        }
    }

    #[test]
    fn seeded_sampling_is_reproducible() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        let xs: Vec<u32> = (0..50).map(|_| poisson(&mut a, 16.0)).collect();
        let ys: Vec<u32> = (0..50).map(|_| poisson(&mut b, 16.0)).collect();
        assert_eq!(xs, ys);
    }
}
