//! # enki-stats
//!
//! Statistics substrate for the Enki reproduction: descriptive statistics
//! with Student-t confidence intervals (the error bars of Figures 4–6), the
//! Mann–Whitney U test (Tables III and Figure 8 of the user study), and the
//! random samplers behind the §VI workload generator — all implemented from
//! scratch on top of `rand`.
//!
//! ```
//! use enki_stats::prelude::*;
//!
//! // 95% confidence interval over 10 simulated days.
//! let days = [3.1, 2.9, 3.4, 3.0, 3.2, 2.8, 3.3, 3.1, 3.0, 3.2];
//! let summary = Summary::from_sample(&days);
//! let (lo, hi) = summary.confidence_interval(0.95);
//! assert!(lo < summary.mean && summary.mean < hi);
//!
//! // Mann–Whitney U, as in Table III.
//! let observed = [2.0, 3.0, 1.0, 4.0, 2.0];
//! let null = [8.0; 5];
//! let test = mann_whitney_u(&observed, &null, Alternative::TwoSided);
//! assert!(test.p_value < 0.05);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod descriptive;
pub mod mann_whitney;
pub mod sample;
pub mod special;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::descriptive::{mean, median, std_dev, variance, Summary};
    pub use crate::mann_whitney::{mann_whitney_u, Alternative, Method, UTest};
    pub use crate::sample::{poisson, poisson_clamped, standard_normal, uniform_inclusive};
    pub use crate::special::{normal_cdf, normal_quantile, student_t_critical};
}
