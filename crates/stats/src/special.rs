//! Special functions backing the statistical tests.
//!
//! Implemented from scratch so the workspace carries no numerical
//! dependencies: log-gamma (Lanczos), the regularized incomplete beta
//! function (Lentz continued fraction), the standard normal CDF
//! (via `erf`), and the normal quantile (Acklam's rational approximation).

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 for positive arguments.
///
/// # Panics
///
/// Panics if `x <= 0`.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + G + 0.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the Lentz continued
/// fraction, with the symmetry transform for fast convergence.
///
/// # Panics
///
/// Panics unless `a > 0`, `b > 0`, and `x ∈ [0, 1]`.
#[must_use]
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc requires positive shape parameters");
    assert!((0.0..=1.0).contains(&x), "beta_inc requires x in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp()) * beta_cf(a, b, x) / a
    } else {
        1.0 - (ln_front.exp()) * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (Numerical Recipes style
/// modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function, Abramowitz & Stegun 7.1.26-style rational approximation
/// refined with one extra term (max error ~1.5e-7, adequate for p-values).
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
            * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function `Φ(z)`.
#[must_use]
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal quantile `Φ⁻¹(p)` (Acklam's algorithm, |ε| < 1.15e-9).
///
/// # Panics
///
/// Panics unless `p ∈ (0, 1)`.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile requires p in (0, 1)");
    const A: [f64; 6] = [
        -39.696_830_286_653_76,
        220.946_098_424_520_8,
        -275.928_510_446_969_1,
        138.357_751_867_269,
        -30.664_798_066_147_16,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -54.476_098_798_224_06,
        161.585_836_858_040_9,
        -155.698_979_859_886_6,
        66.801_311_887_719_72,
        -13.280_681_552_885_72,
    ];
    const C: [f64; 6] = [
        -0.007_784_894_002_430_293,
        -0.322_396_458_041_136_4,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        0.007_784_695_709_041_462,
        0.322_467_129_070_039_8,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let q;
    let r;
    if p < P_LOW {
        q = (-2.0 * p.ln()).sqrt();
        return (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0);
    } else if p <= 1.0 - P_LOW {
        q = p - 0.5;
        r = q * q;
        return (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0);
    }
    q = (-2.0 * (1.0 - p).ln()).sqrt();
    -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
        / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
}

/// CDF of Student's t distribution with `df` degrees of freedom.
///
/// # Panics
///
/// Panics unless `df > 0`.
#[must_use]
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "student_t_cdf requires positive degrees of freedom");
    let x = df / (df + t * t);
    let p = 0.5 * beta_inc(df / 2.0, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided critical value of Student's t: `t*` with
/// `P(|T| ≤ t*) = confidence`. Solved by bisection on the CDF.
///
/// # Panics
///
/// Panics unless `df > 0` and `confidence ∈ (0, 1)`.
#[must_use]
pub fn student_t_critical(df: f64, confidence: f64) -> f64 {
    assert!(df > 0.0, "student_t_critical requires positive df");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let target = 1.0 - (1.0 - confidence) / 2.0;
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
    while student_t_cdf(hi, df) < target {
        hi *= 2.0;
        if hi > 1e8 {
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, df) < target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0_f64;
        for n in 1..=10u32 {
            if n > 1 {
                fact *= f64::from(n - 1);
            }
            assert!((ln_gamma(f64::from(n)) - fact.ln()).abs() < 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn beta_inc_endpoints() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn beta_inc_uniform_case() {
        // I_x(1, 1) = x.
        for i in 1..10 {
            let x = f64::from(i) / 10.0;
            assert!((beta_inc(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn beta_inc_symmetry() {
        // I_x(a, b) = 1 - I_{1-x}(b, a).
        let (a, b, x) = (2.5, 4.0, 0.3);
        assert!((beta_inc(a, b, x) - (1.0 - beta_inc(b, a, 1.0 - x))).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-4);
        assert!((normal_cdf(3.0) - 0.99865).abs() < 1e-4);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.3, 0.5, 0.7, 0.975, 0.999] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-6, "p = {p}");
        }
    }

    #[test]
    fn student_t_cdf_symmetric() {
        for &df in &[1.0, 5.0, 19.0, 100.0] {
            assert!((student_t_cdf(0.0, df) - 0.5).abs() < 1e-12);
            let p = student_t_cdf(1.3, df) + student_t_cdf(-1.3, df);
            assert!((p - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn student_t_critical_reference_values() {
        // Classic t-table entries (two-sided 95%).
        assert!((student_t_critical(9.0, 0.95) - 2.262).abs() < 1e-3);
        assert!((student_t_critical(19.0, 0.95) - 2.093).abs() < 1e-3);
        // Large df converges to the normal 1.96.
        assert!((student_t_critical(10_000.0, 0.95) - 1.96).abs() < 2e-3);
    }

    #[test]
    fn student_t_heavy_tails_vs_normal() {
        // t with few df has heavier tails: CDF at 2.0 is smaller than Φ(2).
        assert!(student_t_cdf(2.0, 3.0) < normal_cdf(2.0));
    }

    #[test]
    #[should_panic(expected = "p in (0, 1)")]
    fn normal_quantile_rejects_boundary() {
        let _ = normal_quantile(1.0);
    }
}
