//! Property-based tests of the statistics substrate.

use enki_stats::descriptive::Summary;
use enki_stats::mann_whitney::{mann_whitney_u, Alternative};
use enki_stats::special::{normal_cdf, normal_quantile, student_t_cdf, student_t_critical};
use proptest::prelude::*;

fn sample() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e3f64..1e3, 1..25)
}

proptest! {
    #[test]
    fn u_statistics_partition_the_products(a in sample(), b in sample()) {
        let t = mann_whitney_u(&a, &b, Alternative::TwoSided);
        let product = (a.len() * b.len()) as f64;
        prop_assert!((t.u1 + t.u2 - product).abs() < 1e-9);
        prop_assert!(t.u <= t.u1 && t.u <= t.u2);
        prop_assert!((0.0..=1.0).contains(&t.p_value));
    }

    #[test]
    fn two_sided_p_is_symmetric_in_samples(a in sample(), b in sample()) {
        let t1 = mann_whitney_u(&a, &b, Alternative::TwoSided);
        let t2 = mann_whitney_u(&b, &a, Alternative::TwoSided);
        prop_assert!((t1.p_value - t2.p_value).abs() < 1e-9);
    }

    #[test]
    fn one_sided_tails_are_complementary_without_ties(
        mut a in proptest::collection::vec(0f64..1e6, 3..12),
        mut b in proptest::collection::vec(0f64..1e6, 3..12),
    ) {
        // De-duplicate to avoid ties (the exact method assumes none).
        a.sort_by(f64::total_cmp);
        a.dedup();
        b.sort_by(f64::total_cmp);
        b.retain(|x| !a.contains(x));
        b.dedup();
        prop_assume!(!a.is_empty() && !b.is_empty());
        let less = mann_whitney_u(&a, &b, Alternative::Less);
        let greater = mann_whitney_u(&a, &b, Alternative::Greater);
        // P(U ≤ u) + P(U ≥ u) = 1 + P(U = u) ≥ 1.
        prop_assert!(less.p_value + greater.p_value >= 1.0 - 1e-9);
    }

    #[test]
    fn shifting_a_sample_up_increases_its_rank_sum(
        a in proptest::collection::vec(0f64..100.0, 3..15),
        shift in 200f64..500.0,
    ) {
        let shifted: Vec<f64> = a.iter().map(|x| x + shift).collect();
        let t = mann_whitney_u(&shifted, &a, Alternative::Greater);
        // A fully separated upward shift makes "greater" nearly certain.
        prop_assert!(t.p_value < 0.51);
        prop_assert_eq!(t.u2, 0.0);
    }

    #[test]
    fn normal_quantile_round_trips(p in 0.001f64..0.999) {
        let z = normal_quantile(p);
        prop_assert!((normal_cdf(z) - p).abs() < 1e-5);
    }

    #[test]
    fn t_cdf_is_monotone(df in 1.0f64..200.0, a in -5.0f64..5.0, b in -5.0f64..5.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(student_t_cdf(lo, df) <= student_t_cdf(hi, df) + 1e-12);
    }

    #[test]
    fn t_critical_monotonicity(df in 1.0f64..100.0) {
        // Wider confidence needs a larger critical value.
        let t90 = student_t_critical(df, 0.90);
        let t95 = student_t_critical(df, 0.95);
        let t99 = student_t_critical(df, 0.99);
        prop_assert!(t90 < t95 && t95 < t99);
        // More degrees of freedom shrink the critical value.
        let t95_more = student_t_critical(df + 50.0, 0.95);
        prop_assert!(t95_more <= t95 + 1e-9);
    }

    #[test]
    fn summary_interval_contains_the_mean(xs in proptest::collection::vec(-1e3f64..1e3, 2..40)) {
        let s = Summary::from_sample(&xs);
        let (lo, hi) = s.confidence_interval(0.95);
        prop_assert!(lo <= s.mean + 1e-9 && s.mean <= hi + 1e-9);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
    }

    #[test]
    fn poisson_draws_are_reproducible_and_finite(seed in any::<u64>(), mean in 0.1f64..50.0) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let x = enki_stats::sample::poisson(&mut a, mean);
            let y = enki_stats::sample::poisson(&mut b, mean);
            prop_assert_eq!(x, y);
            prop_assert!(x < 10_000);
        }
    }
}
