//! Crash-consistent durability for the Enki center.
//!
//! The mechanism in Yuan et al. (ICDCS 2017) is only
//! incentive-compatible across days if settlement history survives
//! center crashes intact: a lost or doubled `DayRecord` silently
//! breaks budget balance and at-most-one-bill. This crate provides
//! the storage layer that makes the center's phase-boundary
//! checkpoints actually durable:
//!
//! - [`wal::Wal`] — an append-only, segmented write-ahead log with
//!   per-record CRC-32 checksums, length-prefixed framing (the same
//!   discipline as the `enki-serve` wire codec), explicit flush
//!   barriers, and checkpoint compaction;
//! - [`storage::Storage`] — the injectable backend trait (append /
//!   flush-barrier / truncate / remove over named segments);
//! - [`file::FileStorage`] — the real-file backend, the one
//!   sanctioned filesystem boundary in the workspace;
//! - [`fault::FaultStorage`] — a deterministic in-memory backend
//!   that injects torn writes, dropped flushes, bit rot, short
//!   reads, and ENOSPC at exact operation indices, so recovery can
//!   be tested against every crash point rather than sampled ones.
//!
//! The crate is deliberately **zero-dependency** (std only): the
//! durability layer must not inherit anyone else's panic paths or
//! nondeterminism. Everything except `file.rs` is pure computation
//! over byte buffers.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod crc;
pub mod fault;
pub mod file;
pub mod storage;
pub mod wal;

/// The commonly-used surface: `use enki_durable::prelude::*;`.
///
/// Deliberately excludes [`file::FileStorage`]: the real-filesystem
/// backend is the crate's nondeterministic boundary (lint rule R11
/// bans `enki_durable::file` outside this crate), and a prelude
/// re-export would smuggle it past that check. Name the module
/// explicitly where the real backend is genuinely wanted.
pub mod prelude {
    pub use crate::crc::crc32;
    pub use crate::fault::{BitRot, FaultPlan, FaultStats, FaultStorage, OpKind, TornWrite};
    pub use crate::storage::{MemStorage, Storage, StorageError};
    pub use crate::wal::{
        CorruptKind, Lsn, Quarantine, Recovery, Wal, WalConfig, WalError, WalRecord, WalStats,
    };
}
