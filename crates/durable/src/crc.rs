//! CRC-32 (IEEE 802.3) over byte slices.
//!
//! The WAL needs a checksum that detects bit rot and torn interior
//! writes; it does not need cryptographic strength. CRC-32 with the
//! reflected polynomial `0xEDB88320` is the standard choice (zip, PNG,
//! ethernet) and is implemented here table-driven with the table built
//! at compile time, so the crate stays zero-dependency.

/// The reflected CRC-32/IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, one step of the shift register per byte.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32/IEEE of `bytes` (init `!0`, final xor `!0`, reflected).
///
/// Matches the checksum produced by zlib's `crc32()` for the same
/// input, so externally-written segments can be cross-checked.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(!0, bytes) ^ !0
}

/// Feeds `bytes` into a running (pre-final-xor) CRC state.
///
/// Start from `!0`; xor with `!0` when done. [`crc32`] wraps the common
/// one-shot case; this incremental form lets the WAL checksum a record
/// kind byte and payload without concatenating them.
#[must_use]
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &b in bytes {
        let index = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[index];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"hello, durable world";
        for split in 0..data.len() {
            let state = crc32_update(!0, &data[..split]);
            let state = crc32_update(state, &data[split..]);
            assert_eq!(state ^ !0, crc32(data));
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data = b"settlement day 17";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at byte {byte} bit {bit}");
                copy[byte] ^= 1 << bit;
            }
        }
    }
}
