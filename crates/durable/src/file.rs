//! The real-file [`Storage`] backend — the **one sanctioned
//! filesystem boundary** in the workspace.
//!
//! Everything above this file is deterministic and fs-free; lint rule
//! R8 enforces that no other module in the mechanism crates touches
//! `std::fs` (this file is path-allowlisted, exactly like the thread
//! boundary in `serve/src/edge.rs`). Keeping the boundary to one
//! module means the fault model in [`crate::fault::FaultStorage`]
//! only has to imitate the behaviors visible through the [`Storage`]
//! trait, and every consumer above can be chaos-tested without a
//! disk.
//!
//! Durability mapping: `append` goes through a cached
//! `O_APPEND`-style handle and lands in the OS page cache; `flush`
//! calls `sync_all` (fsync) — the same barrier the WAL's commit
//! protocol assumes. `truncate` and `remove` sync before returning so
//! recovery's torn-tail cuts are themselves crash-safe.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::storage::{Storage, StorageError};

fn io_error(segment: &str, error: &std::io::Error) -> StorageError {
    if error.kind() == std::io::ErrorKind::NotFound {
        StorageError::NotFound {
            segment: segment.to_string(),
        }
    } else if matches!(error.raw_os_error(), Some(code) if code == 28) {
        // ENOSPC maps to the same refusal the fault backend injects.
        StorageError::NoSpace {
            segment: segment.to_string(),
        }
    } else {
        StorageError::Io {
            segment: segment.to_string(),
            detail: error.to_string(),
        }
    }
}

/// Directory-backed segment store: each segment is one file under the
/// root directory.
#[derive(Debug)]
pub struct FileStorage {
    root: PathBuf,
    /// Cached append handles so repeated appends don't reopen files;
    /// `flush` syncs through the same handle that wrote.
    handles: BTreeMap<String, File>,
}

impl FileStorage {
    /// Opens (creating if needed) the directory that holds segments.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] when the directory cannot be
    /// created or is not accessible.
    #[must_use = "an unopened store has no directory to write to"]
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StorageError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| io_error("<root>", &e))?;
        Ok(Self {
            root,
            handles: BTreeMap::new(),
        })
    }

    /// The backing directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, segment: &str) -> PathBuf {
        self.root.join(segment)
    }

    fn handle(&mut self, segment: &str) -> Result<&mut File, StorageError> {
        if !self.handles.contains_key(segment) {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.path(segment))
                .map_err(|e| io_error(segment, &e))?;
            self.handles.insert(segment.to_string(), file);
        }
        match self.handles.get_mut(segment) {
            Some(file) => Ok(file),
            None => Err(StorageError::Io {
                segment: segment.to_string(),
                detail: "append handle vanished".to_string(),
            }),
        }
    }
}

impl Storage for FileStorage {
    fn segments(&mut self) -> Result<Vec<String>, StorageError> {
        let entries = fs::read_dir(&self.root).map_err(|e| io_error("<root>", &e))?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_error("<root>", &e))?;
            if entry.path().is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn read(&mut self, segment: &str) -> Result<Vec<u8>, StorageError> {
        fs::read(self.path(segment)).map_err(|e| io_error(segment, &e))
    }

    fn append(&mut self, segment: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.handle(segment)?
            .write_all(bytes)
            .map_err(|e| io_error(segment, &e))
    }

    fn flush(&mut self, segment: &str) -> Result<(), StorageError> {
        if !self.path(segment).exists() {
            return Ok(());
        }
        self.handle(segment)?
            .sync_all()
            .map_err(|e| io_error(segment, &e))
    }

    fn truncate(&mut self, segment: &str, len: u64) -> Result<(), StorageError> {
        // Drop the append handle first: its kernel offset would
        // otherwise point past the new end.
        self.handles.remove(segment);
        let file = OpenOptions::new()
            .write(true)
            .open(self.path(segment))
            .map_err(|e| io_error(segment, &e))?;
        let current = file.metadata().map_err(|e| io_error(segment, &e))?.len();
        if len < current {
            file.set_len(len).map_err(|e| io_error(segment, &e))?;
        }
        file.sync_all().map_err(|e| io_error(segment, &e))
    }

    fn remove(&mut self, segment: &str) -> Result<(), StorageError> {
        self.handles.remove(segment);
        match fs::remove_file(self.path(segment)) {
            Ok(()) => Ok(()),
            // Idempotent like the trait demands: a compaction retry
            // must not fail on an already-removed segment.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_error(segment, &e)),
        }
    }
}
