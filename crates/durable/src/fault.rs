//! Deterministic storage fault injection.
//!
//! [`FaultStorage`] is an in-memory [`Storage`] that models the gap a
//! real disk leaves between "the write returned" and "the bytes are
//! durable": every segment keeps a **durable** image (what survives a
//! crash) and a **buffered** image (appended but not yet flushed —
//! the page cache). A simulated crash drops every buffered byte, and
//! the plan can additionally inject, at exact operation indices:
//!
//! - **torn writes** — an append persists only a prefix and the
//!   process dies mid-write (the classic torn tail);
//! - **dropped flushes** — a flush fails *and throws away the dirty
//!   buffer* (post-fsyncgate kernel semantics: the error is reported
//!   once, the pages are marked clean anyway), so the caller must
//!   treat the whole commit as lost — retrying the flush cannot
//!   resurrect the bytes;
//! - **bit rot** — a bit flips in the durable image at rest;
//! - **short reads** — a read returns only a prefix of the segment;
//! - **ENOSPC** — appends fail once a byte budget is exhausted.
//!
//! Everything is driven by a monotonically increasing operation
//! counter, so a fault schedule is a pure function of the call
//! sequence: the same workload replayed against the same plan fails
//! identically, which is what makes the crash-point matrix in
//! `bench_durable` exhaustive rather than probabilistic. For seeded
//! exploration, [`FaultPlan::seeded`] derives fault sites from a
//! `u64` seed via SplitMix64.

use std::collections::BTreeMap;

use crate::storage::{Storage, StorageError};

/// What one storage call was, for rehearsal-driven crash placement.
///
/// A chaos test first runs its workload against a clean plan, reads
/// the [`FaultStorage::op_log`], picks the exact operation to attack
/// (say, "the flush right after the third append"), then re-runs with
/// that index in the plan. Determinism makes the two runs line up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// `segments()` listing.
    List,
    /// `read(segment)`.
    Read,
    /// `append(segment, bytes)` with the byte count.
    Append(usize),
    /// `flush(segment)`.
    Flush,
    /// `truncate(segment, len)`.
    Truncate,
    /// `remove(segment)`.
    Remove,
}

/// One entry of the operation log: index, kind, target segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// The operation counter value when this call ran.
    pub op: u64,
    /// What the call was.
    pub kind: OpKind,
    /// The segment it targeted (empty for `segments()`).
    pub segment: String,
}

/// A torn write: at operation `op`, persist only `keep` bytes of the
/// append into the buffer, then crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornWrite {
    /// Operation index of the append to tear.
    pub op: u64,
    /// Bytes of the append that land before the crash.
    pub keep: usize,
}

/// A bit flip in the durable image, applied when the operation counter
/// reaches `op` (at rest: the flip persists for all later reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitRot {
    /// Operation index at which the flip happens.
    pub op: u64,
    /// Byte offset into the **concatenated durable image** (segments
    /// in lexicographic order); wrapped modulo the image size.
    pub byte: u64,
    /// Bit within that byte, `0..8`.
    pub bit: u8,
}

/// Counters for every fault the storage actually injected, mirrored
/// into `durable.*` telemetry by the journal layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Simulated crashes (including the one a torn write implies).
    pub crashes: u64,
    /// Appends that persisted only a prefix.
    pub torn_writes: u64,
    /// Flushes that failed and discarded the dirty buffer.
    pub dropped_flushes: u64,
    /// Bits flipped in the durable image.
    pub bits_flipped: u64,
    /// Reads that returned only a prefix.
    pub short_reads: u64,
    /// Appends refused with `NoSpace`.
    pub enospc: u64,
}

/// The fault schedule, all keyed by operation index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Crash (fail with [`StorageError::Crashed`], drop buffers) when
    /// the operation counter reaches this value. The faulted
    /// operation itself does not happen.
    pub crash_at_op: Option<u64>,
    /// Tear one append: persist a prefix, then crash.
    pub torn_write: Option<TornWrite>,
    /// Operation indices whose `flush` fails with [`StorageError::Io`]
    /// after discarding the buffered bytes (fsyncgate semantics).
    pub dropped_flushes: Vec<u64>,
    /// Bits to flip in the durable image.
    pub bit_rot: Vec<BitRot>,
    /// Operation indices whose `read` returns only half the segment.
    pub short_reads: Vec<u64>,
    /// Total durable+buffered byte budget; appends that would exceed
    /// it fail with [`StorageError::NoSpace`] writing nothing.
    pub capacity: Option<u64>,
}

impl FaultPlan {
    /// The empty plan: behave exactly like [`crate::storage::MemStorage`]
    /// but with real buffered-versus-durable semantics.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Derives a single-fault plan from a seed: SplitMix64 picks the
    /// fault class and the operation index within `horizon` ops.
    /// Useful for randomized sweeps where each seed must map to one
    /// reproducible fault.
    #[must_use]
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let mut state = seed;
        let mut next = move || -> u64 {
            // SplitMix64 (Steele et al.): enough mixing to decorrelate
            // consecutive seeds, trivially deterministic.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let op = if horizon == 0 { 0 } else { next() % horizon };
        let mut plan = Self::default();
        match next() % 4 {
            0 => plan.crash_at_op = Some(op),
            1 => {
                plan.torn_write = Some(TornWrite {
                    op,
                    keep: (next() % 64) as usize,
                });
            }
            2 => plan.dropped_flushes = vec![op],
            _ => {
                plan.bit_rot = vec![BitRot {
                    op,
                    byte: next(),
                    bit: (next() % 8) as u8,
                }];
            }
        }
        plan
    }
}

#[derive(Debug, Clone, Default)]
struct FaultSegment {
    /// Bytes that survive a crash.
    durable: Vec<u8>,
    /// Bytes appended since the last honored flush (lost on crash).
    buffered: Vec<u8>,
}

/// The fault-injecting in-memory backend. See the module docs for the
/// fault model.
#[derive(Debug, Clone)]
pub struct FaultStorage {
    segments: BTreeMap<String, FaultSegment>,
    plan: FaultPlan,
    ops: u64,
    crashed: bool,
    stats: FaultStats,
    op_log: Vec<OpRecord>,
}

impl FaultStorage {
    /// A store that will follow `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            segments: BTreeMap::new(),
            plan,
            ops: 0,
            crashed: false,
            stats: FaultStats::default(),
            op_log: Vec::new(),
        }
    }

    /// Operations performed so far (the crash-point coordinate space).
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Whether a simulated crash has happened and not been recovered.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Counters for every fault actually injected so far.
    #[must_use]
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The full operation log (rehearsal API for crash placement).
    #[must_use]
    pub fn op_log(&self) -> &[OpRecord] {
        &self.op_log
    }

    /// A copy of the durable image only — what a post-crash process
    /// would find on disk.
    #[must_use]
    pub fn durable_image(&self) -> BTreeMap<String, Vec<u8>> {
        self.segments
            .iter()
            .filter(|(_, s)| !s.durable.is_empty())
            .map(|(name, s)| (name.clone(), s.durable.clone()))
            .collect()
    }

    fn tick(&mut self, kind: OpKind, segment: &str) -> Result<u64, StorageError> {
        if self.crashed {
            return Err(StorageError::Crashed);
        }
        let op = self.ops;
        self.ops += 1;
        self.op_log.push(OpRecord {
            op,
            kind,
            segment: segment.to_string(),
        });
        // Bit rot fires the moment its index is reached, regardless of
        // which operation that is.
        let rot: Vec<BitRot> = self
            .plan
            .bit_rot
            .iter()
            .copied()
            .filter(|r| r.op == op)
            .collect();
        for r in rot {
            self.flip_bit(r);
        }
        if self.plan.crash_at_op == Some(op) {
            self.enter_crash();
            return Err(StorageError::Crashed);
        }
        Ok(op)
    }

    /// Crashes the store now, regardless of the plan: buffered
    /// (unflushed) bytes vanish and every subsequent operation fails
    /// with [`StorageError::Crashed`] until
    /// [`crash_recover`](Storage::crash_recover). Chaos tests use this
    /// to place a crash at a point chosen by the caller rather than by
    /// an operation counter.
    pub fn enter_crash(&mut self) {
        self.crashed = true;
        self.stats.crashes += 1;
        for seg in self.segments.values_mut() {
            seg.buffered.clear();
        }
        self.segments.retain(|_, s| !s.durable.is_empty());
    }

    fn flip_bit(&mut self, rot: BitRot) {
        let total: u64 = self.segments.values().map(|s| s.durable.len() as u64).sum();
        if total == 0 {
            return;
        }
        let mut target = rot.byte % total;
        for seg in self.segments.values_mut() {
            let len = seg.durable.len() as u64;
            if target < len {
                if let Some(byte) = seg.durable.get_mut(target as usize) {
                    *byte ^= 1 << (rot.bit % 8);
                    self.stats.bits_flipped += 1;
                }
                return;
            }
            target -= len;
        }
    }

    fn total_bytes(&self) -> u64 {
        self.segments
            .values()
            .map(|s| (s.durable.len() + s.buffered.len()) as u64)
            .sum()
    }
}

impl Storage for FaultStorage {
    fn segments(&mut self) -> Result<Vec<String>, StorageError> {
        self.tick(OpKind::List, "")?;
        Ok(self
            .segments
            .iter()
            .filter(|(_, s)| !s.durable.is_empty() || !s.buffered.is_empty())
            .map(|(name, _)| name.clone())
            .collect())
    }

    fn read(&mut self, segment: &str) -> Result<Vec<u8>, StorageError> {
        let op = self.tick(OpKind::Read, segment)?;
        let short = self.plan.short_reads.contains(&op);
        let Some(seg) = self.segments.get(segment) else {
            return Err(StorageError::NotFound {
                segment: segment.to_string(),
            });
        };
        let mut bytes = seg.durable.clone();
        bytes.extend_from_slice(&seg.buffered);
        if short {
            self.stats.short_reads += 1;
            bytes.truncate(bytes.len() / 2);
        }
        Ok(bytes)
    }

    fn append(&mut self, segment: &str, bytes: &[u8]) -> Result<(), StorageError> {
        let op = self.tick(OpKind::Append(bytes.len()), segment)?;
        if let Some(capacity) = self.plan.capacity {
            if self.total_bytes() + bytes.len() as u64 > capacity {
                self.stats.enospc += 1;
                return Err(StorageError::NoSpace {
                    segment: segment.to_string(),
                });
            }
        }
        if let Some(torn) = self.plan.torn_write {
            if torn.op == op {
                let keep = torn.keep.min(bytes.len());
                self.segments
                    .entry(segment.to_string())
                    .or_default()
                    .buffered
                    .extend_from_slice(&bytes[..keep]);
                self.stats.torn_writes += 1;
                self.enter_crash();
                return Err(StorageError::Crashed);
            }
        }
        self.segments
            .entry(segment.to_string())
            .or_default()
            .buffered
            .extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&mut self, segment: &str) -> Result<(), StorageError> {
        let op = self.tick(OpKind::Flush, segment)?;
        if self.plan.dropped_flushes.contains(&op) {
            // fsyncgate semantics: the failure is reported exactly once
            // and the dirty pages are discarded anyway — the caller
            // must treat the whole commit as lost, because no retry
            // can resurrect the dropped bytes.
            self.stats.dropped_flushes += 1;
            if let Some(seg) = self.segments.get_mut(segment) {
                seg.buffered.clear();
            }
            return Err(StorageError::Io {
                segment: segment.to_string(),
                detail: "flush barrier failed; buffered bytes dropped".to_string(),
            });
        }
        if let Some(seg) = self.segments.get_mut(segment) {
            let buffered = std::mem::take(&mut seg.buffered);
            seg.durable.extend_from_slice(&buffered);
        }
        Ok(())
    }

    fn truncate(&mut self, segment: &str, len: u64) -> Result<(), StorageError> {
        self.tick(OpKind::Truncate, segment)?;
        let Some(seg) = self.segments.get_mut(segment) else {
            return Err(StorageError::NotFound {
                segment: segment.to_string(),
            });
        };
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        // Truncation is a durable, barrier-like operation (ftruncate +
        // fsync in the real backend): fold the buffer in first.
        let buffered = std::mem::take(&mut seg.buffered);
        seg.durable.extend_from_slice(&buffered);
        if len < seg.durable.len() {
            seg.durable.truncate(len);
        }
        Ok(())
    }

    fn remove(&mut self, segment: &str) -> Result<(), StorageError> {
        self.tick(OpKind::Remove, segment)?;
        self.segments.remove(segment);
        Ok(())
    }

    fn crash_recover(&mut self) {
        // Restart semantics whether or not a crash fired: the page
        // cache (buffered bytes) is gone either way.
        for seg in self.segments.values_mut() {
            seg.buffered.clear();
        }
        self.segments.retain(|_, s| !s.durable.is_empty());
        self.crashed = false;
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unflushed_appends_lost_on_crash() {
        let mut s = FaultStorage::new(FaultPlan {
            crash_at_op: Some(2),
            ..FaultPlan::default()
        });
        s.append("a", b"durable").unwrap(); // op 0
        s.flush("a").unwrap(); // op 1
        assert_eq!(s.append("a", b" lost"), Err(StorageError::Crashed)); // op 2
        assert_eq!(s.read("a"), Err(StorageError::Crashed));
        s.crash_recover();
        assert_eq!(s.read("a").unwrap(), b"durable");
    }

    #[test]
    fn torn_write_keeps_prefix_then_crashes() {
        let mut s = FaultStorage::new(FaultPlan {
            torn_write: Some(TornWrite { op: 2, keep: 3 }),
            ..FaultPlan::default()
        });
        s.append("a", b"head").unwrap(); // op 0
        s.flush("a").unwrap(); // op 1
        assert_eq!(s.append("a", b"tail!"), Err(StorageError::Crashed)); // op 2
        s.crash_recover();
        // The torn prefix was only buffered, so the crash also ate it.
        assert_eq!(s.read("a").unwrap(), b"head");
        assert_eq!(s.stats().torn_writes, 1);
    }

    #[test]
    fn torn_write_prefix_survives_if_flushed_by_truncate_fold() {
        // A torn prefix that an (unlikely) later flush would have made
        // durable is still lost here because the crash is immediate;
        // this pins the semantics.
        let mut s = FaultStorage::new(FaultPlan {
            torn_write: Some(TornWrite { op: 0, keep: 2 }),
            ..FaultPlan::default()
        });
        assert_eq!(s.append("a", b"xyz"), Err(StorageError::Crashed));
        s.crash_recover();
        assert_eq!(s.read("a"), Err(StorageError::NotFound { segment: "a".into() }));
    }

    #[test]
    fn dropped_flush_fails_and_discards_the_buffer() {
        let mut s = FaultStorage::new(FaultPlan {
            dropped_flushes: vec![1],
            ..FaultPlan::default()
        });
        s.append("a", b"data").unwrap(); // op 0
        let err = s.flush("a").unwrap_err(); // op 1: fails, buffer gone
        assert!(matches!(err, StorageError::Io { .. }), "{err:?}");
        assert_eq!(s.stats().dropped_flushes, 1);
        // Retrying the flush cannot resurrect the dropped bytes.
        s.flush("a").unwrap(); // op 2: honored, but nothing to flush
        s.crash_recover();
        assert_eq!(s.read("a"), Err(StorageError::NotFound { segment: "a".into() }));
    }

    #[test]
    fn bit_rot_flips_durable_byte() {
        let mut s = FaultStorage::new(FaultPlan {
            bit_rot: vec![BitRot { op: 2, byte: 1, bit: 0 }],
            ..FaultPlan::default()
        });
        s.append("a", b"abc").unwrap(); // op 0
        s.flush("a").unwrap(); // op 1
        let read = s.read("a").unwrap(); // op 2: rot fires first
        assert_eq!(read, b"a\x63c"); // 'b' ^ 1 = 'c'
        assert_eq!(s.stats().bits_flipped, 1);
    }

    #[test]
    fn short_read_returns_prefix() {
        let mut s = FaultStorage::new(FaultPlan {
            short_reads: vec![2],
            ..FaultPlan::default()
        });
        s.append("a", b"0123456789").unwrap(); // op 0
        s.flush("a").unwrap(); // op 1
        assert_eq!(s.read("a").unwrap(), b"01234"); // op 2
        assert_eq!(s.read("a").unwrap(), b"0123456789"); // op 3: back to normal
    }

    #[test]
    fn capacity_exhaustion_refuses_append() {
        let mut s = FaultStorage::new(FaultPlan {
            capacity: Some(8),
            ..FaultPlan::default()
        });
        s.append("a", b"12345678").unwrap();
        assert_eq!(
            s.append("a", b"9"),
            Err(StorageError::NoSpace { segment: "a".into() })
        );
        assert_eq!(s.stats().enospc, 1);
        // The refused append wrote nothing.
        assert_eq!(s.read("a").unwrap(), b"12345678");
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..32 {
            assert_eq!(FaultPlan::seeded(seed, 100), FaultPlan::seeded(seed, 100));
        }
        // Different seeds give a mix of fault classes.
        let classes: std::collections::BTreeSet<u8> = (0..32)
            .map(|seed| {
                let p = FaultPlan::seeded(seed, 100);
                if p.crash_at_op.is_some() {
                    0
                } else if p.torn_write.is_some() {
                    1
                } else if !p.dropped_flushes.is_empty() {
                    2
                } else {
                    3
                }
            })
            .collect();
        assert!(classes.len() >= 3, "seeded plans cover classes {classes:?}");
    }

    #[test]
    fn op_log_records_rehearsal() {
        let mut s = FaultStorage::new(FaultPlan::none());
        s.append("a", b"x").unwrap();
        s.flush("a").unwrap();
        let log = s.op_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].kind, OpKind::Append(1));
        assert_eq!(log[1].kind, OpKind::Flush);
    }
}
