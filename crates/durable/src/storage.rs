//! The injectable storage boundary the WAL writes through.
//!
//! A [`Storage`] is a flat namespace of append-only segments with an
//! explicit flush barrier per segment. The WAL never assumes an append
//! is durable until `flush` returns: the contract mirrors what a real
//! filesystem gives you (`write(2)` lands in the page cache,
//! `fsync(2)` is the barrier), which is exactly the gap the
//! fault-injecting backend ([`crate::fault::FaultStorage`]) attacks.
//!
//! Implementations must be deterministic given the same call sequence;
//! the real-file backend ([`crate::file::FileStorage`]) is the one
//! sanctioned place the workspace touches the filesystem.

use std::collections::BTreeMap;
use std::fmt;

/// Why a storage operation failed.
///
/// Errors are values, not panics: every failure mode here is one the
/// recovery path must survive, so the type is cloneable and comparable
/// for use in tests and oracle assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StorageError {
    /// The backing medium is out of space; nothing was written.
    NoSpace {
        /// Segment whose append was refused.
        segment: String,
    },
    /// The storage simulated (or suffered) a crash: the operation did
    /// not happen and every later operation fails the same way until
    /// the owner recovers the backend.
    Crashed,
    /// The named segment does not exist.
    NotFound {
        /// The missing segment.
        segment: String,
    },
    /// Any other backend failure, with a human-readable detail.
    Io {
        /// Segment the operation targeted.
        segment: String,
        /// Backend-specific description.
        detail: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NoSpace { segment } => {
                write!(f, "no space left appending to segment {segment}")
            }
            StorageError::Crashed => write!(f, "storage crashed"),
            StorageError::NotFound { segment } => write!(f, "segment {segment} not found"),
            StorageError::Io { segment, detail } => {
                write!(f, "storage error on segment {segment}: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// An append-only segment store with explicit flush barriers.
///
/// Semantics every implementation must honor:
///
/// - `append` buffers bytes at the end of the segment (creating it if
///   missing); the bytes are visible to `read` immediately but are
///   **not durable** until `flush` returns `Ok`.
/// - `flush` is the durability barrier for everything appended to that
///   segment so far.
/// - `truncate` and `remove` take effect durably before returning.
/// - `segments` lists existing segment names in ascending
///   lexicographic order.
///
/// Implementations must not panic on any input. `Debug` is a
/// supertrait so a `Box<dyn Storage>` can live inside `Debug` owners
/// (the workspace warns on missing debug implementations).
pub trait Storage: fmt::Debug {
    /// Lists segment names in ascending lexicographic order.
    ///
    /// # Errors
    ///
    /// Returns a [`StorageError`] when the backend cannot enumerate
    /// segments (crashed, or an I/O failure).
    #[must_use = "unlisted segments cannot be replayed"]
    fn segments(&mut self) -> Result<Vec<String>, StorageError>;

    /// Reads a segment's full contents (durable plus buffered bytes).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NotFound`] for a missing segment and
    /// other [`StorageError`]s for backend failures.
    #[must_use = "dropping the read loses the segment contents"]
    fn read(&mut self, segment: &str) -> Result<Vec<u8>, StorageError>;

    /// Appends bytes to a segment, creating it when missing. The bytes
    /// are buffered, not durable, until [`Storage::flush`].
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NoSpace`] when the medium is full and
    /// other [`StorageError`]s for backend failures.
    #[must_use = "an unchecked append may have silently failed"]
    fn append(&mut self, segment: &str, bytes: &[u8]) -> Result<(), StorageError>;

    /// Durability barrier: everything appended to `segment` so far is
    /// durable once this returns `Ok`. Flushing a missing segment is a
    /// no-op.
    ///
    /// # Errors
    ///
    /// Returns a [`StorageError`] when the barrier cannot be
    /// established; appended bytes may then be lost on crash.
    #[must_use = "an unchecked flush leaves durability unknown"]
    fn flush(&mut self, segment: &str) -> Result<(), StorageError>;

    /// Durably truncates a segment to `len` bytes (no-op when already
    /// shorter). Used by recovery to cut torn tails.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NotFound`] for a missing segment and
    /// other [`StorageError`]s for backend failures.
    #[must_use = "an unchecked truncate may have left the torn tail in place"]
    fn truncate(&mut self, segment: &str, len: u64) -> Result<(), StorageError>;

    /// Durably removes a segment. Removing a missing segment is a
    /// no-op (compaction retries must be idempotent).
    ///
    /// # Errors
    ///
    /// Returns a [`StorageError`] when the backend cannot remove the
    /// segment.
    #[must_use = "an unchecked remove may have left a stale segment"]
    fn remove(&mut self, segment: &str) -> Result<(), StorageError>;

    /// Clears any simulated crash state after the owner decides to
    /// restart: buffered (unflushed) bytes are discarded, exactly as a
    /// process restart would lose the page cache. Real backends, where
    /// the OS already did this, default to a no-op.
    fn crash_recover(&mut self) {}

    /// Downcast hook so owners holding a `Box<dyn Storage>` can reach
    /// a concrete backend (chaos tests read
    /// [`FaultStorage`](crate::fault::FaultStorage) fault stats
    /// through this). Backends that opt in return `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Mutable variant of [`Storage::as_any`].
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

impl Storage for Box<dyn Storage> {
    fn segments(&mut self) -> Result<Vec<String>, StorageError> {
        (**self).segments()
    }
    fn read(&mut self, segment: &str) -> Result<Vec<u8>, StorageError> {
        (**self).read(segment)
    }
    fn append(&mut self, segment: &str, bytes: &[u8]) -> Result<(), StorageError> {
        (**self).append(segment, bytes)
    }
    fn flush(&mut self, segment: &str) -> Result<(), StorageError> {
        (**self).flush(segment)
    }
    fn truncate(&mut self, segment: &str, len: u64) -> Result<(), StorageError> {
        (**self).truncate(segment, len)
    }
    fn remove(&mut self, segment: &str) -> Result<(), StorageError> {
        (**self).remove(segment)
    }
    fn crash_recover(&mut self) {
        (**self).crash_recover();
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        (**self).as_any()
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        (**self).as_any_mut()
    }
}

/// A faithful in-memory [`Storage`]: appends are immediately durable,
/// nothing ever fails. The baseline backend for tests and benchmarks
/// that want WAL behavior without fault injection.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    segments: BTreeMap<String, Vec<u8>>,
}

impl MemStorage {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw bytes of every segment, for test assertions.
    #[must_use]
    pub fn image(&self) -> &BTreeMap<String, Vec<u8>> {
        &self.segments
    }

    /// Replaces the raw contents of one segment (tests use this to
    /// hand-craft corrupt logs).
    pub fn put(&mut self, segment: &str, bytes: Vec<u8>) {
        self.segments.insert(segment.to_string(), bytes);
    }
}

impl Storage for MemStorage {
    fn segments(&mut self) -> Result<Vec<String>, StorageError> {
        Ok(self.segments.keys().cloned().collect())
    }

    fn read(&mut self, segment: &str) -> Result<Vec<u8>, StorageError> {
        self.segments
            .get(segment)
            .cloned()
            .ok_or_else(|| StorageError::NotFound {
                segment: segment.to_string(),
            })
    }

    fn append(&mut self, segment: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.segments
            .entry(segment.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&mut self, _segment: &str) -> Result<(), StorageError> {
        Ok(())
    }

    fn truncate(&mut self, segment: &str, len: u64) -> Result<(), StorageError> {
        let Some(bytes) = self.segments.get_mut(segment) else {
            return Err(StorageError::NotFound {
                segment: segment.to_string(),
            });
        };
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        if len < bytes.len() {
            bytes.truncate(len);
        }
        Ok(())
    }

    fn remove(&mut self, segment: &str) -> Result<(), StorageError> {
        self.segments.remove(segment);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_append_read_roundtrip() {
        let mut s = MemStorage::new();
        s.append("a", b"hello ").unwrap();
        s.append("a", b"world").unwrap();
        assert_eq!(s.read("a").unwrap(), b"hello world");
        assert_eq!(s.segments().unwrap(), vec!["a".to_string()]);
    }

    #[test]
    fn mem_storage_truncate_and_remove() {
        let mut s = MemStorage::new();
        s.append("a", b"hello world").unwrap();
        s.truncate("a", 5).unwrap();
        assert_eq!(s.read("a").unwrap(), b"hello");
        // Truncating longer than the segment is a no-op.
        s.truncate("a", 100).unwrap();
        assert_eq!(s.read("a").unwrap(), b"hello");
        s.remove("a").unwrap();
        assert_eq!(s.read("a"), Err(StorageError::NotFound { segment: "a".into() }));
        // Removing again is idempotent.
        s.remove("a").unwrap();
    }

    #[test]
    fn segments_sorted() {
        let mut s = MemStorage::new();
        s.append("b", b"x").unwrap();
        s.append("a", b"x").unwrap();
        s.append("c", b"x").unwrap();
        assert_eq!(s.segments().unwrap(), vec!["a", "b", "c"]);
    }
}
