//! The append-only, checksummed, segmented write-ahead log.
//!
//! ## Record framing
//!
//! Every record is one frame, following the same length-prefixed
//! discipline as the `enki-serve` wire codec:
//!
//! ```text
//! [len: u32 LE][kind: u8][crc: u32 LE][payload: len bytes]
//! ```
//!
//! `len` counts only the payload; `crc` is CRC-32/IEEE over the kind
//! byte followed by the payload, so neither the record type nor its
//! body can rot undetected. Frames are written back to back into
//! numbered segments (`wal-0000000000.seg`, ...); a segment rotates
//! once it would exceed [`WalConfig::segment_max_bytes`].
//!
//! ## Commit protocol
//!
//! [`Wal::append`] buffers; [`Wal::flush`] is the explicit durability
//! barrier. Callers that need write-ahead semantics must
//! append → flush → apply, in that order. Rotation flushes the old
//! segment before opening the next, so at most the current segment is
//! ever un-barriered.
//!
//! ## Recovery rules (deterministic by construction)
//!
//! [`Wal::open`] replays every segment in index order:
//!
//! - A frame that parses and checksums is a record.
//! - A complete frame whose CRC mismatches is **quarantined**: its
//!   span is skipped (the length prefix is trusted for resync) and
//!   scanning continues. Interior corruption never silently truncates
//!   history.
//! - An incomplete or unparseable frame at the end of the **last**
//!   segment is a **torn tail**: the segment is truncated back to the
//!   last whole frame. A tail frame with a garbage length prefix is
//!   indistinguishable from a torn write and is truncated the same
//!   way — recovery prefers a consistent prefix over guessing.
//! - An incomplete frame in a **non-last** segment cannot be a torn
//!   tail (later segments exist, so the log continued); the remainder
//!   of that segment is quarantined instead.
//!
//! The same bytes therefore always recover to the same record
//! sequence, which is what lets chaos tests assert byte-reproducible
//! traces across crash/recover cycles.

use std::fmt;

use crate::crc::crc32_update;
use crate::storage::{Storage, StorageError};

/// Frame header size: `len` (4) + `kind` (1) + `crc` (4).
pub const FRAME_HEADER_LEN: usize = 9;

/// Hard cap on a record payload (16 MiB). A length prefix above the
/// cap can only be corruption; recovery refuses to follow it.
pub const MAX_RECORD_LEN: usize = 16 * 1024 * 1024;

/// Segment file name for an index, zero-padded so lexicographic order
/// is numeric order.
#[must_use]
pub fn segment_name(index: u64) -> String {
    format!("wal-{index:010}.seg")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    if digits.len() != 10 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// WAL sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Rotate to a fresh segment once the current one would exceed
    /// this many bytes (a single oversized record still gets its own
    /// segment).
    pub segment_max_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            segment_max_bytes: 64 * 1024,
        }
    }
}

/// A log sequence number: where a record starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Lsn {
    /// Segment index.
    pub segment: u64,
    /// Byte offset of the frame within the segment.
    pub offset: u64,
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.segment, self.offset)
    }
}

/// One replayed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Where the record starts.
    pub lsn: Lsn,
    /// Caller-defined record type tag.
    pub kind: u8,
    /// The checksummed payload, bit-exact as appended.
    pub payload: Vec<u8>,
}

/// Why a span of the log was quarantined during replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// A complete frame whose CRC did not match (bit rot or a torn
    /// interior overwrite).
    BadCrc,
    /// A frame in a non-last segment that runs past the segment end or
    /// has an over-cap length: the segment's remainder is untrustworthy.
    TruncatedInterior,
}

/// A quarantined span: skipped, counted, never replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantine {
    /// Where the bad span starts.
    pub lsn: Lsn,
    /// Bytes skipped.
    pub bytes: u64,
    /// Why.
    pub reason: CorruptKind,
}

/// Everything [`Wal::open`] found while replaying.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Recovery {
    /// Valid records, in log order.
    pub records: Vec<WalRecord>,
    /// Where the torn tail started, when one was truncated.
    pub torn_tail: Option<Lsn>,
    /// Corrupt spans skipped during replay.
    pub quarantined: Vec<Quarantine>,
}

/// Lifetime counters for one WAL handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended through this handle.
    pub appended: u64,
    /// Flush barriers established.
    pub flushed: u64,
    /// Segment rotations.
    pub rotations: u64,
    /// Checkpoint compactions.
    pub compactions: u64,
}

/// Errors from the WAL proper.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WalError {
    /// The storage backend failed.
    Storage(StorageError),
    /// The payload exceeds [`MAX_RECORD_LEN`].
    RecordTooLarge {
        /// Offending payload length.
        len: usize,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Storage(e) => write!(f, "wal storage failure: {e}"),
            WalError::RecordTooLarge { len } => {
                write!(f, "wal record of {len} bytes exceeds the {MAX_RECORD_LEN} byte cap")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<StorageError> for WalError {
    fn from(e: StorageError) -> Self {
        WalError::Storage(e)
    }
}

/// The write-ahead log over an injectable [`Storage`].
#[derive(Debug)]
pub struct Wal<S: Storage> {
    storage: S,
    config: WalConfig,
    /// Lowest live segment index (compaction moves this forward).
    first_segment: u64,
    /// Current (append-target) segment index.
    segment: u64,
    /// Bytes already in the current segment.
    segment_len: u64,
    stats: WalStats,
}

impl<S: Storage> Wal<S> {
    /// Opens the log, replaying whatever the storage holds. Torn
    /// tails are truncated durably before the handle is returned, so
    /// a recovered WAL appends from a clean frame boundary.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Storage`] when the backend fails (including
    /// a simulated crash during recovery itself).
    #[must_use = "dropping the recovery loses the replayed records"]
    pub fn open(mut storage: S, config: WalConfig) -> Result<(Self, Recovery), WalError> {
        let (recovery, layout) = replay(&mut storage)?;
        Ok((
            Self {
                storage,
                config,
                first_segment: layout.first_segment,
                segment: layout.segment,
                segment_len: layout.segment_len,
                stats: WalStats::default(),
            },
            recovery,
        ))
    }

    /// In-place restart: recovers the backend from any simulated crash
    /// ([`Storage::crash_recover`] drops unflushed buffers, as a real
    /// process restart would) and replays the log exactly as
    /// [`Wal::open`] does, truncating any torn tail. Lifetime stats
    /// survive; the append position is reset to the recovered tail.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Storage`] when the backend fails during the
    /// replay itself.
    #[must_use = "dropping the recovery loses the replayed records"]
    pub fn reopen(&mut self) -> Result<Recovery, WalError> {
        self.storage.crash_recover();
        let (recovery, layout) = replay(&mut self.storage)?;
        self.first_segment = layout.first_segment;
        self.segment = layout.segment;
        self.segment_len = layout.segment_len;
        Ok(recovery)
    }

    /// Appends one record (buffered until [`Wal::flush`]); returns its
    /// LSN. Rotates to a new segment when the current one is full,
    /// flushing the old segment first.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::RecordTooLarge`] for an over-cap payload
    /// and [`WalError::Storage`] when the backend fails.
    #[must_use = "the append is not durable until a flush barrier; check the error"]
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<Lsn, WalError> {
        if payload.len() > MAX_RECORD_LEN {
            return Err(WalError::RecordTooLarge { len: payload.len() });
        }
        let frame = encode_frame(kind, payload);
        if self.segment_len > 0
            && self.segment_len + frame.len() as u64 > self.config.segment_max_bytes
        {
            self.storage.flush(&segment_name(self.segment))?;
            self.stats.flushed += 1;
            self.segment += 1;
            self.segment_len = 0;
            self.stats.rotations += 1;
        }
        let lsn = Lsn {
            segment: self.segment,
            offset: self.segment_len,
        };
        self.storage.append(&segment_name(self.segment), &frame)?;
        self.segment_len += frame.len() as u64;
        self.stats.appended += 1;
        Ok(lsn)
    }

    /// Durability barrier: every record appended so far is durable
    /// once this returns `Ok`.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Storage`] when the barrier cannot be
    /// established; treat appended-but-unflushed records as lost.
    #[must_use = "an unchecked flush leaves the write-ahead barrier unknown"]
    pub fn flush(&mut self) -> Result<(), WalError> {
        self.storage.flush(&segment_name(self.segment))?;
        self.stats.flushed += 1;
        Ok(())
    }

    /// Checkpoint compaction: writes `payload` as the sole record of a
    /// fresh segment, flushes it, then removes every older segment.
    /// Crash-safe at every point — if the new segment never becomes
    /// durable, recovery still has the old ones; if removal is cut
    /// short, recovery replays stale records before the checkpoint,
    /// and the checkpoint (being last) wins.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::RecordTooLarge`] for an over-cap payload
    /// and [`WalError::Storage`] when the backend fails.
    #[must_use = "a failed compaction may leave the old segments in place"]
    pub fn compact(&mut self, kind: u8, payload: &[u8]) -> Result<Lsn, WalError> {
        if payload.len() > MAX_RECORD_LEN {
            return Err(WalError::RecordTooLarge { len: payload.len() });
        }
        let frame = encode_frame(kind, payload);
        let new_segment = self.segment + 1;
        self.storage.append(&segment_name(new_segment), &frame)?;
        self.storage.flush(&segment_name(new_segment))?;
        self.stats.flushed += 1;
        // Only after the checkpoint is durable do the old segments go.
        for index in self.first_segment..=self.segment {
            self.storage.remove(&segment_name(index))?;
        }
        self.first_segment = new_segment;
        self.segment = new_segment;
        self.segment_len = frame.len() as u64;
        self.stats.appended += 1;
        self.stats.compactions += 1;
        Ok(Lsn {
            segment: new_segment,
            offset: 0,
        })
    }

    /// Lifetime counters for this handle.
    #[must_use]
    pub fn stats(&self) -> &WalStats {
        &self.stats
    }

    /// Bytes currently in the append-target segment.
    #[must_use]
    pub fn segment_len(&self) -> u64 {
        self.segment_len
    }

    /// Live segment count (`first..=current`).
    #[must_use]
    pub fn live_segments(&self) -> u64 {
        self.segment - self.first_segment + 1
    }

    /// Borrows the backend (tests inspect fault stats through this).
    #[must_use]
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// Mutably borrows the backend. Meant for fault-injection tests
    /// (arming [`crate::fault::FaultStorage::enter_crash`] mid-run);
    /// mutating live segments underneath the WAL voids its append
    /// position until the next [`Wal::reopen`].
    #[must_use]
    pub fn storage_mut(&mut self) -> &mut S {
        &mut self.storage
    }

    /// Consumes the handle, returning the backend — the restart path:
    /// take the storage, [`Storage::crash_recover`] it, and
    /// [`Wal::open`] it again.
    #[must_use]
    pub fn into_storage(self) -> S {
        self.storage
    }
}

/// Segment layout recovered by a replay: where appends resume.
struct Layout {
    first_segment: u64,
    segment: u64,
    segment_len: u64,
}

/// Replays every segment in index order, truncating a torn tail
/// durably; shared by [`Wal::open`] and [`Wal::reopen`].
fn replay<S: Storage>(storage: &mut S) -> Result<(Recovery, Layout), WalError> {
    let mut indices: Vec<u64> = storage
        .segments()?
        .iter()
        .filter_map(|name| parse_segment_name(name))
        .collect();
    indices.sort_unstable();

    let mut recovery = Recovery::default();
    let mut layout = Layout {
        first_segment: indices.first().copied().unwrap_or(0),
        segment: 0,
        segment_len: 0,
    };
    for (position, &index) in indices.iter().enumerate() {
        let last = position + 1 == indices.len();
        let bytes = storage.read(&segment_name(index))?;
        let kept = scan_segment(index, &bytes, last, &mut recovery);
        if last {
            if (kept as u64) < bytes.len() as u64 {
                storage.truncate(&segment_name(index), kept as u64)?;
            }
            layout.segment = index;
            layout.segment_len = kept as u64;
        }
    }
    Ok((recovery, layout))
}

fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut crc = crc32_update(!0, &[kind]);
    crc = crc32_update(crc, payload);
    let crc = crc ^ !0;
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&u32::try_from(payload.len()).unwrap_or(u32::MAX).to_le_bytes());
    frame.push(kind);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let slice = bytes.get(at..at + 4)?;
    let array: [u8; 4] = slice.try_into().ok()?;
    Some(u32::from_le_bytes(array))
}

/// Scans one segment's bytes, pushing records and quarantines into
/// `recovery`; returns the number of trusted bytes (everything before
/// a torn tail). `last` selects torn-tail semantics.
fn scan_segment(index: u64, bytes: &[u8], last: bool, recovery: &mut Recovery) -> usize {
    let mut pos = 0usize;
    while pos < bytes.len() {
        let lsn = Lsn {
            segment: index,
            offset: pos as u64,
        };
        let remainder = bytes.len() - pos;
        let header_ok = remainder >= FRAME_HEADER_LEN;
        let len = if header_ok {
            read_u32(bytes, pos).map(|l| l as usize)
        } else {
            None
        };
        let frame_fits = matches!(len, Some(l) if l <= MAX_RECORD_LEN
            && pos + FRAME_HEADER_LEN + l <= bytes.len());
        if !frame_fits {
            if last {
                // Torn tail: truncate back to the last whole frame.
                recovery.torn_tail = Some(lsn);
                return pos;
            }
            // Later segments exist, so this cannot be a tail; the
            // remainder of this segment is untrustworthy.
            recovery.quarantined.push(Quarantine {
                lsn,
                bytes: remainder as u64,
                reason: CorruptKind::TruncatedInterior,
            });
            return bytes.len();
        }
        let len = len.unwrap_or(0);
        let kind = bytes.get(pos + 4).copied().unwrap_or(0);
        let stored_crc = read_u32(bytes, pos + 5).unwrap_or(0);
        let payload = bytes
            .get(pos + FRAME_HEADER_LEN..pos + FRAME_HEADER_LEN + len)
            .unwrap_or(&[]);
        let mut crc = crc32_update(!0, &[kind]);
        crc = crc32_update(crc, payload);
        if crc ^ !0 != stored_crc {
            // Interior corruption: skip exactly this frame's span and
            // keep scanning — the length prefix is the resync point.
            recovery.quarantined.push(Quarantine {
                lsn,
                bytes: (FRAME_HEADER_LEN + len) as u64,
                reason: CorruptKind::BadCrc,
            });
        } else {
            recovery.records.push(WalRecord {
                lsn,
                kind,
                payload: payload.to_vec(),
            });
        }
        pos += FRAME_HEADER_LEN + len;
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn open_mem(storage: MemStorage) -> (Wal<MemStorage>, Recovery) {
        Wal::open(storage, WalConfig::default()).unwrap()
    }

    #[test]
    fn empty_log_opens_clean() {
        let (wal, recovery) = open_mem(MemStorage::new());
        assert_eq!(recovery, Recovery::default());
        assert_eq!(wal.segment_len(), 0);
    }

    #[test]
    fn append_flush_reopen_roundtrip() {
        let (mut wal, _) = open_mem(MemStorage::new());
        wal.append(1, b"alpha").unwrap();
        wal.append(2, b"").unwrap();
        wal.append(3, &[0xFF; 100]).unwrap();
        wal.flush().unwrap();
        let (_, recovery) = open_mem(wal.into_storage());
        assert_eq!(recovery.torn_tail, None);
        assert!(recovery.quarantined.is_empty());
        let kinds: Vec<u8> = recovery.records.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![1, 2, 3]);
        assert_eq!(recovery.records[0].payload, b"alpha");
        assert_eq!(recovery.records[1].payload, b"");
        assert_eq!(recovery.records[2].payload, vec![0xFF; 100]);
    }

    #[test]
    fn rotation_splits_segments_and_replays_in_order() {
        let storage = MemStorage::new();
        let (mut wal, _) =
            Wal::open(storage, WalConfig { segment_max_bytes: 64 }).unwrap();
        for i in 0..10u8 {
            wal.append(i, &[i; 20]).unwrap();
        }
        wal.flush().unwrap();
        assert!(wal.live_segments() > 1, "rotation expected");
        let (_, recovery) =
            Wal::open(wal.into_storage(), WalConfig { segment_max_bytes: 64 }).unwrap();
        let kinds: Vec<u8> = recovery.records.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn torn_tail_truncated_deterministically() {
        let (mut wal, _) = open_mem(MemStorage::new());
        wal.append(1, b"whole").unwrap();
        wal.append(2, b"torn-away").unwrap();
        wal.flush().unwrap();
        let mut storage = wal.into_storage();
        // Tear the last frame mid-payload.
        let name = segment_name(0);
        let mut bytes = storage.image()[&name].clone();
        bytes.truncate(bytes.len() - 4);
        storage.put(&name, bytes);
        let (wal, recovery) = open_mem(storage);
        assert_eq!(recovery.records.len(), 1);
        assert_eq!(recovery.records[0].payload, b"whole");
        let torn = recovery.torn_tail.unwrap();
        assert_eq!(torn.segment, 0);
        // The tail is gone from storage, so a second open is clean.
        let (_, recovery2) = open_mem(wal.into_storage());
        assert_eq!(recovery2.records.len(), 1);
        assert_eq!(recovery2.torn_tail, None);
    }

    #[test]
    fn interior_bad_crc_is_quarantined_not_truncated() {
        let (mut wal, _) = open_mem(MemStorage::new());
        wal.append(1, b"first").unwrap();
        wal.append(2, b"second").unwrap();
        wal.append(3, b"third").unwrap();
        wal.flush().unwrap();
        let mut storage = wal.into_storage();
        let name = segment_name(0);
        let mut bytes = storage.image()[&name].clone();
        // Flip a payload bit inside the middle record.
        let middle_payload = FRAME_HEADER_LEN + 5 + FRAME_HEADER_LEN + 2;
        bytes[middle_payload] ^= 0x01;
        storage.put(&name, bytes);
        let (_, recovery) = open_mem(storage);
        let kinds: Vec<u8> = recovery.records.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![1, 3], "middle record quarantined, rest kept");
        assert_eq!(recovery.quarantined.len(), 1);
        assert_eq!(recovery.quarantined[0].reason, CorruptKind::BadCrc);
    }

    #[test]
    fn garbage_length_in_tail_truncates() {
        let (mut wal, _) = open_mem(MemStorage::new());
        wal.append(1, b"good").unwrap();
        wal.flush().unwrap();
        let mut storage = wal.into_storage();
        let name = segment_name(0);
        let mut bytes = storage.image()[&name].clone();
        // Append a frame whose length field claims 2 GiB.
        bytes.extend_from_slice(&0x7FFF_FFFFu32.to_le_bytes());
        bytes.extend_from_slice(&[9, 0, 0, 0, 0]);
        storage.put(&name, bytes);
        let (_, recovery) = open_mem(storage);
        assert_eq!(recovery.records.len(), 1);
        assert!(recovery.torn_tail.is_some());
    }

    #[test]
    fn incomplete_frame_in_interior_segment_quarantines_remainder() {
        let mut storage = MemStorage::new();
        {
            let (mut wal, _) =
                Wal::open(storage, WalConfig { segment_max_bytes: 32 }).unwrap();
            wal.append(1, &[1; 20]).unwrap();
            wal.append(2, &[2; 20]).unwrap();
            wal.append(3, &[3; 20]).unwrap();
            wal.flush().unwrap();
            assert!(wal.live_segments() >= 2);
            storage = wal.into_storage();
        }
        // Damage the FIRST segment's record so its frame runs past the end.
        let name = segment_name(0);
        let mut bytes = storage.image()[&name].clone();
        bytes.truncate(bytes.len() - 2);
        storage.put(&name, bytes.clone());
        let (_, recovery) = open_mem(storage);
        assert_eq!(recovery.torn_tail, None, "interior segment is not a tail");
        assert_eq!(recovery.quarantined.len(), 1);
        assert_eq!(
            recovery.quarantined[0].reason,
            CorruptKind::TruncatedInterior
        );
        let kinds: Vec<u8> = recovery.records.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![2, 3]);
    }

    #[test]
    fn compaction_keeps_only_the_checkpoint() {
        let (mut wal, _) = open_mem(MemStorage::new());
        for i in 0..5u8 {
            wal.append(1, &[i; 10]).unwrap();
        }
        wal.flush().unwrap();
        wal.compact(9, b"checkpoint").unwrap();
        wal.append(1, b"after").unwrap();
        wal.flush().unwrap();
        let (wal, recovery) = open_mem(wal.into_storage());
        let kinds: Vec<u8> = recovery.records.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![9, 1]);
        assert_eq!(recovery.records[0].payload, b"checkpoint");
        assert_eq!(wal.live_segments(), 1);
    }

    #[test]
    fn reopen_after_crash_drops_unflushed_tail() {
        use crate::fault::{FaultPlan, FaultStorage};
        let storage = FaultStorage::new(FaultPlan::none());
        let (mut wal, _) = Wal::open(storage, WalConfig::default()).unwrap();
        wal.append(1, b"durable").unwrap();
        wal.flush().unwrap();
        wal.append(2, b"volatile").unwrap();
        // No flush: the second record is page-cache only.
        wal.storage_mut().enter_crash();
        let recovery = wal.reopen().unwrap();
        let kinds: Vec<u8> = recovery.records.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![1], "unflushed record lost, flushed kept");
        // The handle appends cleanly after the in-place restart.
        wal.append(3, b"again").unwrap();
        wal.flush().unwrap();
        let recovery = wal.reopen().unwrap();
        let kinds: Vec<u8> = recovery.records.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![1, 3]);
    }

    #[test]
    fn oversized_record_refused() {
        let (mut wal, _) = open_mem(MemStorage::new());
        let big = vec![0u8; MAX_RECORD_LEN + 1];
        assert!(matches!(
            wal.append(0, &big),
            Err(WalError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn segment_names_sort_numerically() {
        assert_eq!(segment_name(0), "wal-0000000000.seg");
        assert_eq!(parse_segment_name("wal-0000000042.seg"), Some(42));
        assert_eq!(parse_segment_name("wal-42.seg"), None);
        assert_eq!(parse_segment_name("journal.seg"), None);
        let mut names: Vec<String> = (0..1500).map(segment_name).collect();
        let sorted = names.clone();
        names.sort();
        assert_eq!(names, sorted);
    }
}
