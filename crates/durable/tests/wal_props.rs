//! Property-based tests of the WAL's recovery guarantees: appended
//! records replay bit-exactly, any durable prefix of a valid log
//! recovers to a prefix of the record sequence, and arbitrary
//! single-bit corruption never fabricates a record or panics.

use enki_durable::prelude::*;
use enki_durable::wal::{segment_name, FRAME_HEADER_LEN};
use proptest::prelude::*;

fn record() -> impl Strategy<Value = (u8, Vec<u8>)> {
    (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..200))
}

fn records() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    proptest::collection::vec(record(), 0..40)
}

fn build_log(records: &[(u8, Vec<u8>)], segment_max_bytes: u64) -> MemStorage {
    let (mut wal, recovery) =
        Wal::open(MemStorage::new(), WalConfig { segment_max_bytes }).unwrap();
    assert!(recovery.records.is_empty());
    for (kind, payload) in records {
        wal.append(*kind, payload).unwrap();
    }
    wal.flush().unwrap();
    wal.into_storage()
}

/// Concatenated segment bytes in log order, with per-segment lengths
/// (so a flat cut point maps back to a (segment, offset) pair).
fn flat_image(storage: &MemStorage) -> (Vec<u8>, Vec<(String, usize)>) {
    let mut flat = Vec::new();
    let mut layout = Vec::new();
    for (name, bytes) in storage.image() {
        flat.extend_from_slice(bytes);
        layout.push((name.clone(), bytes.len()));
    }
    (flat, layout)
}

/// Rebuilds a storage holding only the first `cut` bytes of the flat
/// image — the durable state after losing everything past `cut`.
fn cut_storage(flat: &[u8], layout: &[(String, usize)], cut: usize) -> MemStorage {
    let mut storage = MemStorage::new();
    let mut pos = 0;
    for (name, len) in layout {
        if pos >= cut {
            break;
        }
        let take = (*len).min(cut - pos);
        storage.put(name, flat[pos..pos + take].to_vec());
        pos += len;
    }
    storage
}

proptest! {
    /// Append → flush → reopen replays every record bit-exactly, at any
    /// segment size (so rotation boundaries are exercised too).
    #[test]
    fn replay_is_bit_exact(recs in records(), segment_max in 32u64..4096) {
        let storage = build_log(&recs, segment_max);
        let (_, recovery) = Wal::open(storage, WalConfig { segment_max_bytes: segment_max }).unwrap();
        prop_assert_eq!(recovery.torn_tail, None);
        prop_assert!(recovery.quarantined.is_empty());
        let replayed: Vec<(u8, Vec<u8>)> = recovery
            .records
            .into_iter()
            .map(|r| (r.kind, r.payload))
            .collect();
        prop_assert_eq!(replayed, recs);
    }

    /// Cutting the log at ANY byte length recovers exactly the records
    /// whose frames are fully inside the cut — a prefix of the original
    /// sequence, with the partial frame (if any) truncated as a torn
    /// tail. No record is ever invented or reordered.
    #[test]
    fn any_prefix_recovers_to_a_record_prefix(
        recs in records(),
        segment_max in 48u64..1024,
        cut_seed in any::<u64>(),
    ) {
        let storage = build_log(&recs, segment_max);
        let (flat, layout) = flat_image(&storage);
        let cut = if flat.is_empty() { 0 } else { (cut_seed % (flat.len() as u64 + 1)) as usize };
        let storage = cut_storage(&flat, &layout, cut);
        let (_, recovery) =
            Wal::open(storage, WalConfig { segment_max_bytes: segment_max }).unwrap();
        prop_assert!(recovery.quarantined.is_empty(), "a clean prefix has no corruption");
        let replayed: Vec<(u8, Vec<u8>)> = recovery
            .records
            .into_iter()
            .map(|r| (r.kind, r.payload))
            .collect();
        prop_assert!(replayed.len() <= recs.len());
        prop_assert_eq!(&replayed[..], &recs[..replayed.len()], "recovered a strict prefix");
        // Count how many whole frames fit in `cut` bytes: that is
        // exactly what must have been recovered.
        let mut expected = 0usize;
        let mut pos = 0usize;
        for (_, payload) in &recs {
            pos += FRAME_HEADER_LEN + payload.len();
            if pos <= cut { expected += 1; } else { break; }
        }
        prop_assert_eq!(replayed.len(), expected);
    }

    /// Flipping any single bit anywhere in the durable image never
    /// panics, never fabricates a record, and loses at most the records
    /// whose spans the corruption makes untrustworthy: the survivors
    /// are a subsequence of the originals, bit-exact.
    #[test]
    fn single_bit_flip_never_fabricates_records(
        recs in records(),
        segment_max in 48u64..1024,
        flip_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let storage = build_log(&recs, segment_max);
        let (flat, layout) = flat_image(&storage);
        if flat.is_empty() {
            return Ok(());
        }
        let flip_at = (flip_seed % flat.len() as u64) as usize;
        let mut corrupt = flat.clone();
        corrupt[flip_at] ^= 1 << bit;
        let storage = cut_storage(&corrupt, &layout, corrupt.len());
        let (_, recovery) =
            Wal::open(storage, WalConfig { segment_max_bytes: segment_max }).unwrap();
        // Every recovered record must appear in the original sequence,
        // in order (subsequence check over (kind, payload)).
        let mut originals = recs.iter();
        for r in &recovery.records {
            let found = originals.any(|o| o.0 == r.kind && o.1 == r.payload);
            prop_assert!(found, "recovered record not in the original log");
        }
        // The flip must be accounted for: either some record was
        // dropped (quarantined/torn) or the flip landed in a payload
        // byte of... no: a flip inside a frame always breaks that
        // frame's CRC, so if all records survived the flip hit bytes
        // the scanner re-derives (impossible — every byte is covered
        // by len, kind, crc, or payload). Hence:
        prop_assert!(
            recovery.records.len() < recs.len()
                || !recovery.quarantined.is_empty()
                || recovery.torn_tail.is_some(),
            "a bit flip inside the log must be detected"
        );
    }

    /// A torn final append (any prefix of the last frame) truncates
    /// back to the previous frame boundary, and the WAL keeps working
    /// after recovery: new appends replay after the survivors.
    #[test]
    fn torn_tail_then_continue(recs in records(), keep in 0usize..FRAME_HEADER_LEN) {
        prop_assume!(!recs.is_empty());
        let storage = build_log(&recs, u64::MAX);
        let name = segment_name(0);
        let mut bytes = storage.image()[&name].clone();
        // Tear: keep only `keep` bytes of a new, partial frame header.
        bytes.extend_from_slice(&vec![0xAB; keep]);
        let mut storage = MemStorage::new();
        storage.put(&name, bytes);
        let (mut wal, recovery) = Wal::open(storage, WalConfig::default()).unwrap();
        prop_assert_eq!(recovery.records.len(), recs.len());
        prop_assert_eq!(recovery.torn_tail.is_some(), keep > 0);
        wal.append(0xEE, b"post-recovery").unwrap();
        wal.flush().unwrap();
        let (_, recovery2) = Wal::open(wal.into_storage(), WalConfig::default()).unwrap();
        prop_assert_eq!(recovery2.records.len(), recs.len() + 1);
        let last = recovery2.records.last().unwrap();
        prop_assert_eq!(last.kind, 0xEE);
        prop_assert_eq!(&last.payload[..], b"post-recovery");
    }
}
