//! Integration tests for the real-file backend: the same WAL
//! behaviors proven on `MemStorage` hold through an actual directory,
//! including reopening across handles (a simulated process restart)
//! and torn-tail truncation on disk.
//!
//! Files live under `CARGO_TARGET_TMPDIR`, so everything stays inside
//! the workspace's `target/` directory.

use std::fs;
use std::path::PathBuf;

use enki_durable::file::FileStorage;
use enki_durable::prelude::*;
use enki_durable::wal::segment_name;

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    // Start clean: a previous failed run may have left segments.
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn wal_roundtrips_through_real_files() {
    let dir = scratch("roundtrip");
    {
        let storage = FileStorage::open(&dir).unwrap();
        let (mut wal, recovery) = Wal::open(storage, WalConfig::default()).unwrap();
        assert!(recovery.records.is_empty());
        wal.append(1, b"first").unwrap();
        wal.append(2, &[0u8, 255, 128]).unwrap();
        wal.flush().unwrap();
    }
    // A fresh handle — a new process — replays the same records.
    let storage = FileStorage::open(&dir).unwrap();
    let (_, recovery) = Wal::open(storage, WalConfig::default()).unwrap();
    assert_eq!(recovery.torn_tail, None);
    assert!(recovery.quarantined.is_empty());
    assert_eq!(recovery.records.len(), 2);
    assert_eq!(recovery.records[0].payload, b"first");
    assert_eq!(recovery.records[1].payload, vec![0u8, 255, 128]);
}

#[test]
fn torn_tail_on_disk_is_truncated() {
    let dir = scratch("torn");
    {
        let storage = FileStorage::open(&dir).unwrap();
        let (mut wal, _) = Wal::open(storage, WalConfig::default()).unwrap();
        wal.append(7, b"kept").unwrap();
        wal.flush().unwrap();
    }
    // Simulate a torn write: garbage partial frame at the tail.
    let segment = dir.join(segment_name(0));
    let mut bytes = fs::read(&segment).unwrap();
    let whole = bytes.len();
    bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE]);
    fs::write(&segment, &bytes).unwrap();

    let storage = FileStorage::open(&dir).unwrap();
    let (_, recovery) = Wal::open(storage, WalConfig::default()).unwrap();
    assert_eq!(recovery.records.len(), 1);
    assert_eq!(recovery.records[0].payload, b"kept");
    assert!(recovery.torn_tail.is_some());
    // The truncation is durable: the file itself shrank back.
    assert_eq!(fs::read(&segment).unwrap().len(), whole);
}

#[test]
fn compaction_removes_old_segment_files() {
    let dir = scratch("compact");
    let storage = FileStorage::open(&dir).unwrap();
    let (mut wal, _) = Wal::open(storage, WalConfig { segment_max_bytes: 64 }).unwrap();
    for i in 0..8u8 {
        wal.append(i, &[i; 24]).unwrap();
    }
    wal.flush().unwrap();
    assert!(wal.live_segments() > 1);
    wal.compact(9, b"checkpoint").unwrap();
    drop(wal);

    let mut names: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(names.len(), 1, "only the checkpoint segment remains: {names:?}");

    let storage = FileStorage::open(&dir).unwrap();
    let (_, recovery) = Wal::open(storage, WalConfig { segment_max_bytes: 64 }).unwrap();
    assert_eq!(recovery.records.len(), 1);
    assert_eq!(recovery.records[0].kind, 9);
    assert_eq!(recovery.records[0].payload, b"checkpoint");
}

#[test]
fn bit_rot_on_disk_is_quarantined() {
    let dir = scratch("rot");
    {
        let storage = FileStorage::open(&dir).unwrap();
        let (mut wal, _) = Wal::open(storage, WalConfig::default()).unwrap();
        wal.append(1, b"aaaa").unwrap();
        wal.append(2, b"bbbb").unwrap();
        wal.append(3, b"cccc").unwrap();
        wal.flush().unwrap();
    }
    let segment = dir.join(segment_name(0));
    let mut bytes = fs::read(&segment).unwrap();
    // Flip a bit in the middle record's payload.
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&segment, &bytes).unwrap();

    let storage = FileStorage::open(&dir).unwrap();
    let (_, recovery) = Wal::open(storage, WalConfig::default()).unwrap();
    assert_eq!(recovery.quarantined.len(), 1);
    assert_eq!(recovery.records.len(), 2, "the two intact records survive");
}
