//! The wire protocol between household ECC agents and the neighborhood
//! center (the paper's Figure 1, steps 1–4).
//!
//! One day runs: `DayStart` ▸ households `SubmitReport` (with retries) ▸
//! center `Allocation` ▸ households consume and `MeterReading` ▸ center
//! `Bill`. Every message carries its day number so late deliveries from a
//! previous day are recognized and dropped by the recipient.
//!
//! Reports travel as **raw** wire-level preferences
//! ([`RawPreference`](enki_core::validation::RawPreference)): the center
//! trusts nothing off the wire and classifies every report through the
//! admission layer ([`enki_core::validation`]) before it can reach the
//! mechanism.

use enki_core::household::HouseholdId;
use enki_core::time::Interval;
use enki_core::validation::RawPreference;
use enki_telemetry::trace::TraceContext;
use serde::{Deserialize, Serialize};

/// Discrete simulation time, in ticks.
pub type Tick = u64;

/// A network endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// The neighborhood center.
    Center,
    /// One household's ECC unit.
    Household(HouseholdId),
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeId::Center => write!(f, "center"),
            NodeId::Household(h) => write!(f, "{h}"),
        }
    }
}

/// Protocol messages (Figure 1's arrows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Center → all: a new day begins; report by `report_deadline`, meters
    /// are read at `meter_deadline`.
    DayStart {
        /// Day number.
        day: u64,
        /// Tick by which reports must arrive.
        report_deadline: Tick,
        /// Tick at which the center settles from meter readings.
        meter_deadline: Tick,
    },
    /// Household → center: the day's preference report (step 1). Carried
    /// raw and unvalidated; the center's admission layer decides whether
    /// it is accepted, clamped, or quarantined.
    SubmitReport {
        /// Day number.
        day: u64,
        /// Reported preference `χ̂`, unvalidated.
        preference: RawPreference,
    },
    /// Center → household: the suggested window (step 2).
    Allocation {
        /// Day number.
        day: u64,
        /// Suggested window `s_i`.
        window: Interval,
    },
    /// Household → center: the realized consumption (step 3; in a real
    /// deployment the smart meter reports this).
    MeterReading {
        /// Day number.
        day: u64,
        /// Realized window `ω_i`.
        window: Interval,
    },
    /// Center → household: the bill (step 4).
    Bill {
        /// Day number.
        day: u64,
        /// Payment `p_i` owed to the center.
        amount: f64,
    },
}

impl Message {
    /// The day this message belongs to.
    #[must_use]
    pub fn day(&self) -> u64 {
        match self {
            Message::DayStart { day, .. }
            | Message::SubmitReport { day, .. }
            | Message::Allocation { day, .. }
            | Message::MeterReading { day, .. }
            | Message::Bill { day, .. } => *day,
        }
    }
}

/// A message in flight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Payload.
    pub message: Message,
    /// Deterministic causal context: which stage of which report's
    /// journey this message carries. `None` on untraced paths. Because
    /// contexts are pure functions of `(seed, day, household, stage)`,
    /// a receiver can also re-derive the context from the payload —
    /// the field exists so intermediaries (queues, journals) need not.
    pub trace: Option<TraceContext>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_their_day() {
        let m = Message::SubmitReport {
            day: 3,
            preference: RawPreference::new(18.0, 22.0, 2.0),
        };
        assert_eq!(m.day(), 3);
        let m = Message::Bill { day: 9, amount: 4.5 };
        assert_eq!(m.day(), 9);
    }

    #[test]
    fn node_ids_display() {
        assert_eq!(NodeId::Center.to_string(), "center");
        assert_eq!(NodeId::Household(HouseholdId::new(4)).to_string(), "h4");
    }

    #[test]
    fn envelope_roundtrips_through_serde() {
        let env = Envelope {
            from: NodeId::Household(HouseholdId::new(1)),
            to: NodeId::Center,
            message: Message::MeterReading {
                day: 2,
                window: Interval::new(18, 20).unwrap(),
            },
            trace: Some(TraceContext::report_stage(7, 2, 1, 0)),
        };
        let json = serde_json::to_string(&env).unwrap();
        let back: Envelope = serde_json::from_str(&json).unwrap();
        assert_eq!(env, back);
    }
}
