//! # enki-agents
//!
//! The distributed face of the Enki reproduction: the paper's Figure 1
//! architecture — household ECC units talking to a neighborhood controller
//! "through a local network" (§I) — implemented as message-passing agents.
//!
//! * [`message`] — the five-step day protocol (preference ▸ allocation ▸
//!   consumption ▸ payment, plus the day-start broadcast).
//! * [`network`] — a deterministic simulated LAN with latency, jitter, and
//!   loss injection.
//! * [`household`] — the ECC agent: learns its pattern, reports with
//!   retries, consumes within its truth, submits meter readings.
//! * [`center`] — the controller: collects reports, allocates, settles,
//!   bills; missing reports exclude a household, missing readings settle
//!   as cooperative.
//! * [`runtime`] — a tick-driven discrete-event loop (reproducible; the
//!   vehicle for failure-injection tests) with scheduled center crashes
//!   and a protocol event trace.
//! * [`oracle`] — protocol invariant checks (budget balance, at-most-one
//!   bill, grounded allocations, record integrity) replayed over a
//!   runtime trace under any fault schedule.
//! * [`durable`] — the durability layer: center and ingest checkpoints
//!   journaled through a checksummed write-ahead log
//!   ([`enki_durable`]), with recovery gated behind a mandatory oracle
//!   audit.
//! * [`serve_runtime`] — the center fed through the overload-safe
//!   [`enki_serve`] ingestion path: wire frames, bounded queues,
//!   backpressure, and load shedding, under the same oracle.
//! * [`threaded`] — the same protocol on real threads over crossbeam
//!   channels, as a deployment skeleton.
//! * [`decentralized`] — the §VIII extension: token-ring best-response
//!   dynamics that reach a Nash schedule with no central scheduler.
//!
//! ```
//! use enki_agents::prelude::*;
//! use enki_core::prelude::*;
//! use enki_sim::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let config = ProfileConfig::default();
//! let households: Vec<HouseholdAgent> = (0..5)
//!     .map(|i| {
//!         HouseholdAgent::new(
//!             HouseholdId::new(i),
//!             UsageProfile::generate(&mut rng, &config),
//!             TruthSource::Wide,
//!             ReportStrategy::TruthfulWide,
//!             ReportSource::Strategy,
//!         )
//!     })
//!     .collect();
//! let center = CenterAgent::new(
//!     Enki::default(),
//!     (0..5).map(HouseholdId::new).collect(),
//!     DayPlan::default(),
//!     1,
//! );
//! let network = SimNetwork::new(NetworkConfig::lossy(0.2), 1);
//! let mut runtime = Runtime::new(network, center, households);
//! runtime.run_days(1, 100);
//! assert_eq!(runtime.records().len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod center;
pub mod decentralized;
pub mod durable;
pub mod household;
pub mod message;
pub mod network;
pub mod oracle;
pub mod runtime;
pub mod serve_runtime;
pub mod threaded;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::center::{CenterAgent, CenterCheckpoint, DayPlan, DayRecord, PipelineConfig};
    pub use crate::decentralized::{run_decentralized, DecentralizedOutcome};
    pub use crate::durable::{Journal, JournalConfig, RecoveredState};
    pub use crate::household::{Backoff, HouseholdAgent, ReportSource};
    pub use crate::message::{Envelope, Message, NodeId, Tick};
    pub use crate::network::{
        FaultPlan, NetworkConfig, NetworkStats, Outage, Partition, SimNetwork, SlowLink,
    };
    pub use crate::oracle::{
        check as check_invariants, check_parts as check_invariant_parts,
        check_traced as check_invariants_traced, Violation,
    };
    pub use crate::runtime::{CrashSchedule, Runtime, TraceEvent, TraceKind};
    pub use crate::serve_runtime::{ServeCheckpoint, ServeProducer, ServeRuntime};
    pub use crate::threaded::{
        run_threaded_days, run_threaded_days_pipelined, run_threaded_days_traced, ThreadedDay,
        ThreadedFault, ThreadedHousehold,
    };
}
