//! Decentralized scheduling (the §VIII future-work extension).
//!
//! The paper closes by proposing to "investigate a decentralized
//! mechanism". This module implements the natural candidate: *token-ring
//! best-response dynamics*. There is no central scheduler — households
//! pass a token around the ring; the token holder recomputes its cheapest
//! placement against the currently announced aggregate load and broadcasts
//! its (possibly unchanged) placement to the neighborhood. Because the
//! quadratic cost is an exact potential for unilateral moves, the dynamics
//! terminate at a pure Nash equilibrium of the scheduling game — the same
//! local optima the centralized coordinate descent
//! (`enki_solver::local_search`) reaches.
//!
//! The trade-off this module makes measurable: the center's greedy needs
//! one message per household each way, while the decentralized dynamics
//! cost `O(rounds · n)` broadcasts (`O(rounds · n²)` point-to-point
//! messages) and reveal every placement to every neighbor. The protocol
//! assumes a reliable transport (announcements are state updates — a lost
//! one desynchronizes the shared view; handling that is future work here
//! too).

use enki_core::household::Preference;
use enki_core::load::LoadProfile;
use enki_core::pricing::Pricing;
use enki_core::time::Interval;
use enki_core::{Error, Result};
use serde::{Deserialize, Serialize};

/// Outcome of a decentralized scheduling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecentralizedOutcome {
    /// Final placement per household, in input order.
    pub windows: Vec<Interval>,
    /// Full token cycles until no household moved.
    pub rounds: usize,
    /// Placement changes that were actually made.
    pub moves: usize,
    /// Broadcast announcements sent (one per token visit).
    pub broadcasts: usize,
    /// Point-to-point messages those broadcasts expand to (`(n−1)` each),
    /// plus the token passes.
    pub messages: usize,
    /// Final aggregate load.
    pub load: LoadProfile,
    /// Final quadratic cost.
    pub cost: f64,
}

/// Runs token-ring best-response dynamics until convergence.
///
/// Every household starts at its preferred begin time (deferment 0),
/// matching what uncoordinated households would do. `max_rounds` bounds
/// the cycles as a safety net; the potential argument guarantees
/// convergence long before any reasonable bound.
///
/// # Errors
///
/// Returns [`Error::EmptyNeighborhood`] when `preferences` is empty.
#[must_use = "dropping the outcome discards the negotiated schedule and any protocol error"]
pub fn run_decentralized<P: Pricing + ?Sized>(
    preferences: &[Preference],
    rate: f64,
    pricing: &P,
    max_rounds: usize,
) -> Result<DecentralizedOutcome> {
    if preferences.is_empty() {
        return Err(Error::EmptyNeighborhood);
    }
    let n = preferences.len();
    let mut windows: Vec<Interval> = preferences
        .iter()
        .map(|p| p.window_at_deferment(0))
        .collect::<Result<_>>()?;
    let mut load = LoadProfile::from_windows(&windows, rate);

    let mut rounds = 0usize;
    let mut moves = 0usize;
    let mut broadcasts = 0usize;
    for _ in 0..max_rounds.max(1) {
        rounds += 1;
        let mut changed = false;
        for (i, pref) in preferences.iter().enumerate() {
            // Token arrives at household i: best-respond to everyone else.
            load.remove_window(windows[i], rate);
            let mut best = windows[i];
            let mut best_delta = f64::INFINITY;
            for w in pref.feasible_windows() {
                let delta: f64 = w
                    .slots()
                    .map(|h| {
                        let l = load.at(h);
                        pricing.hourly_cost(l + rate) - pricing.hourly_cost(l)
                    })
                    .sum();
                if delta < best_delta - 1e-12 {
                    best_delta = delta;
                    best = w;
                }
            }
            if best != windows[i] {
                changed = true;
                moves += 1;
                windows[i] = best;
            }
            load.add_window(windows[i], rate);
            // Every token visit announces the (possibly unchanged)
            // placement so neighbors keep a consistent aggregate view.
            broadcasts += 1;
        }
        if !changed {
            break;
        }
    }

    let cost = pricing.cost(&load);
    Ok(DecentralizedOutcome {
        windows,
        rounds,
        moves,
        // Each broadcast fans out to n−1 peers; each token visit is one
        // additional point-to-point pass.
        messages: broadcasts * (n.saturating_sub(1)) + broadcasts,
        broadcasts,
        load,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use enki_core::pricing::QuadraticPricing;
    use enki_solver::local_search::LocalSearch;
    use enki_solver::problem::AllocationProblem;

    fn pref(b: u8, e: u8, v: u8) -> Preference {
        Preference::new(b, e, v).unwrap()
    }

    #[test]
    fn empty_neighborhood_is_rejected() {
        let pricing = QuadraticPricing::default();
        assert!(run_decentralized(&[], 2.0, &pricing, 10).is_err());
    }

    #[test]
    fn converges_to_a_nash_equilibrium() {
        let prefs = vec![
            pref(18, 24, 2),
            pref(18, 22, 2),
            pref(17, 23, 3),
            pref(19, 24, 1),
        ];
        let pricing = QuadraticPricing::default();
        let out = run_decentralized(&prefs, 2.0, &pricing, 100).unwrap();
        // Nash check: no household can improve unilaterally.
        let mut load = out.load;
        for (i, p) in prefs.iter().enumerate() {
            load.remove_window(out.windows[i], 2.0);
            let current: f64 = out.windows[i]
                .slots()
                .map(|h| {
                    let l = load.at(h);
                    pricing.hourly_cost(l + 2.0) - pricing.hourly_cost(l)
                })
                .sum();
            for w in p.feasible_windows() {
                let alt: f64 = w
                    .slots()
                    .map(|h| {
                        let l = load.at(h);
                        pricing.hourly_cost(l + 2.0) - pricing.hourly_cost(l)
                    })
                    .sum();
                assert!(alt >= current - 1e-9, "household {i} could deviate");
            }
            load.add_window(out.windows[i], 2.0);
        }
    }

    #[test]
    fn matches_centralized_coordinate_descent() {
        // Same move set, same zero start ⇒ identical final cost.
        let prefs = vec![pref(16, 24, 2), pref(18, 22, 3), pref(17, 21, 1), pref(18, 24, 2)];
        let pricing = QuadraticPricing::default();
        let decentralized = run_decentralized(&prefs, 2.0, &pricing, 100).unwrap();
        let problem = AllocationProblem::new(prefs, 2.0, 0.3).unwrap();
        let centralized = LocalSearch::new()
            .improve(&problem, vec![0; problem.len()])
            .unwrap();
        assert!((decentralized.cost - centralized.objective).abs() < 1e-9);
    }

    #[test]
    fn windows_respect_preferences() {
        let prefs = vec![pref(18, 24, 3), pref(20, 24, 2)];
        let pricing = QuadraticPricing::default();
        let out = run_decentralized(&prefs, 2.0, &pricing, 100).unwrap();
        for (p, w) in prefs.iter().zip(&out.windows) {
            p.validate_window(*w).unwrap();
        }
    }

    #[test]
    fn message_accounting_is_consistent() {
        let prefs = vec![pref(12, 20, 2); 5];
        let pricing = QuadraticPricing::default();
        let out = run_decentralized(&prefs, 2.0, &pricing, 100).unwrap();
        assert_eq!(out.broadcasts, out.rounds * 5);
        assert_eq!(out.messages, out.broadcasts * 5);
        assert!(out.moves <= out.broadcasts);
    }

    #[test]
    fn improves_on_the_uncoordinated_start() {
        let prefs = vec![pref(18, 23, 2); 5];
        let pricing = QuadraticPricing::default();
        let naive = LoadProfile::from_windows(
            &prefs
                .iter()
                .map(|p| p.window_at_deferment(0).unwrap())
                .collect::<Vec<_>>(),
            2.0,
        );
        let out = run_decentralized(&prefs, 2.0, &pricing, 100).unwrap();
        assert!(out.cost <= pricing.cost(&naive) + 1e-9);
        assert!(out.load.peak() <= naive.peak() + 1e-9);
    }

    #[test]
    fn single_household_converges_in_one_round_of_moves() {
        let prefs = vec![pref(10, 16, 2)];
        let pricing = QuadraticPricing::default();
        let out = run_decentralized(&prefs, 2.0, &pricing, 100).unwrap();
        // Alone, every placement costs the same: it stays put and the
        // second round confirms convergence.
        assert_eq!(out.moves, 0);
        assert!(out.rounds <= 2);
    }
}
