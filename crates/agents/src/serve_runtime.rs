//! Tick-driven runtime wiring the serve-layer ingest front end to the
//! center agent.
//!
//! [`ServeRuntime`] replaces the lockstep [`Runtime`](crate::runtime)'s
//! household agents with *producers* that submit their raw reports
//! through the overload-safe ingestion path ([`enki_serve`]): encoded
//! wire frames enter a bounded queue, are shed or backpressured under
//! load, and reach the center only through the per-tick drain. The rest
//! of the day protocol is unchanged — the center allocates at the
//! report deadline, collects (cooperatively synthesized) meter
//! readings, settles, and bills.
//!
//! The runtime stays single-threaded and deterministic: same seed, same
//! schedule, byte-identical records, traces, and checkpoints. The trace
//! uses the same [`TraceEvent`] vocabulary as the lockstep runtime, so
//! [`oracle::check_parts`](crate::oracle::check_parts) verifies the
//! same invariants — *under overload, nothing the oracle checks may
//! degrade*: shedding loses participation, never money.
//!
//! **Shedding and fallbacks.** The producer's report is classified
//! [`ShedCost::Replaceable`] when the center holds a standing profile
//! for it. When such a report is shed, the drain reports the household
//! as a fallback and the runtime calls
//! [`CenterAgent::submit_standing`], so the household still
//! participates through the center's standing model (a synthetic
//! `SubmitReport` is traced, keeping the oracle's grounding invariant
//! meaningful). A shed *fresh* report excludes the household for the
//! day — exactly like a lost report in the lockstep runtime.
//!
//! **Crash and recovery.** A scheduled crash takes the center *and* the
//! co-located front end down. Both recover from durable checkpoints:
//! the center from its own phase-boundary checkpoint, the front end
//! from the snapshot taken at the end of the previous tick — so a
//! mid-batch crash loses at most one tick of queued work, and the
//! recovered RNG stream replays backpressure delays exactly.

use enki_core::household::HouseholdId;
use enki_core::mechanism::Enki;
use enki_core::validation::RawPreference;
use enki_serve::prelude::{
    encode_frame, Batch, IngestCheckpoint, IngestConfig, IngestFrontEnd, IngestStats,
    ProducerSignal, ShedCost,
};
use enki_telemetry::trace::{stage, TraceContext};
use enki_telemetry::{FieldValue, Recorder, SloMonitor, SloSample, Telemetry};
use serde::{Deserialize, Serialize};

use crate::center::{CenterAgent, CenterCheckpoint, DayPlan, DayRecord};
use crate::durable::Journal;
use crate::message::{Envelope, Message, NodeId, Tick};
use crate::runtime::{CrashSchedule, DayHealth, TraceEvent, TraceKind};

/// Ticks between a producer receiving its allocation and its meter
/// reading arriving at the center.
const READING_DELAY: Tick = 2;

/// The day a producer is currently reporting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct ProducerDay {
    day: u64,
    report_deadline: Tick,
}

/// One report producer: the serve-layer stand-in for a household ECC.
/// It submits a fixed raw preference through the wire codec each day,
/// retrying under the backpressure the front end advertises.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeProducer {
    /// The producing household.
    pub household: HouseholdId,
    /// The raw preference it reports every day.
    pub raw: RawPreference,
    /// Identical frames sent per attempt (> 1 models a flooding or
    /// stuttering reporter — the burst overload scenario).
    pub burst: u32,
    day: Option<ProducerDay>,
    next_send_at: Tick,
    attempts: u32,
    done: bool,
}

impl ServeProducer {
    /// A producer submitting `raw` once per attempt.
    #[must_use]
    pub fn new(household: HouseholdId, raw: RawPreference) -> Self {
        Self {
            household,
            raw,
            burst: 1,
            day: None,
            next_send_at: 0,
            attempts: 0,
            done: false,
        }
    }

    /// Sets the flood factor: identical frames per attempt.
    #[must_use]
    pub fn with_burst(mut self, burst: u32) -> Self {
        self.burst = burst.max(1);
        self
    }

    /// Report-send attempts made for the current day so far.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempts
    }
}

/// One message scheduled for future delivery (meter readings in
/// flight).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PendingDelivery {
    due: Tick,
    envelope: Envelope,
}

/// A complete durable snapshot of a [`ServeRuntime`]: restoring it
/// resumes the identical run — records, queue contents, RNG streams,
/// producer retry state, and in-flight readings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeCheckpoint {
    /// Simulation time at the snapshot.
    pub now: Tick,
    center: CenterCheckpoint,
    ingest: IngestCheckpoint,
    producers: Vec<ServeProducer>,
    pending: Vec<PendingDelivery>,
}

impl ServeCheckpoint {
    /// The center's durable phase-boundary portion of the snapshot.
    #[must_use]
    pub fn center(&self) -> &CenterCheckpoint {
        &self.center
    }

    /// The ingest front end's portion of the snapshot.
    #[must_use]
    pub fn ingest(&self) -> &IngestCheckpoint {
        &self.ingest
    }
}

/// The serve-layer runtime: producers → wire frames → bounded ingest →
/// center.
#[derive(Debug)]
pub struct ServeRuntime {
    center: CenterAgent,
    front: IngestFrontEnd,
    ingest_config: IngestConfig,
    producers: Vec<ServeProducer>,
    pending: Vec<PendingDelivery>,
    /// Raw frames injected from outside (tests, edge mailboxes); fed to
    /// the front end at the start of the next tick.
    injected: Vec<Vec<u8>>,
    trace: Vec<TraceEvent>,
    crashes: Vec<CrashSchedule>,
    now: Tick,
    down: bool,
    /// The front-end snapshot taken at the end of the last completed
    /// tick — what a crash recovers to.
    ingest_durable: IngestCheckpoint,
    /// Optional write-ahead journal. When attached, every center phase
    /// commit and dirty ingest snapshot is logged (append → flush)
    /// before the tick's outputs are released, and recovery replays
    /// the journal instead of trusting in-memory copies.
    journal: Option<Journal>,
    /// The center [`CenterAgent::commit_seq`] already journaled; a
    /// higher live value means a phase boundary passed this tick.
    logged_commit_seq: u64,
    /// Human-readable log of recovery-path failures (audit refusals,
    /// storage errors); queryable so chaos tests can assert on them
    /// without the runtime panicking.
    recovery_errors: Vec<String>,
    /// Telemetry handle, kept so recovery can re-wire the rebuilt front
    /// end and so postmortems can be dumped from any site.
    telemetry: Option<Telemetry>,
    /// The runtime's own recorder for producer-side spans.
    recorder: Option<Recorder>,
    /// Seed for deterministic trace contexts (the run seed).
    trace_seed: u64,
    /// Completed recovery attempts (successful or not), for the
    /// recovery-latency SLO.
    recoveries: u64,
    slo: Option<SloMonitor>,
    slo_records_seen: usize,
    slo_prev: SloPrev,
    day_health: Vec<DayHealth>,
}

/// Previous-day snapshots of the cumulative counts the serve SLOs
/// difference against.
#[derive(Debug, Clone, Copy, Default)]
struct SloPrev {
    admitted: u64,
    shed: u64,
    recoveries: u64,
    recovery_errors: u64,
}

impl ServeRuntime {
    /// Assembles a runtime over the given center. `seed` feeds the
    /// front end's backpressure-jitter RNG.
    #[must_use]
    pub fn new(center: CenterAgent, ingest_config: IngestConfig, seed: u64) -> Self {
        let front = IngestFrontEnd::new(ingest_config, seed);
        let ingest_durable = front.checkpoint();
        Self {
            center,
            front,
            ingest_config,
            producers: Vec::new(),
            pending: Vec::new(),
            injected: Vec::new(),
            trace: Vec::new(),
            crashes: Vec::new(),
            now: 0,
            down: false,
            ingest_durable,
            journal: None,
            logged_commit_seq: 0,
            recovery_errors: Vec::new(),
            telemetry: None,
            recorder: None,
            trace_seed: 0,
            recoveries: 0,
            slo: None,
            slo_records_seen: 0,
            slo_prev: SloPrev::default(),
            day_health: Vec::new(),
        }
    }

    /// Rebuilds a runtime from a [`ServeCheckpoint`] plus the static
    /// configuration, resuming exactly where the snapshot left off.
    #[must_use]
    pub fn restore(
        enki: Enki,
        roster: Vec<HouseholdId>,
        plan: DayPlan,
        ingest_config: IngestConfig,
        checkpoint: ServeCheckpoint,
    ) -> Self {
        let front = IngestFrontEnd::restore(ingest_config, checkpoint.ingest.clone());
        Self {
            center: CenterAgent::restore(enki, roster, plan, checkpoint.center),
            ingest_durable: front.checkpoint(),
            front,
            ingest_config,
            producers: checkpoint.producers,
            pending: checkpoint.pending,
            injected: Vec::new(),
            trace: Vec::new(),
            crashes: Vec::new(),
            now: checkpoint.now,
            down: false,
            journal: None,
            logged_commit_seq: 0,
            recovery_errors: Vec::new(),
            telemetry: None,
            recorder: None,
            trace_seed: 0,
            recoveries: 0,
            slo: None,
            slo_records_seen: 0,
            slo_prev: SloPrev::default(),
            day_health: Vec::new(),
        }
    }

    /// Adds a report producer.
    pub fn add_producer(&mut self, producer: ServeProducer) {
        self.producers.push(producer);
    }

    /// Schedules center (and front-end) crashes; same contract as
    /// [`Runtime::with_center_crashes`](crate::runtime::Runtime::with_center_crashes).
    ///
    /// # Panics
    ///
    /// Panics if a schedule is inverted.
    #[must_use]
    pub fn with_crashes(mut self, crashes: Vec<CrashSchedule>) -> Self {
        assert!(
            crashes.iter().all(|c| c.crash_at < c.recover_at),
            "crash schedules must recover after they crash"
        );
        self.crashes = crashes;
        self
    }

    /// Attaches telemetry: the center emits its `center.*` metrics,
    /// the front end its `serve.*` queue/shed/latency metrics, and an
    /// attached journal its `durable.*` counters, all into the same
    /// sink. Attach the journal first so it is wired too.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.center.set_recorder(telemetry.recorder());
        self.front.set_recorder(telemetry.recorder());
        if let Some(journal) = self.journal.as_mut() {
            journal.set_recorder(telemetry.recorder());
        }
        // The run seed doubles as the trace seed on every boundary, so
        // producer, queue, and center spans share one causal id space.
        let seed = telemetry.meta().seed;
        self.center.set_trace_seed(seed);
        self.front.set_trace_seed(seed);
        self.trace_seed = seed;
        self.recorder = Some(telemetry.recorder());
        self.telemetry = Some(telemetry.clone());
        self.slo = Some(SloMonitor::standard());
        self
    }

    /// Attaches a write-ahead journal. From here on, every center
    /// phase boundary (see the [`CenterCheckpoint`] commit contract)
    /// and every dirty ingest snapshot is logged append → flush before
    /// the tick's outputs are released, and [`CrashSchedule`] recovery
    /// replays the journal — through the mandatory oracle audit —
    /// instead of trusting in-memory state.
    ///
    /// Attach before the first tick: commits made while no journal is
    /// listening are not in the log, and a recovery would roll back
    /// past them.
    #[must_use]
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.logged_commit_seq = self.center.commit_seq();
        self.journal = Some(journal);
        self
    }

    /// The attached journal, if any.
    #[must_use]
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Mutable access to the attached journal (chaos tests arm
    /// fault-storage crash points through this).
    #[must_use]
    pub fn journal_mut(&mut self) -> Option<&mut Journal> {
        self.journal.as_mut()
    }

    /// Recovery-path failures so far: oracle-audit refusals and
    /// storage errors, in occurrence order. Empty in a healthy run.
    #[must_use]
    pub fn recovery_errors(&self) -> &[String] {
        &self.recovery_errors
    }

    /// Whether the runtime is currently down (a scheduled crash or a
    /// failed journal write took it out).
    #[must_use]
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Restarts a down runtime immediately. Scheduled crashes recover
    /// at their [`CrashSchedule::recover_at`] tick on their own; this
    /// is for *unplanned* crashes (a journal storage failure), where
    /// chaos tests decide when the operator brings the process back.
    pub fn recover(&mut self) {
        if self.down {
            self.recover_now();
        }
    }

    /// Queues raw wire bytes for the front end, as if a producer outside
    /// the runtime had sent them (tests inject malformed frames here;
    /// benches feed edge-mailbox drains).
    pub fn inject_frame(&mut self, bytes: Vec<u8>) {
        self.injected.push(bytes);
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Tick {
        self.now
    }

    /// The center's settled day records.
    #[must_use]
    pub fn records(&self) -> &[DayRecord] {
        self.center.records()
    }

    /// The center agent.
    #[must_use]
    pub fn center(&self) -> &CenterAgent {
        &self.center
    }

    /// The protocol event trace (always on).
    #[must_use]
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// The front end's running totals.
    #[must_use]
    pub fn ingest_stats(&self) -> IngestStats {
        self.front.stats()
    }

    /// Reports currently queued in the front end.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.front.queue_depth()
    }

    /// The producer for a household, if present.
    #[must_use]
    pub fn producer(&self, household: HouseholdId) -> Option<&ServeProducer> {
        self.producers.iter().find(|p| p.household == household)
    }

    /// Snapshots the runtime's crash-consistent state: the center's
    /// last *durable* (phase-boundary) checkpoint, the front end's live
    /// queue, and producer/in-flight state. Reports the center received
    /// since its last phase boundary are volatile — exactly what a
    /// crash would lose — so restoring mid-phase resumes the run as a
    /// recovery would, not as an uninterrupted run.
    #[must_use]
    pub fn checkpoint(&self) -> ServeCheckpoint {
        ServeCheckpoint {
            now: self.now,
            center: self.center.checkpoint().clone(),
            ingest: self.front.checkpoint(),
            producers: self.producers.clone(),
            pending: self.pending.clone(),
        }
    }

    /// Runs `ticks` simulation steps.
    pub fn run_ticks(&mut self, ticks: Tick) {
        for _ in 0..ticks {
            self.step();
        }
    }

    /// Runs whole protocol days of the given length. With telemetry
    /// attached, each completed day feeds the SLO monitor and appends a
    /// [`DayHealth`] summary.
    pub fn run_days(&mut self, days: u64, day_length: Tick) {
        for _ in 0..days {
            let day = self.now / day_length.max(1);
            self.run_ticks(day_length);
            self.observe_day_slo(day);
        }
    }

    /// SLO health summaries, one per completed day of
    /// [`run_days`](Self::run_days) with telemetry attached.
    #[must_use]
    pub fn day_health(&self) -> &[DayHealth] {
        &self.day_health
    }

    /// Feeds the day's outcomes (settlements, sheds, recoveries) to the
    /// SLO monitor, exports `slo.*` burn-rate gauges, and records the
    /// day's health summary. A day that closed without settlement
    /// counts as a deadline miss and dumps the flight recorder.
    fn observe_day_slo(&mut self, day: u64) {
        if self.slo.is_none() {
            return;
        }
        let records = self.center.records();
        let new_records = &records[self.slo_records_seen.min(records.len())..];
        let settled = new_records.iter().filter(|r| r.settlement.is_some()).count() as u64;
        let missed = new_records.len() as u64 - settled;
        let bills: u64 = new_records
            .iter()
            .filter_map(|r| r.settlement.as_ref())
            .map(|s| s.entries.len() as u64)
            .sum();
        self.slo_records_seen = records.len();
        let stats = self.front.stats();
        let shed_total = stats.shed.total();
        let admitted_delta = stats.admitted.saturating_sub(self.slo_prev.admitted);
        let shed_delta = shed_total.saturating_sub(self.slo_prev.shed);
        let recoveries_delta = self.recoveries.saturating_sub(self.slo_prev.recoveries);
        let recovery_errors_delta =
            (self.recovery_errors.len() as u64).saturating_sub(self.slo_prev.recovery_errors);
        self.slo_prev = SloPrev {
            admitted: stats.admitted,
            shed: shed_total,
            recoveries: self.recoveries,
            recovery_errors: self.recovery_errors.len() as u64,
        };
        let Some(monitor) = self.slo.as_mut() else {
            return;
        };
        monitor.record(
            "deadline_compliance",
            SloSample {
                good: settled,
                bad: missed,
            },
        );
        monitor.record("at_most_one_bill", SloSample { good: bills, bad: 0 });
        if admitted_delta + shed_delta > 0 {
            monitor.record(
                "shed_rate",
                SloSample {
                    good: admitted_delta,
                    bad: shed_delta,
                },
            );
        }
        if recoveries_delta + recovery_errors_delta > 0 {
            monitor.record(
                "recovery_latency",
                SloSample {
                    good: recoveries_delta.saturating_sub(recovery_errors_delta),
                    bad: recovery_errors_delta,
                },
            );
        }
        let statuses = monitor.evaluate();
        if let Some(r) = self.recorder.as_ref() {
            for status in &statuses {
                r.gauge(&format!("slo.{}.short_burn", status.name), status.short_burn);
                r.gauge(&format!("slo.{}.long_burn", status.name), status.long_burn);
            }
            if missed > 0 {
                let _ = r.postmortem(
                    "deadline_miss",
                    &[("day", FieldValue::U64(day)), ("missed", FieldValue::U64(missed))],
                );
            }
        }
        self.day_health.push(DayHealth { day, statuses });
    }

    fn record(&mut self, at: Tick, kind: TraceKind, envelope: Envelope) {
        self.trace.push(TraceEvent { at, kind, envelope });
    }

    fn crash_now(&mut self) {
        self.down = true;
        self.center.crash();
        // The co-located front end dies with the process: its decoder
        // buffer and post-checkpoint queue growth are gone.
        self.injected.clear();
    }

    /// Re-attaches telemetry and the trace seed to a freshly restored
    /// front end ([`IngestFrontEnd::restore`] drops both by design).
    fn rewire_front(&mut self) {
        if let Some(t) = self.telemetry.as_ref() {
            self.front.set_recorder(t.recorder());
        }
        self.front.set_trace_seed(self.trace_seed);
    }

    fn recover_now(&mut self) {
        self.down = false;
        self.recoveries += 1;
        if self.journal.is_some() {
            self.recover_from_journal();
        } else {
            self.center.recover();
            self.front =
                IngestFrontEnd::restore(self.ingest_config, self.ingest_durable.clone());
            self.rewire_front();
        }
    }

    /// Journal-backed recovery: restart the storage, replay the log,
    /// audit, adopt. A storage failure during the replay itself (a
    /// crash point placed inside recovery) is retried — each attempt
    /// restarts the backend first, exactly as rebooting again would.
    /// An audit refusal is terminal for the journaled state: it is
    /// recorded in [`ServeRuntime::recovery_errors`] and the runtime
    /// falls back to its in-memory durable copies (a deployment would
    /// page an operator rather than serve from rejected state).
    fn recover_from_journal(&mut self) {
        const MAX_RECOVERY_ATTEMPTS: u32 = 4;
        let errors_before = self.recovery_errors.len();
        let mut recovered = None;
        for _ in 0..MAX_RECOVERY_ATTEMPTS {
            let Some(journal) = self.journal.as_mut() else {
                return;
            };
            match journal.recover() {
                Ok(state) => {
                    recovered = Some(state);
                    break;
                }
                Err(e) => self
                    .recovery_errors
                    .push(format!("journal recovery failed: {e}")),
            }
        }
        match recovered {
            None => {
                // The storage never came back up; the in-memory durable
                // copies are all that is left to resume from.
                self.center.recover();
            }
            Some(state) => {
                if let Err(e) =
                    state.audit(self.center.roster(), self.center.enki().config())
                {
                    self.recovery_errors
                        .push(format!("recovered state refused: {e}"));
                    self.center.recover();
                } else {
                    match state.center {
                        Some(checkpoint) => self.center.recover_from(checkpoint),
                        None => self.center.recover(),
                    }
                    if let Some(ingest) = state.ingest {
                        self.ingest_durable = ingest;
                    }
                }
            }
        }
        self.front = IngestFrontEnd::restore(self.ingest_config, self.ingest_durable.clone());
        self.rewire_front();
        self.logged_commit_seq = self.center.commit_seq();
        if self.recovery_errors.len() > errors_before {
            self.dump_postmortem("recovery_error");
        }
    }

    /// Dumps the flight recorder with the most recent recovery error
    /// attached, if telemetry is wired.
    fn dump_postmortem(&self, trigger: &str) {
        if let Some(r) = self.recorder.as_ref() {
            let last = self.recovery_errors.last().cloned().unwrap_or_default();
            let _ = r.postmortem(trigger, &[("last_error", FieldValue::Str(last))]);
        }
    }

    /// Journals the tick's durable transitions, log → flush → apply: a
    /// center phase commit when one happened this tick, and the front
    /// end's snapshot when its durable state changed. Without a
    /// journal, the snapshots only refresh the in-memory recovery
    /// copies. Returns `false` when a journal write failed: the
    /// storage is treated as crashed and the tick's outputs must not
    /// be released.
    fn journal_commits(&mut self) -> bool {
        let center_commit = (self.journal.is_some()
            && self.center.commit_seq() != self.logged_commit_seq)
            .then(|| self.center.snapshot());
        if let (Some(snapshot), Some(journal)) = (center_commit, self.journal.as_mut()) {
            if let Err(e) = journal.log_center(&snapshot) {
                self.recovery_errors
                    .push(format!("journal center commit failed: {e}"));
                self.dump_postmortem("journal_write_failed");
                self.crash_now();
                return false;
            }
            self.logged_commit_seq = self.center.commit_seq();
        }
        if let Some(snapshot) = self.front.snapshot_if_dirty() {
            if let Some(journal) = self.journal.as_mut() {
                if let Err(e) = journal.log_ingest(&snapshot) {
                    self.recovery_errors
                        .push(format!("journal ingest commit failed: {e}"));
                    self.dump_postmortem("journal_write_failed");
                    self.crash_now();
                    return false;
                }
            }
            self.ingest_durable = snapshot;
        }
        true
    }

    fn step(&mut self) {
        let now = self.now;

        for i in 0..self.crashes.len() {
            let c = self.crashes[i];
            if c.crash_at == now {
                self.crash_now();
            }
            if c.recover_at == now {
                self.recover_now();
            }
        }

        let mut outbox: Vec<Envelope> = Vec::new();

        // Deliver in-flight messages due this tick (meter readings).
        let mut due: Vec<PendingDelivery> = Vec::new();
        self.pending.retain(|p| {
            if p.due <= now {
                due.push(*p);
                false
            } else {
                true
            }
        });
        for p in due {
            if self.down {
                self.record(now, TraceKind::LostCenterDown, p.envelope);
                continue;
            }
            self.record(now, TraceKind::Delivered, p.envelope);
            self.center
                .on_message(now, p.envelope.from, p.envelope.message, &mut outbox);
        }

        if !self.down {
            // Producers offer frames; the front end answers with
            // accept/backpressure/shed per frame.
            self.offer_producer_frames(now);
            let injected = std::mem::take(&mut self.injected);
            for bytes in injected {
                let center = &self.center;
                let _ = self.front.offer_bytes(now, &bytes, &mut |h| {
                    if center.standing_profile(h).is_some() {
                        ShedCost::Replaceable
                    } else {
                        ShedCost::Fresh
                    }
                });
            }

            // Drain toward the center: fallbacks first (a standing
            // profile is staler than any fresh report, so a real report
            // arriving the same tick overwrites it), then admissions.
            let drained = self.front.drain(now);
            for (day, household) in drained.fallbacks {
                if self.center.submit_standing(day, household) {
                    if let Some(raw) =
                        self.center.standing_profile(household).map(Into::into)
                    {
                        // Trace the substitution as a delivered report so
                        // the oracle's grounding invariant stays meaningful:
                        // the allocation this produces is grounded in the
                        // center's own standing model, deliberately.
                        self.record(
                            now,
                            TraceKind::Delivered,
                            Envelope {
                                from: NodeId::Household(household),
                                to: NodeId::Center,
                                message: Message::SubmitReport {
                                    day,
                                    preference: raw,
                                },
                                trace: Some(TraceContext::report_stage(
                                    self.trace_seed,
                                    day,
                                    u64::from(household.index()),
                                    stage::REPORT,
                                )),
                            },
                        );
                    }
                }
            }
            for q in drained.admitted {
                let envelope = Envelope {
                    from: NodeId::Household(q.report.household),
                    to: NodeId::Center,
                    message: Message::SubmitReport {
                        day: q.day,
                        preference: q.report.preference,
                    },
                    // Forward the enqueue-stage context stamped by the
                    // front end, keeping the causal chain unbroken from
                    // queue to admission.
                    trace: q.trace,
                };
                self.record(now, TraceKind::Delivered, envelope);
                self.center.on_message(
                    now,
                    envelope.from,
                    envelope.message,
                    &mut outbox,
                );
            }

            self.center.on_tick(now, &mut outbox);
            // Write-ahead barrier: the tick's commits become durable
            // before its outputs are released. A failed write crashes
            // the runtime and the unreleased outputs die with it.
            if !self.journal_commits() {
                outbox.clear();
            }
        }

        for envelope in outbox {
            self.record(now, TraceKind::Originated, envelope);
            self.route_to_producer(now, envelope);
        }

        self.now += 1;
    }

    /// Sends each due producer's frame(s) into the front end and applies
    /// the returned signals to its retry state.
    fn offer_producer_frames(&mut self, now: Tick) {
        for i in 0..self.producers.len() {
            let p = &self.producers[i];
            let Some(day) = p.day else { continue };
            if p.done || now < p.next_send_at || now > day.report_deadline {
                continue;
            }
            let batch = Batch {
                day: day.day,
                deadline: day.report_deadline,
                reports: vec![enki_core::validation::RawReport::new(
                    p.household, p.raw,
                )],
            };
            let Ok(frame) = encode_frame(&batch) else {
                continue;
            };
            // One point span per send attempt at the `report` stage of
            // the household's causal chain.
            if let Some(r) = self.recorder.as_ref() {
                let ctx = TraceContext::report_stage(
                    self.trace_seed,
                    day.day,
                    u64::from(p.household.index()),
                    stage::REPORT,
                );
                drop(r.span_with_trace("producer.report", ctx));
            }
            let burst = p.burst;
            let mut accepted = false;
            let mut retry_after = None;
            let mut shed = false;
            for _ in 0..burst {
                let center = &self.center;
                let signals = self.front.offer_bytes(now, &frame, &mut |h| {
                    if center.standing_profile(h).is_some() {
                        ShedCost::Replaceable
                    } else {
                        ShedCost::Fresh
                    }
                });
                for signal in signals {
                    match signal {
                        ProducerSignal::Accepted { .. } => accepted = true,
                        ProducerSignal::Backpressure { retry_after: t } => {
                            retry_after = Some(t);
                        }
                        ProducerSignal::Shed { .. } => shed = true,
                    }
                }
            }
            let p = &mut self.producers[i];
            if accepted {
                // In the queue; the drain (or a replaceable-shed
                // fallback) takes it from here.
                p.done = true;
            } else if let Some(t) = retry_after {
                p.attempts = p.attempts.saturating_add(1);
                p.next_send_at = now.saturating_add(t.max(1));
            } else if shed {
                // Stale or deadline-risk: retrying this tick cannot
                // help, and the fallback path owns replaceable work.
                p.done = true;
            }
        }
    }

    /// Applies a center-originated envelope to its producer: `DayStart`
    /// opens a new reporting day, `Allocation` schedules the cooperative
    /// meter reading, `Bill` needs no action (it is in the trace, which
    /// is what the oracle audits).
    fn route_to_producer(&mut self, now: Tick, envelope: Envelope) {
        let NodeId::Household(household) = envelope.to else {
            return;
        };
        let Some(p) = self
            .producers
            .iter_mut()
            .find(|p| p.household == household)
        else {
            return;
        };
        match envelope.message {
            // Idempotent: a rebroadcast for the day in progress must
            // not reset retry state.
            Message::DayStart {
                day,
                report_deadline,
                ..
            } if p.day.map(|d| d.day) != Some(day) => {
                p.day = Some(ProducerDay {
                    day,
                    report_deadline,
                });
                p.done = false;
                p.attempts = 0;
                p.next_send_at = now.saturating_add(1);
            }
            Message::Allocation { day, window } => {
                // Cooperative consumption: the reading mirrors the
                // allocated window, arriving after a short flight.
                self.pending.push(PendingDelivery {
                    due: now + READING_DELAY,
                    envelope: Envelope {
                        from: NodeId::Household(household),
                        to: NodeId::Center,
                        message: Message::MeterReading { day, window },
                        trace: Some(
                            TraceContext::day_root(self.trace_seed, day)
                                .child_salted("meter", u64::from(household.index())),
                        ),
                    },
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enki_core::config::EnkiConfig;
    use enki_serve::prelude::Backoff;

    fn center(n: u32, seed: u64) -> CenterAgent {
        CenterAgent::new(
            Enki::new(EnkiConfig::default()),
            (0..n).map(HouseholdId::new).collect(),
            DayPlan::default(),
            seed,
        )
    }

    fn runtime(n: u32, config: IngestConfig, seed: u64) -> ServeRuntime {
        let mut rt = ServeRuntime::new(center(n, seed), config, seed);
        for i in 0..n {
            rt.add_producer(ServeProducer::new(
                HouseholdId::new(i),
                RawPreference::new(f64::from(16 + (i % 6)), 23.0, 2.0),
            ));
        }
        rt
    }

    #[test]
    fn uncontended_day_settles_every_producer() {
        let mut rt = runtime(8, IngestConfig::default(), 1);
        rt.run_days(1, 100);
        let records = rt.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].participants.len(), 8);
        assert!(records[0].settlement.is_some());
        assert_eq!(rt.ingest_stats().admitted, 8);
        assert_eq!(rt.ingest_stats().shed.total(), 0);
    }

    #[test]
    fn backpressured_producers_retry_and_settle() {
        // A queue of 2 and a drain of 1 forces most of the 6 producers
        // through at least one backpressure round trip.
        let config = IngestConfig {
            queue_capacity: 2,
            drain_per_tick: 1,
            backoff: Backoff::new(1, 4),
        };
        let mut rt = runtime(6, config, 3);
        rt.run_days(1, 100);
        let records = rt.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].participants.len(), 6, "everyone got through");
        assert!(rt.ingest_stats().deferred > 0, "backpressure actually hit");
        let retried = (0..6u32)
            .filter(|&i| rt.producer(HouseholdId::new(i)).unwrap().attempts() > 0)
            .count();
        assert!(retried > 0, "some producer retried");
    }

    #[test]
    fn runs_are_reproducible() {
        let run = |seed: u64| {
            let config = IngestConfig {
                queue_capacity: 3,
                drain_per_tick: 1,
                backoff: Backoff::new(1, 8),
            };
            let mut rt = runtime(6, config, seed);
            rt.run_days(2, 100);
            (
                format!("{:?}", rt.records()),
                format!("{:?}", rt.trace()),
                format!("{:?}", rt.ingest_stats()),
            )
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn checkpoint_roundtrips_through_serde_and_resumes() {
        let config = IngestConfig {
            queue_capacity: 4,
            drain_per_tick: 2,
            backoff: Backoff::new(1, 6),
        };
        let mut rt = runtime(5, config, 9);
        // Tick 85 is quiescent: day 0 settled (and committed) at 70, day
        // 1 has not started, nothing is in flight — so the durable view
        // in the snapshot equals the live state.
        rt.run_ticks(85);
        let snapshot = rt.checkpoint();
        let json = serde_json::to_string(&snapshot).unwrap();
        let back: ServeCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snapshot);

        let mut resumed = ServeRuntime::restore(
            Enki::new(EnkiConfig::default()),
            (0..5).map(HouseholdId::new).collect(),
            DayPlan::default(),
            config,
            back,
        );
        rt.run_ticks(215);
        resumed.run_ticks(215);
        assert_eq!(rt.records(), resumed.records());
        assert_eq!(rt.records().len(), 3, "three days settled");
        assert_eq!(rt.ingest_stats(), resumed.ingest_stats());
    }
}
