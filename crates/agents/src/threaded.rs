//! A multithreaded deployment skeleton: one OS thread per household ECC,
//! reliable crossbeam channels as the transport.
//!
//! The tick-driven [`Runtime`](crate::runtime::Runtime) is the tool for
//! studying protocol behaviour under loss and latency; this module shows
//! the same day protocol running concurrently the way a real deployment
//! would — agents block on their sockets and react to messages. Reports
//! are sorted by household id before allocation and the center's RNG is
//! seeded, so the settled outcome is independent of thread scheduling.
//!
//! **Degradation.** A household that stops answering (see
//! [`ThreadedFault`]) does not abort the run: the center waits out the
//! phase timeout, excludes silent households from the day (missing
//! report) or settles them as cooperative (missing reading), and settles
//! everyone else — mirroring the tick-driven center's behaviour under
//! message loss. Only a day in which *no* household reports fails, with
//! [`enki_core::Error::Timeout`] naming a silent household and the
//! phase.

use std::collections::BTreeMap;
use std::thread;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use enki_core::household::{HouseholdId, Report};
use enki_telemetry::Telemetry;
use enki_core::mechanism::{Enki, Settlement};
use enki_core::time::Interval;
use enki_core::validation::{RawPreference, RawReport};
use enki_sim::behavior::{consume, ReportStrategy};
use enki_sim::neighborhood::TruthSource;
use enki_sim::profile::UsageProfile;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::center::PipelineConfig;
use crate::message::Message;

/// An injected failure mode for one threaded household.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThreadedFault {
    /// Healthy: answers every phase.
    #[default]
    None,
    /// Down for the whole run: answers nothing, as if the ECC process
    /// never started.
    Silent,
    /// Crashes after submitting its report: never consumes, never sends
    /// a meter reading, never records a bill.
    CrashAfterReport,
}

/// Specification of one threaded household.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedHousehold {
    /// Household id.
    pub id: HouseholdId,
    /// Usage profile.
    pub profile: UsageProfile,
    /// Which interval is the truth.
    pub truth_source: TruthSource,
    /// Reporting behaviour.
    pub strategy: ReportStrategy,
    /// Injected failure mode.
    pub fault: ThreadedFault,
}

/// The outcome of a threaded day: the settlement plus each household's
/// received bill and any households the center had to work around.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedDay {
    /// Day number.
    pub day: u64,
    /// The center's settlement.
    pub settlement: Settlement,
    /// `(household, amount)` bills as received by the household threads.
    pub bills: Vec<(HouseholdId, f64)>,
    /// Households whose reports never arrived; excluded from the day.
    pub missing_reports: Vec<HouseholdId>,
    /// Participants whose meter readings never arrived; settled as
    /// cooperative.
    pub missing_readings: Vec<HouseholdId>,
    /// Households whose reports admission control quarantined; excluded
    /// from the day (the threaded skeleton keeps no standing profiles).
    pub quarantined: Vec<HouseholdId>,
}

/// Runs `days` protocol days with one thread per household.
///
/// Each phase waits at most `timeout` after the last arrival. Households
/// that miss the report phase are excluded from the day; participants
/// that miss the reading phase are settled as cooperative.
///
/// # Errors
///
/// Returns [`enki_core::Error::EmptyNeighborhood`] for an empty roster
/// and propagates mechanism errors. A day in which no household reports
/// at all fails with [`enki_core::Error::Timeout`] naming a silent
/// household and the `"report"` phase — with reliable channels total
/// silence means the deployment is dead, not degraded.
#[must_use = "dropping the outcome discards every simulated day and any deployment fault"]
pub fn run_threaded_days(
    enki: Enki,
    households: Vec<ThreadedHousehold>,
    days: u64,
    seed: u64,
    timeout: Duration,
) -> enki_core::Result<Vec<ThreadedDay>> {
    run_threaded_days_traced(enki, households, days, seed, timeout, None)
}

/// Like [`run_threaded_days`], but records telemetry: each household
/// thread gets its own recorder and opens a `threaded.household` span
/// (with nested `threaded.report` / `threaded.consume` spans per phase),
/// while the center thread wraps each day in a `threaded.day` span and
/// counts reports, readings, and bills. Per-thread buffers flush into
/// the shared sink when the threads exit, so this is safe to call from
/// any number of concurrent deployments.
///
/// # Errors
///
/// Same contract as [`run_threaded_days`].
#[must_use = "dropping the outcome discards every simulated day and any deployment fault"]
pub fn run_threaded_days_traced(
    enki: Enki,
    households: Vec<ThreadedHousehold>,
    days: u64,
    seed: u64,
    timeout: Duration,
    telemetry: Option<&Telemetry>,
) -> enki_core::Result<Vec<ThreadedDay>> {
    run_threaded_days_pipelined(enki, households, days, seed, timeout, telemetry, None)
}

/// Like [`run_threaded_days_traced`], but refines each day's greedy
/// allocation through the anytime solver pipeline (see
/// [`PipelineConfig`]).
///
/// **Thread-budget split.** The deployment already occupies one OS thread
/// per household plus the center's, so the solver cannot assume it owns
/// the machine: the configured budget is clamped to the spare hardware
/// parallelism via [`PipelineConfig::split_for`] (never below the
/// two-thread racing portfolio). Because the parallel solver is
/// bit-identical at every thread count, the split changes scheduling
/// pressure only — the settled outcome is the same on a laptop and a
/// 64-core server.
///
/// # Errors
///
/// Same contract as [`run_threaded_days`]; a pipeline failure degrades to
/// the greedy allocation rather than failing the day.
#[must_use = "dropping the outcome discards every simulated day and any deployment fault"]
pub fn run_threaded_days_pipelined(
    enki: Enki,
    households: Vec<ThreadedHousehold>,
    days: u64,
    seed: u64,
    timeout: Duration,
    telemetry: Option<&Telemetry>,
    pipeline: Option<PipelineConfig>,
) -> enki_core::Result<Vec<ThreadedDay>> {
    if households.is_empty() {
        return Err(enki_core::Error::EmptyNeighborhood);
    }
    // One thread per household plus the center thread are already spoken
    // for; the solver races on whatever the machine has left.
    let pipeline = pipeline.map(|cfg| cfg.split_for(households.len() + 1));

    // Transport: one inbox per household, one shared inbox for the center.
    let (to_center, center_inbox) = unbounded::<(HouseholdId, Message)>();
    let mut to_household: Vec<Sender<Message>> = Vec::new();
    let mut household_inboxes: Vec<Receiver<Message>> = Vec::new();
    for _ in &households {
        let (tx, rx) = unbounded::<Message>();
        to_household.push(tx);
        household_inboxes.push(rx);
    }

    let bills: Mutex<Vec<(HouseholdId, f64)>> = Mutex::new(Vec::new());
    let result: Mutex<enki_core::Result<Vec<ThreadedDay>>> = Mutex::new(Ok(Vec::new()));

    thread::scope(|scope| {
        // Household threads: react to whatever the center sends.
        for (spec, inbox) in households.iter().zip(household_inboxes) {
            let to_center = to_center.clone();
            let bills = &bills;
            // Each thread owns its recorder; buffers flush to the shared
            // sink when the recorder drops at thread exit.
            let recorder = telemetry.map(Telemetry::recorder);
            scope.spawn(move || {
                if spec.fault == ThreadedFault::Silent {
                    return; // the ECC process never came up
                }
                let thread_span = recorder.as_ref().map(|r| {
                    let mut s = r.span("threaded.household");
                    s.record("household", u64::from(spec.id.index()));
                    s
                });
                let truth = match spec.truth_source {
                    TruthSource::Wide => spec.profile.wide(),
                    TruthSource::Narrow => spec.profile.narrow(),
                };
                while let Ok(message) = inbox.recv() {
                    match message {
                        Message::DayStart { day, .. } => {
                            let phase = recorder.as_ref().map(|r| {
                                let mut s = r.span("threaded.report");
                                s.record("day", day);
                                s
                            });
                            let _ = to_center.send((
                                spec.id,
                                Message::SubmitReport {
                                    day,
                                    preference: spec.strategy.report(&spec.profile).into(),
                                },
                            ));
                            drop(phase);
                            if spec.fault == ThreadedFault::CrashAfterReport {
                                return; // died between reporting and consuming
                            }
                        }
                        Message::Allocation { day, window } => {
                            let phase = recorder.as_ref().map(|r| {
                                let mut s = r.span("threaded.consume");
                                s.record("day", day);
                                s
                            });
                            let realized: Interval = consume(&truth, window);
                            let _ = to_center.send((
                                spec.id,
                                Message::MeterReading {
                                    day,
                                    window: realized,
                                },
                            ));
                            drop(phase);
                        }
                        Message::Bill { amount, .. } => {
                            if let Some(r) = recorder.as_ref() {
                                r.incr("threaded.bills.received", 1);
                            }
                            bills.lock().push((spec.id, amount));
                        }
                        _ => {}
                    }
                }
                drop(thread_span);
            });
        }
        drop(to_center); // the center holds no sender to itself

        // Center: drives the day protocol synchronously. The closure
        // exists so `?` can be used without poisoning the thread scope.
        let center_recorder = telemetry.map(Telemetry::recorder);
        let run_center = || -> enki_core::Result<Vec<ThreadedDay>> {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut outcome = Vec::new();
            let roster: Vec<HouseholdId> = households.iter().map(|h| h.id).collect();
            for day in 0..days {
                let mut day_span = center_recorder.as_ref().map(|r| {
                    let mut s = r.span("threaded.day");
                    s.record("day", day);
                    s
                });
                for tx in &to_household {
                    let _ = tx.send(Message::DayStart {
                        day,
                        report_deadline: 0,
                        meter_deadline: 0,
                    });
                }
                // Collect reports until everyone answered or the phase
                // timeout fires; a BTreeMap keyed by household id makes
                // the result deterministic regardless of arrival order.
                let mut report_map: BTreeMap<HouseholdId, RawPreference> = BTreeMap::new();
                while report_map.len() < roster.len() {
                    match center_inbox.recv_timeout(timeout) {
                        Ok((household, Message::SubmitReport { day: d, preference }))
                            if d == day && roster.contains(&household) =>
                        {
                            report_map.insert(household, preference);
                        }
                        Ok(_) => {}
                        Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                            break; // degrade: proceed without the silent ones
                        }
                    }
                }
                let missing_reports: Vec<HouseholdId> = roster
                    .iter()
                    .copied()
                    .filter(|h| !report_map.contains_key(h))
                    .collect();
                if report_map.is_empty() {
                    return Err(enki_core::Error::Timeout {
                        household: missing_reports[0],
                        phase: "report",
                    });
                }
                // Off the wire, reports are untrusted floats: classify
                // the batch before any of it can reach the mechanism.
                let raw: Vec<RawReport> = report_map
                    .iter()
                    .map(|(&h, &p)| RawReport::new(h, p))
                    .collect();
                let admission = enki.admit(&raw);
                let quarantined: Vec<HouseholdId> =
                    admission.quarantined().map(|e| e.household).collect();
                let reports: Vec<Report> = admission.admitted();
                if reports.is_empty() {
                    return Err(enki_core::Error::Timeout {
                        household: quarantined[0],
                        phase: "report",
                    });
                }
                let allocation = enki.allocate(&reports, &mut rng)?;
                // Refinement draws its seed from the same deterministic
                // stream as the greedy allocation, so the settled outcome
                // is reproducible across runs and thread schedules.
                let allocation = match pipeline {
                    Some(cfg) => cfg.refine(
                        &enki,
                        &reports,
                        allocation,
                        rng.random(),
                        center_recorder.as_ref(),
                    ),
                    None => allocation,
                };
                for (report, assignment) in reports.iter().zip(&allocation.assignments) {
                    let Some(idx) = households.iter().position(|h| h.id == report.household)
                    else {
                        continue;
                    };
                    let _ = to_household[idx].send(Message::Allocation {
                        day,
                        window: assignment.window,
                    });
                }
                // Collect readings from the participants, degrading the
                // same way on timeout.
                let mut readings: BTreeMap<HouseholdId, Interval> = BTreeMap::new();
                while readings.len() < reports.len() {
                    match center_inbox.recv_timeout(timeout) {
                        Ok((household, Message::MeterReading { day: d, window }))
                            if d == day
                                && reports.iter().any(|r| r.household == household) =>
                        {
                            readings.insert(household, window);
                        }
                        Ok(_) => {}
                        Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                            break; // degrade: settle the silent as cooperative
                        }
                    }
                }
                let mut missing_readings: Vec<HouseholdId> = Vec::new();
                let consumption: Vec<Interval> = reports
                    .iter()
                    .zip(&allocation.assignments)
                    .map(|(r, a)| match readings.get(&r.household) {
                        Some(&w) => w,
                        None => {
                            missing_readings.push(r.household);
                            a.window // smart-meter fallback: cooperative
                        }
                    })
                    .collect();
                let settlement = enki.settle(&reports, &allocation, &consumption)?;
                for entry in &settlement.entries {
                    let Some(idx) = households.iter().position(|h| h.id == entry.household)
                    else {
                        continue;
                    };
                    let _ = to_household[idx].send(Message::Bill {
                        day,
                        amount: entry.payment,
                    });
                }
                if let Some(r) = center_recorder.as_ref() {
                    r.incr("threaded.reports.received", report_map.len() as u64);
                    r.incr("threaded.readings.received", readings.len() as u64);
                    r.incr("threaded.bills.sent", settlement.entries.len() as u64);
                }
                if let Some(s) = day_span.as_mut() {
                    s.record("participants", reports.len());
                    s.record("missing_reports", missing_reports.len());
                    s.record("missing_readings", missing_readings.len());
                    s.record("quarantined", quarantined.len());
                }
                outcome.push(ThreadedDay {
                    day,
                    settlement,
                    bills: Vec::new(),
                    missing_reports,
                    missing_readings,
                    quarantined,
                });
            }
            Ok(outcome)
        };
        #[allow(clippy::redundant_closure_call)]
        {
            *result.lock() = run_center();
        }
        drop(to_household); // hang up: household threads exit their loops
    });

    let mut days_out = result.into_inner()?;
    // Attach the bills each household thread recorded.
    let mut bills = bills.into_inner();
    bills.sort_by_key(|&(h, _)| h);
    for day in &mut days_out {
        day.bills = bills.clone();
    }
    Ok(days_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use enki_core::config::EnkiConfig;
    use enki_core::household::Preference;
    use enki_sim::profile::ProfileConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn specs(n: u32, seed: u64) -> Vec<ThreadedHousehold> {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = ProfileConfig::default();
        (0..n)
            .map(|i| ThreadedHousehold {
                id: HouseholdId::new(i),
                profile: UsageProfile::generate(&mut rng, &config),
                truth_source: TruthSource::Wide,
                strategy: ReportStrategy::TruthfulWide,
                fault: ThreadedFault::None,
            })
            .collect()
    }

    #[test]
    fn threaded_day_settles_and_balances() {
        let days = run_threaded_days(
            Enki::new(EnkiConfig::default()),
            specs(6, 1),
            1,
            1,
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(days.len(), 1);
        let st = &days[0].settlement;
        assert_eq!(st.entries.len(), 6);
        assert!(st.center_utility >= 0.0);
        assert!(st.entries.iter().all(|e| !e.defected));
        assert!(days[0].missing_reports.is_empty());
        assert!(days[0].missing_readings.is_empty());
    }

    #[test]
    fn threaded_outcome_matches_direct_mechanism() {
        // Same seed, same reports ⇒ the threaded settlement equals a
        // direct (single-threaded) invocation of the mechanism.
        let households = specs(5, 2);
        let enki = Enki::new(EnkiConfig::default());
        let threaded = run_threaded_days(enki, households.clone(), 1, 9, Duration::from_secs(5))
            .unwrap();

        let reports: Vec<Report> = households
            .iter()
            .map(|h| Report::new(h.id, h.strategy.report(&h.profile)))
            .collect();
        let mut rng = StdRng::seed_from_u64(9);
        let outcome = enki.allocate(&reports, &mut rng).unwrap();
        let consumption: Vec<Interval> =
            outcome.assignments.iter().map(|a| a.window).collect();
        let direct = enki.settle(&reports, &outcome, &consumption).unwrap();
        assert_eq!(threaded[0].settlement, direct);
    }

    #[test]
    fn bills_reach_every_household_thread() {
        let days = run_threaded_days(
            Enki::new(EnkiConfig::default()),
            specs(4, 3),
            2,
            3,
            Duration::from_secs(5),
        )
        .unwrap();
        // Two days × four households = eight bills recorded in total.
        assert_eq!(days.last().unwrap().bills.len(), 8);
    }

    #[test]
    fn narrow_truth_households_can_defect_threaded() {
        let mut specs = specs(4, 4);
        for (i, s) in specs.iter_mut().enumerate() {
            s.truth_source = TruthSource::Narrow;
            if i == 0 {
                // Household 0 misreports a window disjoint from its truth.
                let t = s.profile.narrow();
                let begin = if t.begin() >= 4 { t.begin() - 4 } else { t.end() };
                s.strategy = ReportStrategy::Fixed(
                    Preference::new(
                        begin.min(24 - t.duration()),
                        (begin.min(24 - t.duration()) + t.duration()).min(24),
                        t.duration(),
                    )
                    .unwrap(),
                );
            } else {
                s.strategy = ReportStrategy::TruthfulNarrow;
            }
        }
        let days = run_threaded_days(
            Enki::new(EnkiConfig::default()),
            specs,
            1,
            4,
            Duration::from_secs(5),
        )
        .unwrap();
        let st = &days[0].settlement;
        assert!(st.center_utility >= -1e-9, "budget balance survives defection");
    }

    #[test]
    fn traced_run_nests_phase_spans_under_each_household_thread() {
        use enki_telemetry::{to_jsonl, validate_jsonl, FieldValue, Telemetry};
        let telemetry = Telemetry::new("threaded-test", 11);
        let days = run_threaded_days_traced(
            Enki::new(EnkiConfig::default()),
            specs(4, 11),
            2,
            11,
            Duration::from_secs(5),
            Some(&telemetry),
        )
        .unwrap();
        assert_eq!(days.len(), 2);

        let spans = telemetry.spans();
        let household_ids: Vec<u64> = spans
            .iter()
            .filter(|s| s.name == "threaded.household")
            .map(|s| s.id)
            .collect();
        assert_eq!(household_ids.len(), 4, "one root span per household thread");

        // Every per-phase span nests under exactly one household root,
        // even though four recorders ran concurrently on four threads.
        let phases: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "threaded.report" || s.name == "threaded.consume")
            .collect();
        assert_eq!(phases.len(), 4 * 2 * 2, "report + consume, per household, per day");
        for phase in &phases {
            let parent = phase.parent.expect("phase spans have a parent");
            assert!(
                household_ids.contains(&parent),
                "{} span {} nests under a household root",
                phase.name,
                phase.id
            );
            assert!(phase.end_ns >= phase.start_ns);
        }

        // The center's day spans are roots with the day number recorded.
        let day_spans: Vec<_> = spans.iter().filter(|s| s.name == "threaded.day").collect();
        assert_eq!(day_spans.len(), 2);
        for (i, s) in day_spans.iter().enumerate() {
            assert_eq!(s.parent, None);
            assert_eq!(s.fields[0], ("day".to_string(), FieldValue::U64(i as u64)));
        }

        assert_eq!(telemetry.counter("threaded.reports.received"), Some(8));
        assert_eq!(telemetry.counter("threaded.bills.sent"), Some(8));
        assert_eq!(telemetry.counter("threaded.bills.received"), Some(8));

        validate_jsonl(&to_jsonl(&telemetry)).expect("threaded trace self-validates");
    }

    #[test]
    fn pipelined_deployment_is_schedule_independent() {
        // The racing pipeline runs real solver threads inside a
        // deployment that already has one thread per household; the
        // settled outcome must not depend on how the OS interleaves any
        // of them, and the refined schedule can only be cheaper than the
        // greedy one it started from.
        let run = || {
            run_threaded_days_pipelined(
                Enki::new(EnkiConfig::default()),
                specs(6, 12),
                2,
                12,
                Duration::from_secs(5),
                None,
                Some(PipelineConfig::default()),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "pipelined threaded runs must be reproducible");
        for day in &a {
            assert_eq!(day.settlement.entries.len(), 6);
            assert!(day.settlement.center_utility >= -1e-9);
        }

        // Same deployment without refinement: the greedy planned cost is
        // never beaten by the refined one (the pipeline only replaces the
        // greedy windows when strictly cheaper).
        let greedy = run_threaded_days(
            Enki::new(EnkiConfig::default()),
            specs(6, 12),
            2,
            12,
            Duration::from_secs(5),
        )
        .unwrap();
        for (refined, plain) in a.iter().zip(&greedy) {
            assert!(
                refined.settlement.total_cost <= plain.settlement.total_cost + 1e-9,
                "refinement must not worsen the realized neighborhood cost"
            );
        }
    }

    #[test]
    fn empty_roster_is_rejected() {
        assert!(run_threaded_days(
            Enki::default(),
            vec![],
            1,
            0,
            Duration::from_millis(10)
        )
        .is_err());
    }

    #[test]
    fn silent_household_is_excluded_not_fatal() {
        let mut specs = specs(5, 6);
        specs[2].fault = ThreadedFault::Silent;
        let days = run_threaded_days(
            Enki::new(EnkiConfig::default()),
            specs,
            2,
            6,
            Duration::from_millis(200),
        )
        .unwrap();
        assert_eq!(days.len(), 2);
        for day in &days {
            assert_eq!(day.missing_reports, vec![HouseholdId::new(2)]);
            assert_eq!(day.settlement.entries.len(), 4);
            assert!(day
                .settlement
                .entries
                .iter()
                .all(|e| e.household != HouseholdId::new(2)));
            assert!(day.settlement.center_utility >= -1e-9);
        }
        // The silent household never recorded a bill.
        assert!(days[0].bills.iter().all(|&(h, _)| h != HouseholdId::new(2)));
        assert_eq!(days.last().unwrap().bills.len(), 8); // 2 days × 4 live
    }

    #[test]
    fn crash_after_report_settles_as_cooperative() {
        let mut specs = specs(4, 7);
        specs[1].fault = ThreadedFault::CrashAfterReport;
        let days = run_threaded_days(
            Enki::new(EnkiConfig::default()),
            specs,
            1,
            7,
            Duration::from_millis(200),
        )
        .unwrap();
        let day = &days[0];
        assert!(day.missing_reports.is_empty(), "it did report");
        assert_eq!(day.missing_readings, vec![HouseholdId::new(1)]);
        let entry = day
            .settlement
            .entries
            .iter()
            .find(|e| e.household == HouseholdId::new(1))
            .unwrap();
        assert!(!entry.defected, "a lost reading is not a defection");
        assert!(day.settlement.center_utility >= -1e-9);
    }

    #[test]
    fn all_silent_fails_with_a_timeout_error() {
        let mut specs = specs(3, 8);
        for s in &mut specs {
            s.fault = ThreadedFault::Silent;
        }
        let err = run_threaded_days(
            Enki::new(EnkiConfig::default()),
            specs,
            1,
            8,
            Duration::from_millis(100),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                enki_core::Error::Timeout {
                    phase: "report",
                    ..
                }
            ),
            "expected a report-phase timeout, got {err:?}"
        );
    }
}
