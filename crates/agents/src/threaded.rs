//! A multithreaded deployment skeleton: one OS thread per household ECC,
//! reliable crossbeam channels as the transport.
//!
//! The tick-driven [`Runtime`](crate::runtime::Runtime) is the tool for
//! studying protocol behaviour under loss and latency; this module shows
//! the same day protocol running concurrently the way a real deployment
//! would — agents block on their sockets and react to messages. Reports
//! are sorted by household id before allocation and the center's RNG is
//! seeded, so the settled outcome is independent of thread scheduling.

use std::thread;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use enki_core::household::{HouseholdId, Report};
use enki_core::mechanism::{Enki, Settlement};
use enki_core::time::Interval;
use enki_sim::behavior::{consume, ReportStrategy};
use enki_sim::neighborhood::TruthSource;
use enki_sim::profile::UsageProfile;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::message::Message;

/// Specification of one threaded household.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedHousehold {
    /// Household id.
    pub id: HouseholdId,
    /// Usage profile.
    pub profile: UsageProfile,
    /// Which interval is the truth.
    pub truth_source: TruthSource,
    /// Reporting behaviour.
    pub strategy: ReportStrategy,
}

/// The outcome of a threaded day: the settlement plus each household's
/// received bill.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedDay {
    /// Day number.
    pub day: u64,
    /// The center's settlement.
    pub settlement: Settlement,
    /// `(household, amount)` bills as received by the household threads.
    pub bills: Vec<(HouseholdId, f64)>,
}

/// Runs `days` protocol days with one thread per household.
///
/// # Errors
///
/// Returns [`enki_core::Error::EmptyNeighborhood`] for an empty roster and
/// propagates mechanism errors. A household thread that fails to answer
/// within `timeout` aborts the run with [`enki_core::Error::UnknownHousehold`]
/// (channels are reliable, so this indicates a bug rather than loss).
pub fn run_threaded_days(
    enki: Enki,
    households: Vec<ThreadedHousehold>,
    days: u64,
    seed: u64,
    timeout: Duration,
) -> enki_core::Result<Vec<ThreadedDay>> {
    if households.is_empty() {
        return Err(enki_core::Error::EmptyNeighborhood);
    }

    // Transport: one inbox per household, one shared inbox for the center.
    let (to_center, center_inbox) = unbounded::<(HouseholdId, Message)>();
    let mut to_household: Vec<Sender<Message>> = Vec::new();
    let mut household_inboxes: Vec<Receiver<Message>> = Vec::new();
    for _ in &households {
        let (tx, rx) = unbounded::<Message>();
        to_household.push(tx);
        household_inboxes.push(rx);
    }

    let bills: Mutex<Vec<(HouseholdId, f64)>> = Mutex::new(Vec::new());
    let result: Mutex<enki_core::Result<Vec<ThreadedDay>>> = Mutex::new(Ok(Vec::new()));

    thread::scope(|scope| {
        // Household threads: react to whatever the center sends.
        for (spec, inbox) in households.iter().zip(household_inboxes) {
            let to_center = to_center.clone();
            let bills = &bills;
            scope.spawn(move || {
                let truth = match spec.truth_source {
                    TruthSource::Wide => spec.profile.wide(),
                    TruthSource::Narrow => spec.profile.narrow(),
                };
                while let Ok(message) = inbox.recv() {
                    match message {
                        Message::DayStart { day, .. } => {
                            let _ = to_center.send((
                                spec.id,
                                Message::SubmitReport {
                                    day,
                                    preference: spec.strategy.report(&spec.profile),
                                },
                            ));
                        }
                        Message::Allocation { day, window } => {
                            let realized: Interval = consume(&truth, window);
                            let _ = to_center.send((
                                spec.id,
                                Message::MeterReading {
                                    day,
                                    window: realized,
                                },
                            ));
                        }
                        Message::Bill { amount, .. } => {
                            bills.lock().push((spec.id, amount));
                        }
                        _ => {}
                    }
                }
            });
        }
        drop(to_center); // the center holds no sender to itself

        // Center: drives the day protocol synchronously. The closure
        // exists so `?` can be used without poisoning the thread scope.
        let run_center = || -> enki_core::Result<Vec<ThreadedDay>> {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut outcome = Vec::new();
            for day in 0..days {
                for tx in &to_household {
                    let _ = tx.send(Message::DayStart {
                        day,
                        report_deadline: 0,
                        meter_deadline: 0,
                    });
                }
                // Collect one report per household.
                let mut reports: Vec<Report> = Vec::with_capacity(households.len());
                while reports.len() < households.len() {
                    match center_inbox.recv_timeout(timeout) {
                        Ok((household, Message::SubmitReport { day: d, preference }))
                            if d == day =>
                        {
                            reports.push(Report::new(household, preference));
                        }
                        Ok(_) => {}
                        Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                            return Err(enki_core::Error::UnknownHousehold(
                                HouseholdId::new(reports.len() as u32),
                            ));
                        }
                    }
                }
                // Deterministic regardless of arrival order.
                reports.sort_by_key(|r| r.household);
                let allocation = enki.allocate(&reports, &mut rng)?;
                for (report, assignment) in reports.iter().zip(&allocation.assignments) {
                    let idx = households
                        .iter()
                        .position(|h| h.id == report.household)
                        .expect("report came from a known household");
                    let _ = to_household[idx].send(Message::Allocation {
                        day,
                        window: assignment.window,
                    });
                }
                // Collect one reading per household.
                let mut readings: Vec<(HouseholdId, Interval)> = Vec::new();
                while readings.len() < households.len() {
                    match center_inbox.recv_timeout(timeout) {
                        Ok((household, Message::MeterReading { day: d, window }))
                            if d == day =>
                        {
                            readings.push((household, window));
                        }
                        Ok(_) => {}
                        Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                            return Err(enki_core::Error::UnknownHousehold(
                                HouseholdId::new(readings.len() as u32),
                            ));
                        }
                    }
                }
                readings.sort_by_key(|&(h, _)| h);
                let consumption: Vec<Interval> =
                    readings.iter().map(|&(_, w)| w).collect();
                let settlement = enki.settle(&reports, &allocation, &consumption)?;
                for entry in &settlement.entries {
                    let idx = households
                        .iter()
                        .position(|h| h.id == entry.household)
                        .expect("settled household is known");
                    let _ = to_household[idx].send(Message::Bill {
                        day,
                        amount: entry.payment,
                    });
                }
                outcome.push(ThreadedDay {
                    day,
                    settlement,
                    bills: Vec::new(),
                });
            }
            Ok(outcome)
        };
        #[allow(clippy::redundant_closure_call)]
        {
            *result.lock() = run_center();
        }
        drop(to_household); // hang up: household threads exit their loops
    });

    let mut days_out = result.into_inner()?;
    // Attach the bills each household thread recorded.
    let mut bills = bills.into_inner();
    bills.sort_by_key(|&(h, _)| h);
    for day in &mut days_out {
        day.bills = bills.clone();
    }
    Ok(days_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use enki_core::config::EnkiConfig;
    use enki_core::household::Preference;
    use enki_sim::profile::ProfileConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn specs(n: u32, seed: u64) -> Vec<ThreadedHousehold> {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = ProfileConfig::default();
        (0..n)
            .map(|i| ThreadedHousehold {
                id: HouseholdId::new(i),
                profile: UsageProfile::generate(&mut rng, &config),
                truth_source: TruthSource::Wide,
                strategy: ReportStrategy::TruthfulWide,
            })
            .collect()
    }

    #[test]
    fn threaded_day_settles_and_balances() {
        let days = run_threaded_days(
            Enki::new(EnkiConfig::default()),
            specs(6, 1),
            1,
            1,
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(days.len(), 1);
        let st = &days[0].settlement;
        assert_eq!(st.entries.len(), 6);
        assert!(st.center_utility >= 0.0);
        assert!(st.entries.iter().all(|e| !e.defected));
    }

    #[test]
    fn threaded_outcome_matches_direct_mechanism() {
        // Same seed, same reports ⇒ the threaded settlement equals a
        // direct (single-threaded) invocation of the mechanism.
        let households = specs(5, 2);
        let enki = Enki::new(EnkiConfig::default());
        let threaded = run_threaded_days(enki, households.clone(), 1, 9, Duration::from_secs(5))
            .unwrap();

        let reports: Vec<Report> = households
            .iter()
            .map(|h| Report::new(h.id, h.strategy.report(&h.profile)))
            .collect();
        let mut rng = StdRng::seed_from_u64(9);
        let outcome = enki.allocate(&reports, &mut rng).unwrap();
        let consumption: Vec<Interval> =
            outcome.assignments.iter().map(|a| a.window).collect();
        let direct = enki.settle(&reports, &outcome, &consumption).unwrap();
        assert_eq!(threaded[0].settlement, direct);
    }

    #[test]
    fn bills_reach_every_household_thread() {
        let days = run_threaded_days(
            Enki::new(EnkiConfig::default()),
            specs(4, 3),
            2,
            3,
            Duration::from_secs(5),
        )
        .unwrap();
        // Two days × four households = eight bills recorded in total.
        assert_eq!(days.last().unwrap().bills.len(), 8);
    }

    #[test]
    fn narrow_truth_households_can_defect_threaded() {
        let mut specs = specs(4, 4);
        for (i, s) in specs.iter_mut().enumerate() {
            s.truth_source = TruthSource::Narrow;
            if i == 0 {
                // Household 0 misreports a window disjoint from its truth.
                let t = s.profile.narrow();
                let begin = if t.begin() >= 4 { t.begin() - 4 } else { t.end() };
                s.strategy = ReportStrategy::Fixed(
                    Preference::new(
                        begin.min(24 - t.duration()),
                        (begin.min(24 - t.duration()) + t.duration()).min(24),
                        t.duration(),
                    )
                    .unwrap(),
                );
            } else {
                s.strategy = ReportStrategy::TruthfulNarrow;
            }
        }
        let days = run_threaded_days(
            Enki::new(EnkiConfig::default()),
            specs,
            1,
            4,
            Duration::from_secs(5),
        )
        .unwrap();
        let st = &days[0].settlement;
        assert!(st.center_utility >= -1e-9, "budget balance survives defection");
    }

    #[test]
    fn empty_roster_is_rejected() {
        assert!(run_threaded_days(
            Enki::default(),
            vec![],
            1,
            0,
            Duration::from_millis(10)
        )
        .is_err());
    }
}
