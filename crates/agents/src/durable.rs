//! The durability layer: routing the runtime's checkpoints through a
//! checksummed write-ahead log ([`enki_durable`]) and auditing what
//! comes back out.
//!
//! A [`Journal`] owns a [`Wal`] over an injectable
//! [`Storage`] backend — real files in deployment
//! ([`enki_durable::file::FileStorage`]), the deterministic
//! fault-injecting [`FaultStorage`] in chaos tests. Two record streams
//! share the log:
//!
//! * **center** records — the [`CenterCheckpoint`] taken at each
//!   protocol phase boundary (see the commit contract on that type);
//! * **ingest** records — the [`IngestCheckpoint`] the serve front
//!   end snapshots whenever its durable state changed this tick.
//!
//! Every log call is **append → flush → apply**: the record is durable
//! before the caller treats the state transition as committed.
//! Payloads travel through the bit-exact
//! [`snapshot`](enki_serve::snapshot) codec, because center
//! checkpoints legitimately carry NaN (`last_raw` preserves household
//! submissions verbatim) and JSON would reject them.
//!
//! ## Recovery is replay plus a mandatory audit
//!
//! [`Journal::open`] / [`Journal::recover`] replay the log under the
//! WAL's deterministic rules — torn tails truncated, corrupt records
//! quarantined — and reduce the surviving records to a
//! [`RecoveredState`] (last record of each stream wins; a compaction
//! record seeds both streams at once). Replay alone is not trusted:
//! [`RecoveredState::audit`] re-runs the chaos oracle's mechanism
//! invariants over the recovered settlement history and refuses —
//! [`enki_core::Error::RecoveryAudit`] — any state the mechanism
//! itself would reject. A CRC-valid record that no longer decodes is
//! [`enki_core::Error::CorruptCheckpoint`]: that is a codec/version
//! problem, not bit rot, and recovery must not guess around it.

use std::fmt;

use enki_core::config::EnkiConfig;
use enki_core::household::HouseholdId;
use enki_durable::prelude::{
    FaultStorage, Lsn, Recovery, Storage, Wal, WalConfig, WalError, WalStats,
};
use enki_serve::prelude::IngestCheckpoint;
use enki_serve::snapshot;
use enki_telemetry::Recorder;

use crate::center::CenterCheckpoint;
use crate::oracle;

/// WAL record kind: a center phase-boundary checkpoint.
pub const REC_CENTER: u8 = 1;
/// WAL record kind: a serve front-end ingest checkpoint.
pub const REC_INGEST: u8 = 2;
/// WAL record kind: a compaction checkpoint carrying both streams as
/// one `(Option<CenterCheckpoint>, Option<IngestCheckpoint>)` pair.
pub const REC_COMPACT: u8 = 3;

/// Journal sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// Passed through to the WAL (segment rotation size).
    pub wal: WalConfig,
    /// Compact the log into a single checkpoint record after this many
    /// appends (`0` disables compaction).
    pub compact_every: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        Self {
            wal: WalConfig::default(),
            compact_every: 64,
        }
    }
}

/// What a log replay reduced to: the latest durable checkpoint of each
/// stream, plus everything the recovery had to discard to get there.
#[derive(Debug, Clone, Default)]
pub struct RecoveredState {
    /// Latest center checkpoint, when the log holds one.
    pub center: Option<CenterCheckpoint>,
    /// Latest ingest checkpoint, when the log holds one.
    pub ingest: Option<IngestCheckpoint>,
    /// Whether a torn tail was truncated during the replay.
    pub torn_tail_truncated: bool,
    /// Corrupt WAL records (bad CRC, truncated interior) quarantined
    /// by the storage-level replay.
    pub quarantined: u64,
    /// CRC-valid records whose payload no longer decoded into the
    /// expected checkpoint shape. Always `0` in a healthy deployment;
    /// non-zero fails [`RecoveredState::audit`].
    pub undecodable: u64,
    /// Which stream first failed to decode (`"center"`, `"ingest"`,
    /// `"compaction"`, or `"unknown"` for an unrecognized kind tag).
    pub first_undecodable: Option<&'static str>,
    /// Valid records replayed (the recovered streams' combined length).
    pub replayed: u64,
}

impl RecoveredState {
    /// The mandatory post-recovery audit. Recovered state is adopted
    /// only if (a) every surviving record decoded, and (b) the chaos
    /// oracle finds the recovered settlement history consistent with
    /// the mechanism invariants (budget balance, at-most-one bill,
    /// record ordering, ...).
    ///
    /// # Errors
    ///
    /// [`enki_core::Error::CorruptCheckpoint`] when a CRC-valid record
    /// failed to decode; [`enki_core::Error::RecoveryAudit`] when the
    /// recovered records violate a mechanism invariant.
    #[must_use = "an unchecked audit adopts possibly-corrupt recovered state"]
    pub fn audit(
        &self,
        roster: &[HouseholdId],
        config: &EnkiConfig,
    ) -> Result<(), enki_core::Error> {
        if self.undecodable > 0 {
            return Err(enki_core::Error::CorruptCheckpoint {
                kind: self.first_undecodable.unwrap_or("unknown"),
            });
        }
        let records = self.center.as_ref().map_or(&[][..], |c| c.records());
        let violations = oracle::check_parts(records, roster, config, &[]);
        if let Some(first) = violations.first() {
            return Err(enki_core::Error::RecoveryAudit {
                invariant: first.key().to_string(),
                violations: violations.len(),
            });
        }
        Ok(())
    }
}

/// The checkpoint journal: two record streams over one checksummed,
/// fault-injectable WAL. See the module docs for the protocol.
pub struct Journal {
    wal: Wal<Box<dyn Storage>>,
    config: JournalConfig,
    recorder: Option<Recorder>,
    /// Appends since the last compaction.
    appends_since_compact: u64,
    /// Latest value of each stream, for compaction payloads.
    last_center: Option<CenterCheckpoint>,
    last_ingest: Option<IngestCheckpoint>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("config", &self.config)
            .field("stats", self.wal.stats())
            .field("appends_since_compact", &self.appends_since_compact)
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// Opens a journal over `storage`, replaying whatever it holds.
    /// The returned [`RecoveredState`] is **not yet audited** — call
    /// [`RecoveredState::audit`] before adopting it.
    ///
    /// # Errors
    ///
    /// Returns [`WalError`] when the backend fails during the replay.
    #[must_use = "dropping the recovered state loses the replayed checkpoints"]
    pub fn open(
        storage: impl Storage + 'static,
        config: JournalConfig,
    ) -> Result<(Self, RecoveredState), WalError> {
        let boxed: Box<dyn Storage> = Box::new(storage);
        let (wal, recovery) = Wal::open(boxed, config.wal)?;
        let state = reduce(&recovery);
        let journal = Self {
            wal,
            config,
            recorder: None,
            appends_since_compact: state.replayed,
            last_center: state.center.clone(),
            last_ingest: state.ingest.clone(),
        };
        journal.note_recovery(&state);
        Ok((journal, state))
    }

    /// Attaches telemetry: `durable.*` counters and the recovery
    /// latency histogram.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    /// Logs a center phase-boundary checkpoint: append → flush; the
    /// caller applies (acknowledges the phase) only after `Ok`.
    ///
    /// # Errors
    ///
    /// Returns [`WalError`] when the record could not be made durable;
    /// the phase must then be treated as uncommitted.
    #[must_use = "an unlogged commit is not durable; check the error"]
    pub fn log_center(&mut self, checkpoint: &CenterCheckpoint) -> Result<Lsn, WalError> {
        let lsn = self.log(REC_CENTER, &snapshot::encode(checkpoint))?;
        self.last_center = Some(checkpoint.clone());
        self.maybe_compact()?;
        Ok(lsn)
    }

    /// Logs a serve front-end ingest checkpoint: append → flush.
    ///
    /// # Errors
    ///
    /// Returns [`WalError`] when the record could not be made durable.
    #[must_use = "an unlogged commit is not durable; check the error"]
    pub fn log_ingest(&mut self, checkpoint: &IngestCheckpoint) -> Result<Lsn, WalError> {
        let lsn = self.log(REC_INGEST, &snapshot::encode(checkpoint))?;
        self.last_ingest = Some(checkpoint.clone());
        self.maybe_compact()?;
        Ok(lsn)
    }

    /// Restart-and-replay: recovers the backend from any simulated
    /// crash, replays the log, and returns the (unaudited) recovered
    /// state. Observes the recovery latency histogram
    /// (`durable.recovery_ns`) when telemetry is attached.
    ///
    /// # Errors
    ///
    /// Returns [`WalError`] when the backend fails during the replay
    /// itself.
    #[must_use = "dropping the recovered state loses the replayed checkpoints"]
    pub fn recover(&mut self) -> Result<RecoveredState, WalError> {
        let started = self.recorder.as_ref().map(Recorder::now);
        let recovery = self.wal.reopen()?;
        let state = reduce(&recovery);
        self.appends_since_compact = state.replayed;
        self.last_center = state.center.clone();
        self.last_ingest = state.ingest.clone();
        self.note_recovery(&state);
        if let (Some(r), Some(t0)) = (self.recorder.as_ref(), started) {
            r.incr("durable.recoveries", 1);
            r.observe_duration("durable.recovery_ns", r.now().saturating_sub(t0));
        }
        Ok(state)
    }

    /// WAL lifetime counters (appends, flush barriers, rotations,
    /// compactions).
    #[must_use]
    pub fn stats(&self) -> &WalStats {
        self.wal.stats()
    }

    /// Live segment count in the underlying WAL.
    #[must_use]
    pub fn live_segments(&self) -> u64 {
        self.wal.live_segments()
    }

    /// The fault-injecting backend, when this journal runs over one
    /// (chaos tests read injected-fault stats and place crashes
    /// through this).
    #[must_use]
    pub fn fault_storage(&self) -> Option<&FaultStorage> {
        self.wal.storage().as_any().and_then(|a| a.downcast_ref())
    }

    /// Mutable variant of [`Journal::fault_storage`].
    #[must_use]
    pub fn fault_storage_mut(&mut self) -> Option<&mut FaultStorage> {
        self.wal
            .storage_mut()
            .as_any_mut()
            .and_then(|a| a.downcast_mut())
    }

    fn log(&mut self, kind: u8, payload: &[u8]) -> Result<Lsn, WalError> {
        let lsn = self.wal.append(kind, payload)?;
        self.wal.flush()?;
        self.appends_since_compact += 1;
        if let Some(r) = self.recorder.as_ref() {
            r.incr("durable.records_written", 1);
            r.incr("durable.records_flushed", 1);
            r.gauge("durable.segment_bytes", self.wal.segment_len() as f64);
        }
        Ok(lsn)
    }

    fn maybe_compact(&mut self) -> Result<(), WalError> {
        if self.config.compact_every == 0
            || self.appends_since_compact < self.config.compact_every
        {
            return Ok(());
        }
        let pair = (self.last_center.clone(), self.last_ingest.clone());
        self.wal.compact(REC_COMPACT, &snapshot::encode(&pair))?;
        self.appends_since_compact = 0;
        if let Some(r) = self.recorder.as_ref() {
            r.incr("durable.compactions", 1);
        }
        Ok(())
    }

    fn note_recovery(&self, state: &RecoveredState) {
        if let Some(r) = self.recorder.as_ref() {
            r.incr("durable.replayed", state.replayed);
            r.incr("durable.quarantined", state.quarantined);
            r.incr("durable.undecodable", state.undecodable);
            r.incr("durable.torn_truncated", u64::from(state.torn_tail_truncated));
        }
    }
}

/// Reduces a raw WAL replay to the latest checkpoint of each stream.
fn reduce(recovery: &Recovery) -> RecoveredState {
    let mut state = RecoveredState {
        torn_tail_truncated: recovery.torn_tail.is_some(),
        quarantined: recovery.quarantined.len() as u64,
        ..RecoveredState::default()
    };
    let fail = |state: &mut RecoveredState, kind: &'static str| {
        state.undecodable += 1;
        state.first_undecodable.get_or_insert(kind);
    };
    for record in &recovery.records {
        match record.kind {
            REC_CENTER => match snapshot::decode::<CenterCheckpoint>(&record.payload) {
                Some(c) => {
                    state.center = Some(c);
                    state.replayed += 1;
                }
                None => fail(&mut state, "center"),
            },
            REC_INGEST => match snapshot::decode::<IngestCheckpoint>(&record.payload) {
                Some(i) => {
                    state.ingest = Some(i);
                    state.replayed += 1;
                }
                None => fail(&mut state, "ingest"),
            },
            REC_COMPACT => {
                type Pair = (Option<CenterCheckpoint>, Option<IngestCheckpoint>);
                match snapshot::decode::<Pair>(&record.payload) {
                    Some((c, i)) => {
                        if c.is_some() {
                            state.center = c;
                        }
                        if i.is_some() {
                            state.ingest = i;
                        }
                        state.replayed += 1;
                    }
                    None => fail(&mut state, "compaction"),
                }
            }
            _ => fail(&mut state, "unknown"),
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::center::{CenterAgent, DayPlan};
    use crate::serve_runtime::{ServeProducer, ServeRuntime};
    use enki_core::mechanism::Enki;
    use enki_core::validation::RawPreference;
    use enki_durable::prelude::{FaultPlan, MemStorage};
    use enki_serve::prelude::IngestConfig;

    /// Runs a serve runtime to quiescence and hands back its center,
    /// whose snapshot then carries `days` settled records.
    fn settled(days: u64) -> ServeRuntime {
        let center = CenterAgent::new(
            Enki::new(EnkiConfig::default()),
            (0..4).map(HouseholdId::new).collect(),
            DayPlan::default(),
            7,
        );
        let mut rt = ServeRuntime::new(center, IngestConfig::default(), 7);
        for i in 0..4 {
            rt.add_producer(ServeProducer::new(
                HouseholdId::new(i),
                RawPreference::new(f64::from(16 + (i % 6)), 23.0, 2.0),
            ));
        }
        rt.run_days(days, 100);
        assert_eq!(rt.records().len() as u64, days);
        rt
    }

    #[test]
    fn empty_journal_opens_to_nothing() {
        let (journal, state) =
            Journal::open(MemStorage::new(), JournalConfig::default()).unwrap();
        assert!(state.center.is_none());
        assert!(state.ingest.is_none());
        assert_eq!(state.replayed, 0);
        assert!(state.audit(&[], &EnkiConfig::default()).is_ok());
        assert_eq!(journal.stats().appended, 0);
    }

    #[test]
    fn last_center_record_wins_and_passes_audit() {
        let early_rt = settled(1);
        let rt = settled(2);
        let center = rt.center();
        let (mut journal, _) =
            Journal::open(MemStorage::new(), JournalConfig::default()).unwrap();
        journal.log_center(&early_rt.center().snapshot()).unwrap();
        journal.log_center(&center.snapshot()).unwrap();
        let state = journal.recover().unwrap();
        let got = state.center.as_ref().unwrap();
        assert_eq!(got.records().len(), 2, "later checkpoint won");
        state
            .audit(center.roster(), center.enki().config())
            .unwrap();
    }

    #[test]
    fn compaction_folds_both_streams_into_one_record() {
        let rt = settled(1);
        let center = rt.center();
        let config = JournalConfig {
            compact_every: 2,
            ..JournalConfig::default()
        };
        let (mut journal, _) = Journal::open(MemStorage::new(), config).unwrap();
        let ingest =
            enki_serve::ingest::IngestFrontEnd::new(IngestConfig::default(), 3).checkpoint();
        journal.log_center(&center.snapshot()).unwrap();
        journal.log_ingest(&ingest).unwrap();
        assert_eq!(journal.stats().compactions, 1);
        assert_eq!(journal.live_segments(), 1);
        let state = journal.recover().unwrap();
        assert_eq!(state.replayed, 1, "one compaction record replays");
        assert!(state.center.is_some());
        assert!(state.ingest.is_some());
        state
            .audit(center.roster(), center.enki().config())
            .unwrap();
    }

    #[test]
    fn unflushed_center_commit_is_lost_on_crash_and_audit_still_passes() {
        let rt = settled(2);
        let center = rt.center();
        let storage = FaultStorage::new(FaultPlan::none());
        let (mut journal, _) = Journal::open(storage, JournalConfig::default()).unwrap();
        journal.log_center(&center.snapshot()).unwrap();
        journal.fault_storage_mut().unwrap().enter_crash();
        let state = journal.recover().unwrap();
        assert_eq!(
            state.center.as_ref().unwrap().records().len(),
            2,
            "flushed commit survives the crash"
        );
        state
            .audit(center.roster(), center.enki().config())
            .unwrap();
    }

    #[test]
    fn tampered_settlement_fails_the_audit() {
        // A checkpoint whose recorded history the oracle rejects must
        // be refused, even though every checksum is intact.
        let rt = settled(1);
        let center = rt.center();
        let mut checkpoint = center.snapshot();
        // Bit-exact tampering below the CRC: duplicate the settled
        // day's record, which breaks record ordering/uniqueness.
        let cloned = checkpoint.records()[0].clone();
        checkpoint_records_push(&mut checkpoint, cloned);
        let (mut journal, _) =
            Journal::open(MemStorage::new(), JournalConfig::default()).unwrap();
        journal.log_center(&checkpoint).unwrap();
        let state = journal.recover().unwrap();
        let err = state
            .audit(center.roster(), center.enki().config())
            .unwrap_err();
        assert!(matches!(err, enki_core::Error::RecoveryAudit { .. }), "{err}");
    }

    #[test]
    fn undecodable_record_maps_to_corrupt_checkpoint() {
        // A payload that passes the CRC but is not a checkpoint: the
        // journal quarantines it and the audit refuses the state.
        let (mut wal, _) = Wal::open(
            Box::new(MemStorage::new()) as Box<dyn Storage>,
            WalConfig::default(),
        )
        .unwrap();
        wal.append(REC_CENTER, b"not a checkpoint").unwrap();
        wal.flush().unwrap();
        let storage = wal.into_storage();
        let (_, state) = Journal::open(storage, JournalConfig::default()).unwrap();
        assert_eq!(state.undecodable, 1);
        let err = state.audit(&[], &EnkiConfig::default()).unwrap_err();
        assert_eq!(
            err,
            enki_core::Error::CorruptCheckpoint { kind: "center" }
        );
    }

    /// Test-only back door: `CenterCheckpoint` fields are private, so
    /// tampering goes through the serialized tree.
    fn checkpoint_records_push(
        checkpoint: &mut CenterCheckpoint,
        record: crate::center::DayRecord,
    ) {
        use serde::{Deserialize, Serialize, Value};
        let mut tree = checkpoint.serialize_value();
        let Value::Object(fields) = &mut tree else {
            panic!("checkpoint serializes to an object")
        };
        for (name, value) in fields.iter_mut() {
            if name == "records" {
                let Value::Array(items) = value else {
                    panic!("records serialize to an array")
                };
                items.push(record.serialize_value());
            }
        }
        *checkpoint = CenterCheckpoint::deserialize_value(&tree).unwrap();
    }
}
