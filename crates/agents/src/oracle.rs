//! Protocol invariant oracle.
//!
//! Replays a [`Runtime`](crate::runtime::Runtime) trace and the center's
//! settled records against the mechanism's safety invariants. The oracle
//! is fault-model-agnostic: every invariant must hold under *any*
//! schedule of drops, duplicates, reorderings, partitions, outages, and
//! center crash/recovery cycles. A violation under injected faults is a
//! protocol bug, never "expected degradation".
//!
//! Invariants checked:
//!
//! 1. **Ex ante budget balance** — every settled day has
//!    `center_utility >= 0` (up to floating-point slack): the mechanism
//!    never pays out more than it collects (paper §IV, weak budget
//!    balance).
//! 2. **At-most-one bill** — the center never originates more than one
//!    [`Bill`](crate::message::Message::Bill) per household per day, even
//!    when messages are duplicated or the center recovers from a crash.
//! 3. **Allocations are grounded** — an allocation sent to a household
//!    for day *d* is preceded by a *delivered* report from that household
//!    for day *d*. The center never invents participants.
//! 4. **Record integrity** — settled day records have strictly
//!    increasing day numbers (no duplicate settlement after
//!    crash-recovery) and each record's participants, quarantined, and
//!    clamped households are subsets of the roster (clamped of the
//!    participants) with no overlap between participants and missing
//!    reports.
//! 5. **Settlement validity** — every settled day passes
//!    [`Settlement::verify`](enki_core::mechanism::Settlement::verify)
//!    against the center's configuration: all values finite, bills
//!    non-negative, revenue and utility consistent. Adversarial reports
//!    must never smuggle a NaN or a negative bill into a settlement.
//! 6. **Bills only to admitted participants** — every
//!    [`Bill`](crate::message::Message::Bill) the center originates for
//!    day *d* goes to a household recorded as a participant of day *d*.
//!    A report that admission control quarantined (without a standing
//!    profile) can never produce a bill.

use std::collections::{BTreeMap, BTreeSet};

use enki_core::config::EnkiConfig;
use enki_core::household::HouseholdId;
use enki_telemetry::Recorder;

use crate::center::DayRecord;
use crate::message::{Message, NodeId};
use crate::runtime::{Runtime, TraceEvent, TraceKind};

/// Slack for floating-point budget comparisons.
const BUDGET_EPS: f64 = 1e-9;

/// One invariant violation found by the oracle.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a detected invariant violation must be reported or asserted on"]
pub enum Violation {
    /// A settled day paid out more than it collected.
    BudgetDeficit {
        /// The settled day.
        day: u64,
        /// The (negative) center utility.
        center_utility: f64,
    },
    /// A household was billed more than once for the same day.
    DuplicateBill {
        /// The billed day.
        day: u64,
        /// The household billed twice.
        household: HouseholdId,
    },
    /// An allocation was sent to a household whose report was never
    /// delivered to the center.
    UngroundedAllocation {
        /// The allocated day.
        day: u64,
        /// The household that never reported.
        household: HouseholdId,
    },
    /// Day records are out of order or duplicated.
    DisorderedRecords {
        /// The offending day number.
        day: u64,
        /// The day number of the preceding record.
        previous: u64,
    },
    /// A record names a participant outside the roster, a household
    /// appears both as a participant and as a missing report, a
    /// quarantined household is outside the roster, or a clamped
    /// household is not a participant.
    CorruptRecord {
        /// The settled day.
        day: u64,
        /// The offending household.
        household: HouseholdId,
    },
    /// A settled day's settlement failed
    /// [`Settlement::verify`](enki_core::mechanism::Settlement::verify):
    /// a non-finite value, a negative bill, or inconsistent totals.
    InvalidSettlement {
        /// The settled day.
        day: u64,
        /// The verification error.
        reason: String,
    },
    /// The center billed a household that the day's record does not list
    /// as a participant — a bill with no admitted report behind it.
    UnadmittedBill {
        /// The billed day.
        day: u64,
        /// The household billed without an admitted report.
        household: HouseholdId,
    },
}

impl Violation {
    /// Stable metric-name suffix for this violation kind, used for the
    /// `oracle.violation.{key}` telemetry counters.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            Self::BudgetDeficit { .. } => "budget_deficit",
            Self::DuplicateBill { .. } => "duplicate_bill",
            Self::UngroundedAllocation { .. } => "ungrounded_allocation",
            Self::DisorderedRecords { .. } => "disordered_records",
            Self::CorruptRecord { .. } => "corrupt_record",
            Self::InvalidSettlement { .. } => "invalid_settlement",
            Self::UnadmittedBill { .. } => "unadmitted_bill",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BudgetDeficit {
                day,
                center_utility,
            } => write!(
                f,
                "day {day}: budget deficit, center utility {center_utility}"
            ),
            Self::DuplicateBill { day, household } => {
                write!(f, "day {day}: {household:?} billed more than once")
            }
            Self::UngroundedAllocation { day, household } => write!(
                f,
                "day {day}: allocation sent to {household:?} without a delivered report"
            ),
            Self::DisorderedRecords { day, previous } => write!(
                f,
                "record for day {day} follows record for day {previous}"
            ),
            Self::CorruptRecord { day, household } => {
                write!(f, "day {day}: record corrupt at {household:?}")
            }
            Self::InvalidSettlement { day, reason } => {
                write!(f, "day {day}: settlement failed verification: {reason}")
            }
            Self::UnadmittedBill { day, household } => {
                write!(f, "day {day}: {household:?} billed without an admitted report")
            }
        }
    }
}

/// Checks every protocol invariant against a finished runtime.
///
/// Requires the runtime to have been built with
/// [`with_trace`](crate::runtime::Runtime::with_trace); without a trace
/// only the record-level invariants (1 and 4) are observable.
#[must_use]
pub fn check(runtime: &Runtime) -> Vec<Violation> {
    check_traced(runtime, None)
}

/// Like [`check`], but records an `oracle.check` span plus an
/// `oracle.checks` counter and one `oracle.violation.{kind}` counter per
/// violation found into the given telemetry recorder.
#[must_use]
pub fn check_traced(runtime: &Runtime, recorder: Option<&Recorder>) -> Vec<Violation> {
    let mut span = recorder.map(|r| r.span("oracle.check"));
    let mut violations = Vec::new();
    check_records(
        runtime.records(),
        runtime.center().roster(),
        runtime.center().enki().config(),
        &mut violations,
    );
    check_trace(runtime.trace(), runtime.records(), &mut violations);
    if let Some(r) = recorder {
        r.incr("oracle.checks", 1);
        for violation in &violations {
            r.incr(&format!("oracle.violation.{}", violation.key()), 1);
        }
        // An invariant violation is exactly what the flight recorder
        // exists for: dump the recent-event ring as a postmortem.
        if let Some(first) = violations.first() {
            let _ = r.postmortem(
                &format!("oracle.{}", first.key()),
                &[
                    (
                        "violations",
                        enki_telemetry::FieldValue::U64(violations.len() as u64),
                    ),
                    (
                        "first",
                        enki_telemetry::FieldValue::Str(first.to_string()),
                    ),
                ],
            );
        }
    }
    if let Some(span) = span.as_mut() {
        span.record("records", runtime.records().len());
        span.record("trace_events", runtime.trace().len());
        span.record("violations", violations.len());
    }
    violations
}

/// Checks the invariants directly on records and a trace, without a
/// [`Runtime`]. For harnesses that drive a
/// [`CenterAgent`](crate::center::CenterAgent) through a custom loop
/// (e.g. the serve-layer ingestion runtime) but still owe the same
/// proof obligations as the lockstep runtime.
#[must_use]
pub fn check_parts(
    records: &[DayRecord],
    roster: &[HouseholdId],
    config: &EnkiConfig,
    trace: &[TraceEvent],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    check_records(records, roster, config, &mut violations);
    check_trace(trace, records, &mut violations);
    violations
}

fn check_records(
    records: &[DayRecord],
    roster: &[HouseholdId],
    config: &EnkiConfig,
    violations: &mut Vec<Violation>,
) {
    let roster: BTreeSet<HouseholdId> = roster.iter().copied().collect();
    let mut previous: Option<u64> = None;
    for record in records {
        if let Some(prev) = previous {
            if record.day <= prev {
                violations.push(Violation::DisorderedRecords {
                    day: record.day,
                    previous: prev,
                });
            }
        }
        previous = Some(record.day);

        if let Some(st) = &record.settlement {
            if st.center_utility < -BUDGET_EPS {
                violations.push(Violation::BudgetDeficit {
                    day: record.day,
                    center_utility: st.center_utility,
                });
            }
            if let Err(e) = st.verify(config) {
                violations.push(Violation::InvalidSettlement {
                    day: record.day,
                    reason: e.to_string(),
                });
            }
        }

        let participants: BTreeSet<HouseholdId> =
            record.participants.iter().copied().collect();
        for &h in &record.participants {
            if !roster.contains(&h) {
                violations.push(Violation::CorruptRecord {
                    day: record.day,
                    household: h,
                });
            }
        }
        for &h in &record.missing_reports {
            if participants.contains(&h) {
                violations.push(Violation::CorruptRecord {
                    day: record.day,
                    household: h,
                });
            }
        }
        for &h in &record.quarantined {
            if !roster.contains(&h) {
                violations.push(Violation::CorruptRecord {
                    day: record.day,
                    household: h,
                });
            }
        }
        for &h in &record.clamped {
            if !participants.contains(&h) {
                violations.push(Violation::CorruptRecord {
                    day: record.day,
                    household: h,
                });
            }
        }
    }
}

fn check_trace(trace: &[TraceEvent], records: &[DayRecord], violations: &mut Vec<Violation>) {
    // Recorded participants per day: the only households a bill may
    // legitimately reach.
    let participants_by_day: BTreeMap<u64, BTreeSet<HouseholdId>> = records
        .iter()
        .map(|r| (r.day, r.participants.iter().copied().collect()))
        .collect();
    // Bills originated by the center, keyed (day, household).
    let mut billed: BTreeSet<(u64, HouseholdId)> = BTreeSet::new();
    // Reports actually delivered to the center, keyed (day, household).
    let mut reported: BTreeSet<(u64, HouseholdId)> = BTreeSet::new();
    // Deduped ungrounded allocations so a rebroadcast doesn't repeat
    // the same violation.
    let mut ungrounded: BTreeSet<(u64, HouseholdId)> = BTreeSet::new();
    // Allocations already seen, so rebroadcasts of the same allocation
    // are not counted as duplicate grounding checks.
    let mut allocated: BTreeSet<(u64, HouseholdId)> = BTreeSet::new();

    for event in trace {
        let endpoints = (event.envelope.from, event.envelope.to);
        match (&event.kind, &event.envelope.message) {
            (TraceKind::Delivered, Message::SubmitReport { day, .. }) => {
                if let (NodeId::Household(h), NodeId::Center) = endpoints {
                    reported.insert((*day, h));
                }
            }
            (TraceKind::Originated, Message::Allocation { day, .. }) => {
                if let (NodeId::Center, NodeId::Household(h)) = endpoints {
                    if allocated.insert((*day, h))
                        && !reported.contains(&(*day, h))
                        && ungrounded.insert((*day, h))
                    {
                        violations.push(Violation::UngroundedAllocation {
                            day: *day,
                            household: h,
                        });
                    }
                }
            }
            (TraceKind::Originated, Message::Bill { day, .. }) => {
                if let (NodeId::Center, NodeId::Household(h)) = endpoints {
                    if !billed.insert((*day, h)) {
                        violations.push(Violation::DuplicateBill {
                            day: *day,
                            household: h,
                        });
                    }
                    if !participants_by_day
                        .get(day)
                        .is_some_and(|p| p.contains(&h))
                    {
                        violations.push(Violation::UnadmittedBill {
                            day: *day,
                            household: h,
                        });
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::center::{CenterAgent, DayPlan};
    use crate::household::{HouseholdAgent, ReportSource};
    use crate::network::{NetworkConfig, SimNetwork};
    use enki_core::config::EnkiConfig;
    use enki_core::mechanism::Enki;
    use enki_sim::behavior::ReportStrategy;
    use enki_sim::neighborhood::TruthSource;
    use enki_sim::profile::{ProfileConfig, UsageProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(n: u32, network: NetworkConfig, seed: u64) -> Runtime {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = ProfileConfig::default();
        let households: Vec<HouseholdAgent> = (0..n)
            .map(|i| {
                HouseholdAgent::new(
                    HouseholdId::new(i),
                    UsageProfile::generate(&mut rng, &config),
                    TruthSource::Wide,
                    ReportStrategy::TruthfulWide,
                    ReportSource::Strategy,
                )
            })
            .collect();
        let center = CenterAgent::new(
            Enki::new(EnkiConfig::default()),
            (0..n).map(HouseholdId::new).collect(),
            DayPlan::default(),
            seed,
        );
        Runtime::new(SimNetwork::new(network, seed), center, households)
    }

    #[test]
    fn clean_run_has_no_violations() {
        let mut rt = build(6, NetworkConfig::default(), 21).with_trace();
        rt.run_days(3, 100);
        let violations = check(&rt);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn lossy_run_has_no_violations() {
        let mut rt = build(8, NetworkConfig::lossy(0.35), 22).with_trace();
        rt.run_days(3, 100);
        let violations = check(&rt);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn oracle_flags_a_synthetic_duplicate_bill() {
        use crate::message::{Envelope, Message};
        use crate::runtime::{TraceEvent, TraceKind};
        let bill = |at| TraceEvent {
            at,
            kind: TraceKind::Originated,
            envelope: Envelope {
                from: NodeId::Center,
                to: NodeId::Household(HouseholdId::new(0)),
                message: Message::Bill {
                    day: 0,
                    amount: 1.0,
                },
                trace: None,
            },
        };
        let record = DayRecord {
            day: 0,
            participants: vec![HouseholdId::new(0)],
            missing_reports: Vec::new(),
            missing_readings: Vec::new(),
            quarantined: Vec::new(),
            clamped: Vec::new(),
            settlement: None,
        };
        let mut violations = Vec::new();
        check_trace(&[bill(70), bill(71)], &[record], &mut violations);
        assert_eq!(
            violations,
            vec![Violation::DuplicateBill {
                day: 0,
                household: HouseholdId::new(0)
            }]
        );
    }

    #[test]
    fn oracle_flags_a_synthetic_unadmitted_bill() {
        use crate::message::{Envelope, Message};
        use crate::runtime::{TraceEvent, TraceKind};
        let bill = TraceEvent {
            at: 70,
            kind: TraceKind::Originated,
            envelope: Envelope {
                from: NodeId::Center,
                to: NodeId::Household(HouseholdId::new(5)),
                message: Message::Bill {
                    day: 0,
                    amount: 1.0,
                },
                trace: None,
            },
        };
        let record = DayRecord {
            day: 0,
            participants: vec![HouseholdId::new(0)],
            missing_reports: vec![HouseholdId::new(5)],
            missing_readings: Vec::new(),
            quarantined: vec![HouseholdId::new(5)],
            clamped: Vec::new(),
            settlement: None,
        };
        let mut violations = Vec::new();
        check_trace(&[bill], &[record], &mut violations);
        assert_eq!(
            violations,
            vec![Violation::UnadmittedBill {
                day: 0,
                household: HouseholdId::new(5)
            }]
        );
    }

    #[test]
    fn oracle_flags_a_corrupt_settlement() {
        let mut rt = build(3, NetworkConfig::default(), 24);
        rt.run_days(1, 100);
        let mut records = rt.records().to_vec();
        let st = records[0].settlement.as_mut().unwrap();
        st.entries[0].payment = f64::NAN;
        let mut violations = Vec::new();
        check_records(
            &records,
            rt.center().roster(),
            rt.center().enki().config(),
            &mut violations,
        );
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::InvalidSettlement { day: 0, .. })),
            "violations: {violations:?}"
        );
    }

    #[test]
    fn oracle_flags_a_clamped_non_participant() {
        let mut rt = build(2, NetworkConfig::default(), 25);
        rt.run_days(1, 100);
        let mut records = rt.records().to_vec();
        // Claim a clamp decision for a household that never participated.
        records[0].clamped.push(HouseholdId::new(99));
        let mut violations = Vec::new();
        check_records(
            &records,
            rt.center().roster(),
            rt.center().enki().config(),
            &mut violations,
        );
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::CorruptRecord { .. })));
    }

    #[test]
    fn oracle_flags_a_synthetic_ungrounded_allocation() {
        use crate::message::{Envelope, Message};
        use crate::runtime::{TraceEvent, TraceKind};
        use enki_core::time::Interval;
        let event = TraceEvent {
            at: 30,
            kind: TraceKind::Originated,
            envelope: Envelope {
                from: NodeId::Center,
                to: NodeId::Household(HouseholdId::new(3)),
                message: Message::Allocation {
                    day: 0,
                    window: Interval::new(0, 4).unwrap(),
                },
                trace: None,
            },
        };
        let mut violations = Vec::new();
        check_trace(&[event], &[], &mut violations);
        assert_eq!(
            violations,
            vec![Violation::UngroundedAllocation {
                day: 0,
                household: HouseholdId::new(3)
            }]
        );
    }

    #[test]
    fn oracle_flags_synthetic_disordered_records() {
        let mut rt = build(2, NetworkConfig::default(), 23);
        rt.run_days(2, 100);
        let mut records = rt.records().to_vec();
        records.swap(0, 1);
        let mut violations = Vec::new();
        check_records(
            &records,
            rt.center().roster(),
            rt.center().enki().config(),
            &mut violations,
        );
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::DisorderedRecords { .. })));
    }
}
