//! Protocol invariant oracle.
//!
//! Replays a [`Runtime`](crate::runtime::Runtime) trace and the center's
//! settled records against the mechanism's safety invariants. The oracle
//! is fault-model-agnostic: every invariant must hold under *any*
//! schedule of drops, duplicates, reorderings, partitions, outages, and
//! center crash/recovery cycles. A violation under injected faults is a
//! protocol bug, never "expected degradation".
//!
//! Invariants checked:
//!
//! 1. **Ex ante budget balance** — every settled day has
//!    `center_utility >= 0` (up to floating-point slack): the mechanism
//!    never pays out more than it collects (paper §IV, weak budget
//!    balance).
//! 2. **At-most-one bill** — the center never originates more than one
//!    [`Bill`](crate::message::Message::Bill) per household per day, even
//!    when messages are duplicated or the center recovers from a crash.
//! 3. **Allocations are grounded** — an allocation sent to a household
//!    for day *d* is preceded by a *delivered* report from that household
//!    for day *d*. The center never invents participants.
//! 4. **Record integrity** — settled day records have strictly
//!    increasing day numbers (no duplicate settlement after
//!    crash-recovery) and each record's participants are a subset of the
//!    roster with no overlap between participants and missing reports.

use std::collections::BTreeSet;

use enki_core::household::HouseholdId;

use crate::center::DayRecord;
use crate::message::{Message, NodeId};
use crate::runtime::{Runtime, TraceEvent, TraceKind};

/// Slack for floating-point budget comparisons.
const BUDGET_EPS: f64 = 1e-9;

/// One invariant violation found by the oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A settled day paid out more than it collected.
    BudgetDeficit {
        /// The settled day.
        day: u64,
        /// The (negative) center utility.
        center_utility: f64,
    },
    /// A household was billed more than once for the same day.
    DuplicateBill {
        /// The billed day.
        day: u64,
        /// The household billed twice.
        household: HouseholdId,
    },
    /// An allocation was sent to a household whose report was never
    /// delivered to the center.
    UngroundedAllocation {
        /// The allocated day.
        day: u64,
        /// The household that never reported.
        household: HouseholdId,
    },
    /// Day records are out of order or duplicated.
    DisorderedRecords {
        /// The offending day number.
        day: u64,
        /// The day number of the preceding record.
        previous: u64,
    },
    /// A record names a participant outside the roster, or a household
    /// appears both as a participant and as a missing report.
    CorruptRecord {
        /// The settled day.
        day: u64,
        /// The offending household.
        household: HouseholdId,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BudgetDeficit {
                day,
                center_utility,
            } => write!(
                f,
                "day {day}: budget deficit, center utility {center_utility}"
            ),
            Self::DuplicateBill { day, household } => {
                write!(f, "day {day}: {household:?} billed more than once")
            }
            Self::UngroundedAllocation { day, household } => write!(
                f,
                "day {day}: allocation sent to {household:?} without a delivered report"
            ),
            Self::DisorderedRecords { day, previous } => write!(
                f,
                "record for day {day} follows record for day {previous}"
            ),
            Self::CorruptRecord { day, household } => {
                write!(f, "day {day}: record corrupt at {household:?}")
            }
        }
    }
}

/// Checks every protocol invariant against a finished runtime.
///
/// Requires the runtime to have been built with
/// [`with_trace`](crate::runtime::Runtime::with_trace); without a trace
/// only the record-level invariants (1 and 4) are observable.
#[must_use]
pub fn check(runtime: &Runtime) -> Vec<Violation> {
    let mut violations = Vec::new();
    check_records(runtime.records(), runtime.center().roster(), &mut violations);
    check_trace(runtime.trace(), &mut violations);
    violations
}

fn check_records(
    records: &[DayRecord],
    roster: &[HouseholdId],
    violations: &mut Vec<Violation>,
) {
    let roster: BTreeSet<HouseholdId> = roster.iter().copied().collect();
    let mut previous: Option<u64> = None;
    for record in records {
        if let Some(prev) = previous {
            if record.day <= prev {
                violations.push(Violation::DisorderedRecords {
                    day: record.day,
                    previous: prev,
                });
            }
        }
        previous = Some(record.day);

        if let Some(st) = &record.settlement {
            if st.center_utility < -BUDGET_EPS {
                violations.push(Violation::BudgetDeficit {
                    day: record.day,
                    center_utility: st.center_utility,
                });
            }
        }

        let participants: BTreeSet<HouseholdId> =
            record.participants.iter().copied().collect();
        for &h in &record.participants {
            if !roster.contains(&h) {
                violations.push(Violation::CorruptRecord {
                    day: record.day,
                    household: h,
                });
            }
        }
        for &h in &record.missing_reports {
            if participants.contains(&h) {
                violations.push(Violation::CorruptRecord {
                    day: record.day,
                    household: h,
                });
            }
        }
    }
}

fn check_trace(trace: &[TraceEvent], violations: &mut Vec<Violation>) {
    // Bills originated by the center, keyed (day, household).
    let mut billed: BTreeSet<(u64, HouseholdId)> = BTreeSet::new();
    // Reports actually delivered to the center, keyed (day, household).
    let mut reported: BTreeSet<(u64, HouseholdId)> = BTreeSet::new();
    // Deduped ungrounded allocations so a rebroadcast doesn't repeat
    // the same violation.
    let mut ungrounded: BTreeSet<(u64, HouseholdId)> = BTreeSet::new();
    // Allocations already seen, so rebroadcasts of the same allocation
    // are not counted as duplicate grounding checks.
    let mut allocated: BTreeSet<(u64, HouseholdId)> = BTreeSet::new();

    for event in trace {
        let endpoints = (event.envelope.from, event.envelope.to);
        match (&event.kind, &event.envelope.message) {
            (TraceKind::Delivered, Message::SubmitReport { day, .. }) => {
                if let (NodeId::Household(h), NodeId::Center) = endpoints {
                    reported.insert((*day, h));
                }
            }
            (TraceKind::Originated, Message::Allocation { day, .. }) => {
                if let (NodeId::Center, NodeId::Household(h)) = endpoints {
                    if allocated.insert((*day, h))
                        && !reported.contains(&(*day, h))
                        && ungrounded.insert((*day, h))
                    {
                        violations.push(Violation::UngroundedAllocation {
                            day: *day,
                            household: h,
                        });
                    }
                }
            }
            (TraceKind::Originated, Message::Bill { day, .. }) => {
                if let (NodeId::Center, NodeId::Household(h)) = endpoints {
                    if !billed.insert((*day, h)) {
                        violations.push(Violation::DuplicateBill {
                            day: *day,
                            household: h,
                        });
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::center::{CenterAgent, DayPlan};
    use crate::household::{HouseholdAgent, ReportSource};
    use crate::network::{NetworkConfig, SimNetwork};
    use enki_core::config::EnkiConfig;
    use enki_core::mechanism::Enki;
    use enki_sim::behavior::ReportStrategy;
    use enki_sim::neighborhood::TruthSource;
    use enki_sim::profile::{ProfileConfig, UsageProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(n: u32, network: NetworkConfig, seed: u64) -> Runtime {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = ProfileConfig::default();
        let households: Vec<HouseholdAgent> = (0..n)
            .map(|i| {
                HouseholdAgent::new(
                    HouseholdId::new(i),
                    UsageProfile::generate(&mut rng, &config),
                    TruthSource::Wide,
                    ReportStrategy::TruthfulWide,
                    ReportSource::Strategy,
                )
            })
            .collect();
        let center = CenterAgent::new(
            Enki::new(EnkiConfig::default()),
            (0..n).map(HouseholdId::new).collect(),
            DayPlan::default(),
            seed,
        );
        Runtime::new(SimNetwork::new(network, seed), center, households)
    }

    #[test]
    fn clean_run_has_no_violations() {
        let mut rt = build(6, NetworkConfig::default(), 21).with_trace();
        rt.run_days(3, 100);
        let violations = check(&rt);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn lossy_run_has_no_violations() {
        let mut rt = build(8, NetworkConfig::lossy(0.35), 22).with_trace();
        rt.run_days(3, 100);
        let violations = check(&rt);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn oracle_flags_a_synthetic_duplicate_bill() {
        use crate::message::{Envelope, Message};
        use crate::runtime::{TraceEvent, TraceKind};
        let bill = |at| TraceEvent {
            at,
            kind: TraceKind::Originated,
            envelope: Envelope {
                from: NodeId::Center,
                to: NodeId::Household(HouseholdId::new(0)),
                message: Message::Bill {
                    day: 0,
                    amount: 1.0,
                },
            },
        };
        let mut violations = Vec::new();
        check_trace(&[bill(70), bill(71)], &mut violations);
        assert_eq!(
            violations,
            vec![Violation::DuplicateBill {
                day: 0,
                household: HouseholdId::new(0)
            }]
        );
    }

    #[test]
    fn oracle_flags_a_synthetic_ungrounded_allocation() {
        use crate::message::{Envelope, Message};
        use crate::runtime::{TraceEvent, TraceKind};
        use enki_core::time::Interval;
        let event = TraceEvent {
            at: 30,
            kind: TraceKind::Originated,
            envelope: Envelope {
                from: NodeId::Center,
                to: NodeId::Household(HouseholdId::new(3)),
                message: Message::Allocation {
                    day: 0,
                    window: Interval::new(0, 4).unwrap(),
                },
            },
        };
        let mut violations = Vec::new();
        check_trace(&[event], &mut violations);
        assert_eq!(
            violations,
            vec![Violation::UngroundedAllocation {
                day: 0,
                household: HouseholdId::new(3)
            }]
        );
    }

    #[test]
    fn oracle_flags_synthetic_disordered_records() {
        let mut rt = build(2, NetworkConfig::default(), 23);
        rt.run_days(2, 100);
        let mut records = rt.records().to_vec();
        records.swap(0, 1);
        let mut violations = Vec::new();
        check_records(&records, rt.center().roster(), &mut violations);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::DisorderedRecords { .. })));
    }
}
