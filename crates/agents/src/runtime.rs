//! Deterministic single-threaded runtime: a discrete-event loop driving
//! the center and household agents over the simulated network.
//!
//! Every tick: apply scheduled center crashes/recoveries, deliver due
//! messages (in deterministic queue order), then give the center and each
//! household (in roster order) a time step. All outbound messages go
//! through the [`SimNetwork`], so loss, latency, and injected faults
//! apply uniformly. Runs are exactly reproducible for a given seed.
//!
//! With [`Runtime::with_trace`], every originated and delivered envelope
//! is logged as a [`TraceEvent`] — the input the
//! [`oracle`](crate::oracle) checks protocol invariants against.
//!
//! With [`Runtime::with_telemetry`], the run emits structured telemetry:
//! one `day` span per protocol day, `runtime.*` counters, and (after
//! [`Runtime::run_days`]) `net.*` gauges exporting the network's
//! delivery and fault-injection statistics. Pair it with
//! [`Runtime::with_virtual_clock`] to advance a shared
//! [`VirtualClock`] by a fixed step each tick, making the exported
//! span tree byte-reproducible for a given seed.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use enki_core::household::HouseholdId;
use enki_telemetry::{
    FieldValue, Recorder, SloMonitor, SloSample, SloStatus, Telemetry, VirtualClock,
};
use serde::{Deserialize, Serialize};

use crate::center::{CenterAgent, DayRecord};
use crate::household::HouseholdAgent;
use crate::message::{Envelope, NodeId, Tick};
use crate::network::{NetworkStats, SimNetwork};

/// A scheduled center crash: the process dies at `crash_at` and restarts
/// (restoring from its durable checkpoint) at `recover_at`. Messages
/// addressed to the center while it is down are lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashSchedule {
    /// Tick the center crashes.
    pub crash_at: Tick,
    /// Tick the center comes back up.
    pub recover_at: Tick,
}

/// What happened to one envelope, as seen by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// The envelope left an agent's outbox (before any fault injection).
    Originated,
    /// The envelope reached its recipient's message handler.
    Delivered,
    /// The envelope was due for the center while it was crashed.
    LostCenterDown,
}

/// One logged protocol event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Tick the event happened.
    pub at: Tick,
    /// What happened.
    pub kind: TraceKind,
    /// The envelope.
    pub envelope: Envelope,
}

/// One day's SLO health summary: every standard objective's burn-rate
/// status as evaluated at the end of that protocol day.
#[derive(Debug, Clone, PartialEq)]
pub struct DayHealth {
    /// The day the summary covers.
    pub day: u64,
    /// Burn-rate status per configured SLO.
    pub statuses: Vec<SloStatus>,
}

/// The simulation runtime: one center, many households, one network.
#[derive(Debug)]
pub struct Runtime {
    network: SimNetwork,
    center: CenterAgent,
    households: Vec<HouseholdAgent>,
    now: Tick,
    crashes: Vec<CrashSchedule>,
    trace: Option<Vec<TraceEvent>>,
    telemetry: Option<Telemetry>,
    recorder: Option<Recorder>,
    tick_clock: Option<(Arc<VirtualClock>, Duration)>,
    slo: Option<SloMonitor>,
    slo_records_seen: usize,
    slo_counters: BTreeMap<String, u64>,
    day_health: Vec<DayHealth>,
}

impl Runtime {
    /// Assembles a runtime.
    #[must_use]
    pub fn new(
        network: SimNetwork,
        center: CenterAgent,
        households: Vec<HouseholdAgent>,
    ) -> Self {
        Self {
            network,
            center,
            households,
            now: 0,
            crashes: Vec::new(),
            trace: None,
            telemetry: None,
            recorder: None,
            tick_clock: None,
            slo: None,
            slo_records_seen: 0,
            slo_counters: BTreeMap::new(),
            day_health: Vec::new(),
        }
    }

    /// Schedules center crashes. Each schedule must satisfy
    /// `crash_at < recover_at`; schedules must not overlap.
    ///
    /// # Panics
    ///
    /// Panics if a schedule is inverted.
    #[must_use]
    pub fn with_center_crashes(mut self, crashes: Vec<CrashSchedule>) -> Self {
        assert!(
            crashes.iter().all(|c| c.crash_at < c.recover_at),
            "crash schedules must recover after they crash"
        );
        self.crashes = crashes;
        self
    }

    /// Enables the protocol event log consumed by the
    /// [`oracle`](crate::oracle).
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.trace = Some(Vec::new());
        self
    }

    /// Attaches a telemetry sink. The runtime emits one `day` span per
    /// protocol day plus `runtime.*` counters, and the center agent
    /// records its admission, allocation, and settlement metrics into
    /// the same sink.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.recorder = Some(telemetry.recorder());
        self.center.set_recorder(telemetry.recorder());
        // The run seed doubles as the trace seed: every agent derives
        // the same deterministic causal ids from it, so cross-agent
        // parent links line up without any id allocation on the wire.
        let seed = telemetry.meta().seed;
        self.center.set_trace_seed(seed);
        for household in &mut self.households {
            household.set_trace_seed(seed);
        }
        self.slo = Some(SloMonitor::standard());
        self.telemetry = Some(telemetry.clone());
        self
    }

    /// Drives a shared [`VirtualClock`] forward by `per_tick` after every
    /// simulation step. With the same clock injected into the telemetry
    /// sink, all span timestamps become a pure function of the tick
    /// count, so two runs with the same seed export identical traces.
    #[must_use]
    pub fn with_virtual_clock(mut self, clock: Arc<VirtualClock>, per_tick: Duration) -> Self {
        self.tick_clock = Some((clock, per_tick));
        self
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Tick {
        self.now
    }

    /// The center's settled day records.
    #[must_use]
    pub fn records(&self) -> &[DayRecord] {
        self.center.records()
    }

    /// The center agent (e.g. to inspect its checkpoint).
    #[must_use]
    pub fn center(&self) -> &CenterAgent {
        &self.center
    }

    /// Network delivery counters.
    #[must_use]
    pub fn network_stats(&self) -> NetworkStats {
        self.network.stats()
    }

    /// Messages currently queued in the network, for conservation
    /// checks against [`NetworkStats::conserves`].
    #[must_use]
    pub fn network_in_flight(&self) -> u64 {
        self.network.in_flight()
    }

    /// The logged protocol events, if tracing is enabled.
    #[must_use]
    pub fn trace(&self) -> &[TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// The household agent with the given id, if present.
    #[must_use]
    pub fn household(&self, id: HouseholdId) -> Option<&HouseholdAgent> {
        self.households.iter().find(|h| h.id() == id)
    }

    /// All household agents.
    #[must_use]
    pub fn households(&self) -> &[HouseholdAgent] {
        &self.households
    }

    /// Mutable access to a household agent, e.g. to inject a fault
    /// (such as a raw-report override) mid-run.
    pub fn household_mut(&mut self, id: HouseholdId) -> Option<&mut HouseholdAgent> {
        self.households.iter_mut().find(|h| h.id() == id)
    }

    /// Runs `ticks` simulation steps.
    pub fn run_ticks(&mut self, ticks: Tick) {
        for _ in 0..ticks {
            self.step();
        }
    }

    /// Runs whole protocol days of the given length. With telemetry
    /// attached, each day runs inside a `day` span and the network's
    /// cumulative statistics are exported as `net.*` gauges afterwards.
    pub fn run_days(&mut self, days: u64, day_length: Tick) {
        // A local recorder scopes the day spans without borrowing `self`
        // across the tick loop; it flushes into the shared sink on drop.
        let recorder = self.telemetry.as_ref().map(Telemetry::recorder);
        for _ in 0..days {
            let day = self.now / day_length.max(1);
            let span = recorder.as_ref().map(|r| {
                let mut s = r.span("day");
                s.record("day", day);
                s
            });
            self.run_ticks(day_length);
            drop(span);
            self.observe_day_slo(day);
        }
        drop(recorder);
        self.publish_network_stats();
    }

    /// SLO health summaries, one per completed day of
    /// [`run_days`](Self::run_days) with telemetry attached.
    #[must_use]
    pub fn day_health(&self) -> &[DayHealth] {
        &self.day_health
    }

    /// Reads the named counter and returns its increase since the last
    /// call (counters flush lazily, so a delta can land a day late —
    /// acceptable for windowed burn rates, and still deterministic).
    fn counter_delta(&mut self, name: &str) -> u64 {
        let now = self
            .telemetry
            .as_ref()
            .and_then(|t| t.counter(name))
            .unwrap_or(0);
        let before = self.slo_counters.insert(name.to_string(), now).unwrap_or(0);
        now.saturating_sub(before)
    }

    /// Feeds the day's outcomes to the SLO monitor, evaluates burn
    /// rates, exports them as `slo.*` gauges, and records the day's
    /// health summary. A day that closed without settlement counts as a
    /// deadline miss and dumps the flight recorder.
    fn observe_day_slo(&mut self, day: u64) {
        if self.slo.is_none() {
            return;
        }
        // Settlement outcomes come straight from the center's records —
        // the protocol's ground truth, immune to counter-flush lag.
        let records = self.center.records();
        let new_records = &records[self.slo_records_seen.min(records.len())..];
        let settled = new_records.iter().filter(|r| r.settlement.is_some()).count() as u64;
        let missed = new_records.len() as u64 - settled;
        let bills: u64 = new_records
            .iter()
            .filter_map(|r| r.settlement.as_ref())
            .map(|s| s.entries.len() as u64)
            .sum();
        self.slo_records_seen = records.len();
        let exact = self.counter_delta("solve.rung.exact");
        let degraded = self.counter_delta("solve.rung.local_search")
            + self.counter_delta("solve.rung.greedy")
            + self.counter_delta("solve.rung.as_reported")
            + self.counter_delta("solve.degraded");
        let Some(monitor) = self.slo.as_mut() else {
            return;
        };
        monitor.record(
            "deadline_compliance",
            SloSample {
                good: settled,
                bad: missed,
            },
        );
        monitor.record("at_most_one_bill", SloSample { good: bills, bad: 0 });
        if exact + degraded > 0 {
            monitor.record(
                "exact_rung",
                SloSample {
                    good: exact,
                    bad: degraded,
                },
            );
        }
        let statuses = monitor.evaluate();
        if let Some(r) = self.recorder.as_ref() {
            for status in &statuses {
                r.gauge(&format!("slo.{}.short_burn", status.name), status.short_burn);
                r.gauge(&format!("slo.{}.long_burn", status.name), status.long_burn);
            }
            if missed > 0 {
                let _ = r.postmortem(
                    "deadline_miss",
                    &[("day", FieldValue::U64(day)), ("missed", FieldValue::U64(missed))],
                );
            }
        }
        self.day_health.push(DayHealth { day, statuses });
    }

    /// Exports the network's cumulative delivery and fault-injection
    /// counters as `net.*` gauges. Called automatically at the end of
    /// [`run_days`](Self::run_days); call it directly after a bare
    /// [`run_ticks`](Self::run_ticks) loop if needed.
    pub fn publish_network_stats(&self) {
        let Some(r) = self.recorder.as_ref() else {
            return;
        };
        let stats = self.network.stats();
        let pairs: [(&str, u64); 11] = [
            ("net.sent", stats.sent),
            ("net.delivered", stats.delivered),
            ("net.dropped", stats.dropped),
            ("net.duplicated", stats.duplicated),
            ("net.partitioned", stats.partitioned),
            ("net.outage_dropped", stats.outage_dropped),
            ("net.partitions_scheduled", stats.partitions_scheduled),
            ("net.partitions_applied", stats.partitions_applied),
            ("net.outages_scheduled", stats.outages_scheduled),
            ("net.outages_applied", stats.outages_applied),
            ("net.in_flight", self.network.in_flight()),
        ];
        for (name, value) in pairs {
            #[allow(clippy::cast_precision_loss)]
            r.gauge(name, value as f64);
        }
    }

    fn record(&mut self, at: Tick, kind: TraceKind, envelope: Envelope) {
        if let Some(trace) = self.trace.as_mut() {
            trace.push(TraceEvent { at, kind, envelope });
        }
    }

    fn step(&mut self) {
        let now = self.now;

        // Apply scheduled crashes and recoveries first, so a crash at
        // tick t loses everything due at t, and a recovery at tick t
        // sees everything due at t.
        for i in 0..self.crashes.len() {
            let c = self.crashes[i];
            if c.crash_at == now {
                self.center.crash();
            }
            if c.recover_at == now {
                self.center.recover();
            }
        }

        let mut outbox: Vec<Envelope> = Vec::new();

        // Deliver everything due this tick.
        for envelope in self.network.due(now) {
            match envelope.to {
                NodeId::Center => {
                    if self.center.is_down() {
                        if let Some(r) = self.recorder.as_ref() {
                            r.incr("runtime.lost_center_down", 1);
                        }
                        self.record(now, TraceKind::LostCenterDown, envelope);
                        continue;
                    }
                    self.record(now, TraceKind::Delivered, envelope);
                    self.center
                        .on_message(now, envelope.from, envelope.message, &mut outbox);
                }
                NodeId::Household(id) => {
                    if self.households.iter().any(|h| h.id() == id) {
                        self.record(now, TraceKind::Delivered, envelope);
                    }
                    if let Some(agent) =
                        self.households.iter_mut().find(|h| h.id() == id)
                    {
                        agent.on_message(now, envelope.from, envelope.message, &mut outbox);
                    }
                }
            }
        }

        // Time steps: center first, then households in roster order.
        if !self.center.is_down() {
            self.center.on_tick(now, &mut outbox);
        }
        for agent in &mut self.households {
            agent.on_tick(now, &mut outbox);
        }

        for envelope in outbox {
            self.record(now, TraceKind::Originated, envelope);
            self.network.send(now, envelope);
        }
        if let Some(r) = self.recorder.as_ref() {
            r.incr("runtime.ticks", 1);
        }
        if let Some((clock, per_tick)) = self.tick_clock.as_ref() {
            clock.advance(*per_tick);
        }
        self.now += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::center::DayPlan;
    use crate::household::ReportSource;
    use crate::network::{FaultPlan, NetworkConfig, Partition};
    use enki_core::config::EnkiConfig;
    use enki_core::mechanism::Enki;
    use enki_sim::behavior::ReportStrategy;
    use enki_sim::neighborhood::TruthSource;
    use enki_sim::profile::{ProfileConfig, UsageProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(n: u32, network: NetworkConfig, seed: u64) -> Runtime {
        build_with_faults(n, network, FaultPlan::default(), seed)
    }

    fn build_with_faults(
        n: u32,
        network: NetworkConfig,
        faults: FaultPlan,
        seed: u64,
    ) -> Runtime {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = ProfileConfig::default();
        let households: Vec<HouseholdAgent> = (0..n)
            .map(|i| {
                HouseholdAgent::new(
                    HouseholdId::new(i),
                    UsageProfile::generate(&mut rng, &config),
                    TruthSource::Wide,
                    ReportStrategy::TruthfulWide,
                    ReportSource::Strategy,
                )
            })
            .collect();
        let center = CenterAgent::new(
            Enki::new(EnkiConfig::default()),
            (0..n).map(HouseholdId::new).collect(),
            DayPlan::default(),
            seed,
        );
        Runtime::new(
            SimNetwork::new(network, seed).with_faults(faults),
            center,
            households,
        )
    }

    #[test]
    fn reliable_network_settles_every_household() {
        let mut rt = build(8, NetworkConfig::default(), 1);
        rt.run_days(1, 100);
        let records = rt.records();
        assert_eq!(records.len(), 1);
        let record = &records[0];
        assert_eq!(record.participants.len(), 8);
        assert!(record.missing_reports.is_empty());
        assert!(record.missing_readings.is_empty());
        let st = record.settlement.as_ref().unwrap();
        assert!(st.center_utility >= 0.0);
        // Truthful-wide households follow their allocations.
        assert!(st.entries.iter().all(|e| !e.defected));
        // Every household received its bill.
        for i in 0..8u32 {
            let agent = rt.household(HouseholdId::new(i)).unwrap();
            assert_eq!(agent.bills().len(), 1);
        }
    }

    #[test]
    fn bills_match_settlement_payments() {
        let mut rt = build(5, NetworkConfig::default(), 2);
        rt.run_days(1, 100);
        let st = rt.records()[0].settlement.clone().unwrap();
        for entry in &st.entries {
            let agent = rt.household(entry.household).unwrap();
            let (_, amount) = agent.bills()[0];
            assert!((amount - entry.payment).abs() < 1e-12);
        }
    }

    #[test]
    fn lossy_network_with_retries_still_settles() {
        let mut rt = build(10, NetworkConfig::lossy(0.3), 3);
        rt.run_days(3, 100);
        let records = rt.records();
        assert_eq!(records.len(), 3);
        for record in records {
            // Retries push reports through a 30%-loss link well before the
            // deadline; every day settles with full participation.
            assert_eq!(
                record.participants.len() + record.missing_reports.len(),
                10
            );
            assert!(
                record.participants.len() >= 9,
                "day {}: only {} participants",
                record.day,
                record.participants.len()
            );
            if let Some(st) = &record.settlement {
                assert!(st.center_utility >= -1e-9);
            }
        }
        assert!(rt.network_stats().dropped > 0, "loss was actually injected");
    }

    #[test]
    fn multi_day_run_feeds_the_ecc() {
        let mut rt = build(4, NetworkConfig::default(), 4);
        rt.run_days(5, 100);
        for i in 0..4u32 {
            let agent = rt.household(HouseholdId::new(i)).unwrap();
            assert_eq!(agent.ecc().days_observed(), 5);
            assert_eq!(agent.bills().len(), 5);
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let run = |seed: u64| -> Vec<f64> {
            let mut rt = build(6, NetworkConfig::lossy(0.2), seed);
            rt.run_days(2, 100);
            rt.records()
                .iter()
                .filter_map(|r| r.settlement.as_ref())
                .flat_map(|s| s.entries.iter().map(|e| e.payment))
                .collect()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn ecc_driven_reports_settle_end_to_end() {
        let mut rng = StdRng::seed_from_u64(5);
        let config = ProfileConfig::default();
        let households: Vec<HouseholdAgent> = (0..4u32)
            .map(|i| {
                HouseholdAgent::new(
                    HouseholdId::new(i),
                    UsageProfile::generate(&mut rng, &config),
                    TruthSource::Narrow,
                    ReportStrategy::TruthfulNarrow,
                    ReportSource::Ecc { margin: 2 },
                )
            })
            .collect();
        let center = CenterAgent::new(
            Enki::new(EnkiConfig::default()),
            (0..4).map(HouseholdId::new).collect(),
            DayPlan::default(),
            5,
        );
        let mut rt = Runtime::new(
            SimNetwork::new(NetworkConfig::default(), 5),
            center,
            households,
        );
        rt.run_days(4, 100);
        assert_eq!(rt.records().len(), 4);
        for record in rt.records() {
            assert_eq!(record.participants.len(), 4);
        }
    }

    #[test]
    fn totally_partitioned_household_is_excluded_but_day_settles() {
        // Drop everything: no reports ever arrive, and each day closes
        // with an empty record instead of wedging the protocol.
        let mut rt = build(3, NetworkConfig::lossy(1.0), 6);
        rt.run_days(2, 100);
        assert_eq!(rt.records().len(), 2);
        for record in rt.records() {
            assert!(record.settlement.is_none());
            assert_eq!(record.missing_reports.len(), 3);
        }
    }

    #[test]
    fn report_phase_partition_excludes_household_but_day_settles() {
        // Household 2 is cut off for the whole report phase (and then
        // some) of day 0; the other households settle without it.
        let faults = FaultPlan {
            partitions: vec![Partition {
                household: HouseholdId::new(2),
                from: 0,
                heals_at: 45,
            }],
            ..FaultPlan::default()
        };
        let mut rt = build_with_faults(4, NetworkConfig::lossy(0.2), faults, 8);
        rt.run_days(2, 100);
        let records = rt.records();
        assert_eq!(records.len(), 2);
        let day0 = &records[0];
        assert!(day0.missing_reports.contains(&HouseholdId::new(2)));
        assert_eq!(day0.participants.len(), 3);
        let st = day0.settlement.as_ref().unwrap();
        assert!(st.center_utility >= -1e-9);
        // Day 1: the partition healed, everyone participates again.
        assert_eq!(records[1].participants.len(), 4);
    }

    #[test]
    fn meter_phase_partition_settles_household_as_cooperative() {
        // Household 1 reports fine but is cut off for the whole meter
        // phase of day 0: its reading is lost, so it settles cooperative
        // (never as a phantom defection) and is still billed on paper.
        let faults = FaultPlan {
            partitions: vec![Partition {
                household: HouseholdId::new(1),
                from: 30,
                heals_at: 75,
            }],
            ..FaultPlan::default()
        };
        let mut rt = build_with_faults(4, NetworkConfig::lossy(0.1), faults, 9);
        rt.run_days(1, 100);
        let record = &rt.records()[0];
        assert!(record.participants.contains(&HouseholdId::new(1)));
        assert!(record.missing_readings.contains(&HouseholdId::new(1)));
        let st = record.settlement.as_ref().unwrap();
        let entry = st
            .entries
            .iter()
            .find(|e| e.household == HouseholdId::new(1))
            .unwrap();
        assert!(!entry.defected, "a lost reading is not a defection");
        assert!(st.center_utility >= -1e-9);
    }

    #[test]
    fn center_crash_mid_day_recovers_and_still_settles() {
        let mut rt = build(5, NetworkConfig::default(), 10).with_center_crashes(vec![
            CrashSchedule {
                crash_at: 40,
                recover_at: 50,
            },
        ]);
        rt.run_days(1, 100);
        let records = rt.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].participants.len(), 5);
        assert!(records[0].settlement.is_some());
        // Readings lost while the center was down were re-sent by the
        // household retry loop before the meter deadline.
        assert!(records[0].missing_readings.is_empty());
    }

    #[test]
    fn telemetry_run_exports_a_deterministic_validating_trace() {
        use enki_telemetry::{to_jsonl, validate_jsonl, FieldValue, Telemetry, VirtualClock};
        let run = |seed: u64| -> (String, Telemetry) {
            let clock = VirtualClock::new();
            let telemetry =
                Telemetry::with_virtual_clock("runtime-test", seed, Arc::clone(&clock));
            let mut rt = build(4, NetworkConfig::lossy(0.2), seed)
                .with_telemetry(&telemetry)
                .with_virtual_clock(clock, Duration::from_millis(1));
            rt.run_days(2, 100);
            drop(rt); // flush the runtime's and the center's recorders
            (to_jsonl(&telemetry), telemetry)
        };
        let (a, telemetry) = run(33);
        let (b, _) = run(33);
        assert_eq!(a, b, "same seed must replay byte-identically");
        let (c, _) = run(34);
        assert_ne!(a, c, "a different seed changes the trace");

        let summary = validate_jsonl(&a).expect("trace passes schema self-validation");
        assert!(summary.spans >= 2, "two day spans expected");
        assert!(summary.gauges >= 11, "net.* gauges exported");

        let spans = telemetry.spans();
        let days: Vec<&enki_telemetry::SpanRecord> =
            spans.iter().filter(|s| s.name == "day").collect();
        assert_eq!(days.len(), 2);
        assert_eq!(days[0].fields[0], ("day".to_string(), FieldValue::U64(0)));
        assert_eq!(days[1].fields[0], ("day".to_string(), FieldValue::U64(1)));
        // Each day span covers exactly 100 ticks of 1 ms virtual time.
        for day in days {
            assert_eq!(day.end_ns - day.start_ns, 100_000_000);
        }

        assert_eq!(telemetry.counter("runtime.ticks"), Some(200));
        assert_eq!(telemetry.counter("center.day.started"), Some(2));
        assert_eq!(telemetry.counter("center.day.settled"), Some(2));
        let sent = telemetry.gauge("net.sent").expect("net.sent gauge");
        assert!(sent > 0.0);
    }

    #[test]
    fn trace_logs_origins_and_deliveries() {
        let mut rt = build(2, NetworkConfig::default(), 11).with_trace();
        rt.run_days(1, 100);
        let trace = rt.trace();
        assert!(trace
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Originated)));
        assert!(trace.iter().any(|e| matches!(e.kind, TraceKind::Delivered)));
        // On a reliable network with no crash, nothing is lost.
        assert!(!trace
            .iter()
            .any(|e| matches!(e.kind, TraceKind::LostCenterDown)));
    }
}
