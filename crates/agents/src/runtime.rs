//! Deterministic single-threaded runtime: a discrete-event loop driving
//! the center and household agents over the simulated network.
//!
//! Every tick: deliver due messages (in deterministic queue order), then
//! give the center and each household (in roster order) a time step. All
//! outbound messages go through the [`SimNetwork`], so loss and latency
//! apply uniformly. Runs are exactly reproducible for a given seed.

use enki_core::household::HouseholdId;

use crate::center::{CenterAgent, DayRecord};
use crate::household::HouseholdAgent;
use crate::message::{Envelope, NodeId, Tick};
use crate::network::{NetworkStats, SimNetwork};

/// The simulation runtime: one center, many households, one network.
#[derive(Debug)]
pub struct Runtime {
    network: SimNetwork,
    center: CenterAgent,
    households: Vec<HouseholdAgent>,
    now: Tick,
}

impl Runtime {
    /// Assembles a runtime.
    #[must_use]
    pub fn new(
        network: SimNetwork,
        center: CenterAgent,
        households: Vec<HouseholdAgent>,
    ) -> Self {
        Self {
            network,
            center,
            households,
            now: 0,
        }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Tick {
        self.now
    }

    /// The center's settled day records.
    #[must_use]
    pub fn records(&self) -> &[DayRecord] {
        self.center.records()
    }

    /// Network delivery counters.
    #[must_use]
    pub fn network_stats(&self) -> NetworkStats {
        self.network.stats()
    }

    /// The household agent with the given id, if present.
    #[must_use]
    pub fn household(&self, id: HouseholdId) -> Option<&HouseholdAgent> {
        self.households.iter().find(|h| h.id() == id)
    }

    /// Runs `ticks` simulation steps.
    pub fn run_ticks(&mut self, ticks: Tick) {
        for _ in 0..ticks {
            self.step();
        }
    }

    /// Runs whole protocol days of the given length.
    pub fn run_days(&mut self, days: u64, day_length: Tick) {
        self.run_ticks(days * day_length);
    }

    fn step(&mut self) {
        let now = self.now;
        let mut outbox: Vec<Envelope> = Vec::new();

        // Deliver everything due this tick.
        for envelope in self.network.due(now) {
            match envelope.to {
                NodeId::Center => {
                    self.center
                        .on_message(now, envelope.from, envelope.message, &mut outbox);
                }
                NodeId::Household(id) => {
                    if let Some(agent) =
                        self.households.iter_mut().find(|h| h.id() == id)
                    {
                        agent.on_message(now, envelope.from, envelope.message, &mut outbox);
                    }
                }
            }
        }

        // Time steps: center first, then households in roster order.
        self.center.on_tick(now, &mut outbox);
        for agent in &mut self.households {
            agent.on_tick(now, &mut outbox);
        }

        for envelope in outbox {
            self.network.send(now, envelope);
        }
        self.now += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::center::DayPlan;
    use crate::household::ReportSource;
    use crate::network::NetworkConfig;
    use enki_core::config::EnkiConfig;
    use enki_core::mechanism::Enki;
    use enki_sim::behavior::ReportStrategy;
    use enki_sim::neighborhood::TruthSource;
    use enki_sim::profile::{ProfileConfig, UsageProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(n: u32, network: NetworkConfig, seed: u64) -> Runtime {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = ProfileConfig::default();
        let households: Vec<HouseholdAgent> = (0..n)
            .map(|i| {
                HouseholdAgent::new(
                    HouseholdId::new(i),
                    UsageProfile::generate(&mut rng, &config),
                    TruthSource::Wide,
                    ReportStrategy::TruthfulWide,
                    ReportSource::Strategy,
                )
            })
            .collect();
        let center = CenterAgent::new(
            Enki::new(EnkiConfig::default()),
            (0..n).map(HouseholdId::new).collect(),
            DayPlan::default(),
            seed,
        );
        Runtime::new(SimNetwork::new(network, seed), center, households)
    }

    #[test]
    fn reliable_network_settles_every_household() {
        let mut rt = build(8, NetworkConfig::default(), 1);
        rt.run_days(1, 100);
        let records = rt.records();
        assert_eq!(records.len(), 1);
        let record = &records[0];
        assert_eq!(record.participants.len(), 8);
        assert!(record.missing_reports.is_empty());
        assert!(record.missing_readings.is_empty());
        let st = record.settlement.as_ref().unwrap();
        assert!(st.center_utility >= 0.0);
        // Truthful-wide households follow their allocations.
        assert!(st.entries.iter().all(|e| !e.defected));
        // Every household received its bill.
        for i in 0..8u32 {
            let agent = rt.household(HouseholdId::new(i)).unwrap();
            assert_eq!(agent.bills().len(), 1);
        }
    }

    #[test]
    fn bills_match_settlement_payments() {
        let mut rt = build(5, NetworkConfig::default(), 2);
        rt.run_days(1, 100);
        let st = rt.records()[0].settlement.clone().unwrap();
        for entry in &st.entries {
            let agent = rt.household(entry.household).unwrap();
            let (_, amount) = agent.bills()[0];
            assert!((amount - entry.payment).abs() < 1e-12);
        }
    }

    #[test]
    fn lossy_network_with_retries_still_settles() {
        let mut rt = build(10, NetworkConfig::lossy(0.3), 3);
        rt.run_days(3, 100);
        let records = rt.records();
        assert_eq!(records.len(), 3);
        for record in records {
            // Retries push reports through a 30%-loss link well before the
            // deadline; every day settles with full participation.
            assert_eq!(
                record.participants.len() + record.missing_reports.len(),
                10
            );
            assert!(
                record.participants.len() >= 9,
                "day {}: only {} participants",
                record.day,
                record.participants.len()
            );
            if let Some(st) = &record.settlement {
                assert!(st.center_utility >= -1e-9);
            }
        }
        assert!(rt.network_stats().dropped > 0, "loss was actually injected");
    }

    #[test]
    fn multi_day_run_feeds_the_ecc() {
        let mut rt = build(4, NetworkConfig::default(), 4);
        rt.run_days(5, 100);
        for i in 0..4u32 {
            let agent = rt.household(HouseholdId::new(i)).unwrap();
            assert_eq!(agent.ecc().days_observed(), 5);
            assert_eq!(agent.bills().len(), 5);
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let run = |seed: u64| -> Vec<f64> {
            let mut rt = build(6, NetworkConfig::lossy(0.2), seed);
            rt.run_days(2, 100);
            rt.records()
                .iter()
                .filter_map(|r| r.settlement.as_ref())
                .flat_map(|s| s.entries.iter().map(|e| e.payment))
                .collect()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn ecc_driven_reports_settle_end_to_end() {
        let mut rng = StdRng::seed_from_u64(5);
        let config = ProfileConfig::default();
        let households: Vec<HouseholdAgent> = (0..4u32)
            .map(|i| {
                HouseholdAgent::new(
                    HouseholdId::new(i),
                    UsageProfile::generate(&mut rng, &config),
                    TruthSource::Narrow,
                    ReportStrategy::TruthfulNarrow,
                    ReportSource::Ecc { margin: 2 },
                )
            })
            .collect();
        let center = CenterAgent::new(
            Enki::new(EnkiConfig::default()),
            (0..4).map(HouseholdId::new).collect(),
            DayPlan::default(),
            5,
        );
        let mut rt = Runtime::new(
            SimNetwork::new(NetworkConfig::default(), 5),
            center,
            households,
        );
        rt.run_days(4, 100);
        assert_eq!(rt.records().len(), 4);
        for record in rt.records() {
            assert_eq!(record.participants.len(), 4);
        }
    }

    #[test]
    fn totally_partitioned_household_is_excluded_but_day_settles() {
        // Drop everything: no reports ever arrive, and each day closes
        // with an empty record instead of wedging the protocol.
        let mut rt = build(3, NetworkConfig::lossy(1.0), 6);
        rt.run_days(2, 100);
        assert_eq!(rt.records().len(), 2);
        for record in rt.records() {
            assert!(record.settlement.is_none());
            assert_eq!(record.missing_reports.len(), 3);
        }
    }

}
