//! The neighborhood-center agent.
//!
//! Drives the daily protocol: broadcasts `DayStart`, collects reports
//! until the report deadline (late or duplicate reports are handled
//! idempotently), allocates with the greedy mechanism, pushes allocations,
//! collects meter readings until the meter deadline, settles, and bills.
//!
//! **Failure handling.** A household whose report never arrives is simply
//! excluded from the day — the paper's mechanism has no basis to allocate
//! or bill it. A household that was allocated but whose meter reading was
//! lost is settled *as if it followed its allocation*: real smart meters
//! are read eventually, so the cooperative window is the neutral
//! assumption (and the one that cannot create a phantom defection score).

use std::collections::BTreeMap;

use enki_core::household::{HouseholdId, Preference, Report};
use enki_core::mechanism::{AllocationOutcome, Enki, Settlement};
use enki_core::time::Interval;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::message::{Envelope, Message, NodeId, Tick};

/// Timing of one protocol day, in ticks relative to the day's start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DayPlan {
    /// Total ticks per day.
    pub day_length: Tick,
    /// Reports must arrive within this many ticks of the day start.
    pub report_offset: Tick,
    /// Meter readings are collected until this offset, then the day
    /// settles.
    pub meter_offset: Tick,
}

impl Default for DayPlan {
    fn default() -> Self {
        Self {
            day_length: 100,
            report_offset: 30,
            meter_offset: 70,
        }
    }
}

impl DayPlan {
    /// Validates the ordering `0 < report < meter < day_length`.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        0 < self.report_offset
            && self.report_offset < self.meter_offset
            && self.meter_offset < self.day_length
    }
}

/// Everything the center recorded about one settled day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayRecord {
    /// Day number.
    pub day: u64,
    /// Households that reported in time and were allocated.
    pub participants: Vec<HouseholdId>,
    /// Roster members whose reports never arrived.
    pub missing_reports: Vec<HouseholdId>,
    /// Participants whose meter readings never arrived (settled as
    /// cooperative).
    pub missing_readings: Vec<HouseholdId>,
    /// The settlement, when at least one household participated.
    pub settlement: Option<Settlement>,
}

#[derive(Debug, Clone, PartialEq)]
struct DayInProgress {
    day: u64,
    report_deadline: Tick,
    meter_deadline: Tick,
    reports: BTreeMap<HouseholdId, Preference>,
    allocation: Option<(Vec<Report>, AllocationOutcome)>,
    readings: BTreeMap<HouseholdId, Interval>,
    last_day_start: Tick,
}

/// Ticks between repeated `DayStart` broadcasts to households that have
/// not reported yet.
const REBROADCAST_INTERVAL: Tick = 5;

/// The center agent.
#[derive(Debug)]
pub struct CenterAgent {
    enki: Enki,
    roster: Vec<HouseholdId>,
    plan: DayPlan,
    rng: StdRng,
    next_day: u64,
    current: Option<DayInProgress>,
    records: Vec<DayRecord>,
}

impl CenterAgent {
    /// Creates a center driving the given roster.
    ///
    /// # Panics
    ///
    /// Panics if the plan's deadlines are not strictly ordered.
    #[must_use]
    pub fn new(enki: Enki, roster: Vec<HouseholdId>, plan: DayPlan, seed: u64) -> Self {
        assert!(plan.is_valid(), "day plan deadlines must be ordered");
        Self {
            enki,
            roster,
            plan,
            rng: StdRng::seed_from_u64(seed),
            next_day: 0,
            current: None,
            records: Vec::new(),
        }
    }

    /// The center's network address.
    #[must_use]
    pub fn node_id(&self) -> NodeId {
        NodeId::Center
    }

    /// Settled day records so far.
    #[must_use]
    pub fn records(&self) -> &[DayRecord] {
        &self.records
    }

    /// Handles a delivered message.
    pub fn on_message(
        &mut self,
        _now: Tick,
        from: NodeId,
        message: Message,
        _outbox: &mut Vec<Envelope>,
    ) {
        let NodeId::Household(household) = from else {
            return;
        };
        let Some(current) = self.current.as_mut() else {
            return;
        };
        match message {
            Message::SubmitReport { day, preference }
                // Idempotent: duplicates overwrite identically; late
                // reports (after allocation) are ignored.
                if day == current.day && current.allocation.is_none() => {
                    current.reports.insert(household, preference);
                }
            Message::MeterReading { day, window }
                if day == current.day && current.allocation.is_some() => {
                    current.readings.insert(household, window);
                }
            _ => {}
        }
    }

    /// Advances the protocol: starts days, allocates at the report
    /// deadline, settles at the meter deadline.
    pub fn on_tick(&mut self, now: Tick, outbox: &mut Vec<Envelope>) {
        // Start a new day on the day boundary.
        if now.is_multiple_of(self.plan.day_length) && self.current.is_none() {
            let day = self.next_day;
            self.next_day += 1;
            let report_deadline = now + self.plan.report_offset;
            let meter_deadline = now + self.plan.meter_offset;
            self.current = Some(DayInProgress {
                day,
                report_deadline,
                meter_deadline,
                reports: BTreeMap::new(),
                allocation: None,
                readings: BTreeMap::new(),
                last_day_start: now,
            });
            for &h in &self.roster {
                outbox.push(Envelope {
                    from: NodeId::Center,
                    to: NodeId::Household(h),
                    message: Message::DayStart {
                        day,
                        report_deadline,
                        meter_deadline,
                    },
                });
            }
            return;
        }

        let Some(current) = self.current.as_mut() else {
            return;
        };

        // Re-broadcast DayStart to silent households while reports are
        // still open — the original broadcast may have been lost.
        if current.allocation.is_none()
            && now < current.report_deadline
            && now >= current.last_day_start + REBROADCAST_INTERVAL
        {
            current.last_day_start = now;
            for &h in &self.roster {
                if !current.reports.contains_key(&h) {
                    outbox.push(Envelope {
                        from: NodeId::Center,
                        to: NodeId::Household(h),
                        message: Message::DayStart {
                            day: current.day,
                            report_deadline: current.report_deadline,
                            meter_deadline: current.meter_deadline,
                        },
                    });
                }
            }
        }

        // Allocate once the report deadline passes.
        if current.allocation.is_none() && now >= current.report_deadline {
            if current.reports.is_empty() {
                // Nobody reported: close the day with an empty record.
                let record = DayRecord {
                    day: current.day,
                    participants: Vec::new(),
                    missing_reports: self.roster.clone(),
                    missing_readings: Vec::new(),
                    settlement: None,
                };
                self.records.push(record);
                self.current = None;
                return;
            }
            let reports: Vec<Report> = current
                .reports
                .iter()
                .map(|(&h, &p)| Report::new(h, p))
                .collect();
            let outcome = self
                .enki
                .allocate(&reports, &mut self.rng)
                .expect("non-empty, duplicate-free reports");
            for assignment in &outcome.assignments {
                outbox.push(Envelope {
                    from: NodeId::Center,
                    to: NodeId::Household(assignment.household),
                    message: Message::Allocation {
                        day: current.day,
                        window: assignment.window,
                    },
                });
            }
            current.allocation = Some((reports, outcome));
            return;
        }

        // Settle once the meter deadline passes.
        if now >= current.meter_deadline {
            if let Some((reports, outcome)) = current.allocation.take() {
                let mut missing_readings = Vec::new();
                let consumption: Vec<Interval> = reports
                    .iter()
                    .zip(&outcome.assignments)
                    .map(|(r, a)| match current.readings.get(&r.household) {
                        Some(&w) => w,
                        None => {
                            missing_readings.push(r.household);
                            a.window // smart-meter fallback: cooperative
                        }
                    })
                    .collect();
                let settlement = self
                    .enki
                    .settle(&reports, &outcome, &consumption)
                    .expect("settlement inputs are aligned by construction");
                for entry in &settlement.entries {
                    outbox.push(Envelope {
                        from: NodeId::Center,
                        to: NodeId::Household(entry.household),
                        message: Message::Bill {
                            day: current.day,
                            amount: entry.payment,
                        },
                    });
                }
                let participants: Vec<HouseholdId> =
                    reports.iter().map(|r| r.household).collect();
                let missing_reports: Vec<HouseholdId> = self
                    .roster
                    .iter()
                    .copied()
                    .filter(|h| !participants.contains(h))
                    .collect();
                self.records.push(DayRecord {
                    day: current.day,
                    participants,
                    missing_reports,
                    missing_readings,
                    settlement: Some(settlement),
                });
            }
            self.current = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enki_core::config::EnkiConfig;

    fn center(n: u32) -> CenterAgent {
        CenterAgent::new(
            Enki::new(EnkiConfig::default()),
            (0..n).map(HouseholdId::new).collect(),
            DayPlan::default(),
            1,
        )
    }

    fn pref(b: u8, e: u8, v: u8) -> Preference {
        Preference::new(b, e, v).unwrap()
    }

    #[test]
    fn day_plan_validation() {
        assert!(DayPlan::default().is_valid());
        assert!(!DayPlan {
            day_length: 10,
            report_offset: 8,
            meter_offset: 5,
        }
        .is_valid());
    }

    #[test]
    fn day_start_broadcasts_to_roster() {
        let mut c = center(3);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        assert_eq!(outbox.len(), 3);
        assert!(outbox
            .iter()
            .all(|e| matches!(e.message, Message::DayStart { day: 0, .. })));
    }

    #[test]
    fn reports_allocate_at_deadline() {
        let mut c = center(2);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        outbox.clear();
        for i in 0..2u32 {
            c.on_message(
                5,
                NodeId::Household(HouseholdId::new(i)),
                Message::SubmitReport {
                    day: 0,
                    preference: pref(18, 22, 2),
                },
                &mut outbox,
            );
        }
        c.on_tick(30, &mut outbox);
        let allocations: Vec<_> = outbox
            .iter()
            .filter(|e| matches!(e.message, Message::Allocation { .. }))
            .collect();
        assert_eq!(allocations.len(), 2);
    }

    #[test]
    fn duplicate_reports_are_idempotent() {
        let mut c = center(1);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        for _ in 0..5 {
            c.on_message(
                3,
                NodeId::Household(HouseholdId::new(0)),
                Message::SubmitReport {
                    day: 0,
                    preference: pref(18, 22, 2),
                },
                &mut outbox,
            );
        }
        outbox.clear();
        c.on_tick(30, &mut outbox);
        assert_eq!(
            outbox
                .iter()
                .filter(|e| matches!(e.message, Message::Allocation { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn missing_reading_settles_as_cooperative() {
        let mut c = center(2);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        for i in 0..2u32 {
            c.on_message(
                5,
                NodeId::Household(HouseholdId::new(i)),
                Message::SubmitReport {
                    day: 0,
                    preference: pref(18, 22, 2),
                },
                &mut outbox,
            );
        }
        c.on_tick(30, &mut outbox);
        // Only household 0 sends its reading.
        let alloc0 = outbox
            .iter()
            .find_map(|e| match (e.to, e.message) {
                (NodeId::Household(h), Message::Allocation { window, .. })
                    if h == HouseholdId::new(0) =>
                {
                    Some(window)
                }
                _ => None,
            })
            .unwrap();
        c.on_message(
            40,
            NodeId::Household(HouseholdId::new(0)),
            Message::MeterReading {
                day: 0,
                window: alloc0,
            },
            &mut outbox,
        );
        outbox.clear();
        c.on_tick(70, &mut outbox);
        let record = c.records().last().unwrap();
        assert_eq!(record.missing_readings, vec![HouseholdId::new(1)]);
        let st = record.settlement.as_ref().unwrap();
        assert!(st.entries.iter().all(|e| !e.defected));
        assert!(st.center_utility >= 0.0);
    }

    #[test]
    fn silent_household_is_excluded() {
        let mut c = center(2);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        c.on_message(
            5,
            NodeId::Household(HouseholdId::new(0)),
            Message::SubmitReport {
                day: 0,
                preference: pref(18, 22, 2),
            },
            &mut outbox,
        );
        c.on_tick(30, &mut outbox);
        c.on_tick(70, &mut outbox);
        let record = c.records().last().unwrap();
        assert_eq!(record.participants, vec![HouseholdId::new(0)]);
        assert_eq!(record.missing_reports, vec![HouseholdId::new(1)]);
    }

    #[test]
    fn empty_day_closes_cleanly() {
        let mut c = center(2);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        c.on_tick(30, &mut outbox);
        let record = c.records().last().unwrap();
        assert!(record.settlement.is_none());
        assert_eq!(record.missing_reports.len(), 2);
        // The next day still starts.
        outbox.clear();
        c.on_tick(100, &mut outbox);
        assert!(outbox
            .iter()
            .all(|e| matches!(e.message, Message::DayStart { day: 1, .. })));
    }

    #[test]
    fn late_reports_are_ignored_after_allocation() {
        let mut c = center(2);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        c.on_message(
            5,
            NodeId::Household(HouseholdId::new(0)),
            Message::SubmitReport {
                day: 0,
                preference: pref(18, 22, 2),
            },
            &mut outbox,
        );
        c.on_tick(30, &mut outbox); // allocates with household 0 only
        c.on_message(
            31,
            NodeId::Household(HouseholdId::new(1)),
            Message::SubmitReport {
                day: 0,
                preference: pref(18, 22, 2),
            },
            &mut outbox,
        );
        c.on_tick(70, &mut outbox);
        let record = c.records().last().unwrap();
        assert_eq!(record.participants, vec![HouseholdId::new(0)]);
    }
}
