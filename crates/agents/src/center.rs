//! The neighborhood-center agent.
//!
//! Drives the daily protocol: broadcasts `DayStart`, collects reports
//! until the report deadline (late or duplicate reports are handled
//! idempotently), allocates with the greedy mechanism, pushes allocations,
//! collects meter readings until the meter deadline, settles, and bills.
//!
//! **Failure handling.** A household whose report never arrives is simply
//! excluded from the day — the paper's mechanism has no basis to allocate
//! or bill it. A household that was allocated but whose meter reading was
//! lost is settled *as if it followed its allocation*: real smart meters
//! are read eventually, so the cooperative window is the neutral
//! assumption (and the one that cannot create a phantom defection score).
//!
//! **Admission control.** Reports arrive raw off the wire and are never
//! trusted: at the report deadline the whole batch runs through the
//! admission layer ([`enki_core::validation`]). Accepted and clamped
//! reports enter the allocation; quarantined households fall back to the
//! center's standing profile of their demand (the last preference it
//! admitted from them — its model of their ECC's reporting), or are
//! excluded if the center has never admitted one. Per-day quarantine and
//! clamp decisions are recorded in the [`DayRecord`], so a settled day
//! can always answer why a household was billed for a given window. A
//! failed allocation or settlement closes the day without a settlement
//! instead of taking the center down.
//!
//! **Crash and recovery.** The center writes a durable
//! [`CenterCheckpoint`] at every phase boundary — day start, allocation
//! computed, day settled. [`CenterAgent::crash`] wipes all in-memory
//! protocol state (as a process crash would); [`CenterAgent::recover`]
//! restores from the last checkpoint, including the allocation RNG state,
//! so the post-recovery allocation stream is identical to an uncrashed
//! run. Reports and readings received *between* phase boundaries are
//! volatile and lost on crash — household retry loops re-deliver them.
//! Because a settled day's record and RNG state are committed atomically
//! with its bills, recovery can never re-settle a day or double-bill.

use std::collections::BTreeMap;
use std::time::Duration;

use enki_core::household::{HouseholdId, Preference, Report};
use enki_core::load::LoadProfile;
use enki_core::mechanism::{AllocationOutcome, Assignment, Enki, Settlement};
use enki_core::time::Interval;
use enki_core::validation::{RawPreference, RawReport};
use enki_solver::prelude::{AllocationProblem, AnytimePipeline};
use enki_telemetry::trace::{stage, TraceContext};
use enki_telemetry::{Recorder, VirtualClock};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::message::{Envelope, Message, NodeId, Tick};

/// Timing of one protocol day, in ticks relative to the day's start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DayPlan {
    /// Total ticks per day.
    pub day_length: Tick,
    /// Reports must arrive within this many ticks of the day start.
    pub report_offset: Tick,
    /// Meter readings are collected until this offset, then the day
    /// settles.
    pub meter_offset: Tick,
}

impl Default for DayPlan {
    fn default() -> Self {
        Self {
            day_length: 100,
            report_offset: 30,
            meter_offset: 70,
        }
    }
}

impl DayPlan {
    /// Validates the ordering `0 < report < meter < day_length`.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        0 < self.report_offset
            && self.report_offset < self.meter_offset
            && self.meter_offset < self.day_length
    }
}

/// Configuration for refining the greedy allocation through the
/// [`enki_solver`] anytime pipeline.
///
/// The center's protocol obligation is met by the greedy mechanism alone;
/// the pipeline is a *refinement*. At the report deadline the admitted
/// preferences become an [`AllocationProblem`] and the racing portfolio
/// (speculative branch-and-bound against seeded local search, for a
/// thread budget ≥ 2) gets `exact_node_limit` search nodes to beat the
/// greedy windows; the refined schedule is adopted only when its planned
/// cost is strictly lower. The solve is budgeted in **nodes only**: the
/// pipeline runs on a virtual clock that never advances, so the deadline
/// never fires and the result is a pure function of the admitted reports
/// and the day's seed, independent of host load, thread count, or
/// scheduling. That keeps the center's checkpoints replayable — a
/// crash-recovered center re-derives the same refined windows — and its
/// telemetry traces byte-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Thread budget handed to [`AnytimePipeline::with_threads`]. `1`
    /// runs the sequential degradation ladder; `≥ 2` races the exact and
    /// local-search rungs on the solver's work-stealing pool. Results
    /// are bit-identical at every thread count.
    pub threads: usize,
    /// Node budget for the exact rung — its only budget (see above).
    pub exact_node_limit: u64,
    /// Random restarts for the local-search rung.
    pub restarts: usize,
}

impl Default for PipelineConfig {
    /// Two threads (the racing portfolio), a 50 000-node exact budget —
    /// ample to prove day-sized neighborhoods optimal — and 8 restarts.
    fn default() -> Self {
        Self {
            threads: 2,
            exact_node_limit: 50_000,
            restarts: 8,
        }
    }
}

impl PipelineConfig {
    /// Splits the machine's thread budget with a deployment that already
    /// runs `occupied` OS threads (e.g. one per household ECC plus the
    /// center in [`crate::threaded`]): the solver keeps at most the
    /// spare parallelism, but never drops below 2 threads — the racing
    /// portfolio — unless it was configured sequential to begin with.
    /// Because results are bit-identical at every thread count, the
    /// split is purely a scheduling decision and never changes outcomes.
    #[must_use]
    pub fn split_for(self, occupied: usize) -> Self {
        let available =
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let spare = available.saturating_sub(occupied).max(2);
        Self {
            threads: self.threads.min(spare),
            ..self
        }
    }

    /// Tries to improve `greedy` for the admitted `reports`, returning
    /// the refined outcome when the pipeline's best certified schedule is
    /// strictly cheaper and the greedy outcome untouched otherwise —
    /// including on any solver error or contained rung panic. Refinement
    /// must never cost the neighborhood its day.
    pub(crate) fn refine(
        self,
        enki: &Enki,
        reports: &[Report],
        greedy: AllocationOutcome,
        seed: u64,
        recorder: Option<&Recorder>,
    ) -> AllocationOutcome {
        let solved = (|| {
            let preferences: Vec<Preference> =
                reports.iter().map(|r| r.preference).collect();
            let problem = AllocationProblem::from_config(preferences, enki.config())?;
            // Node-budget only: the virtual clock never advances, so the
            // exact deadline never fires and every stage timing the
            // pipeline records is exact arithmetic, not wall time.
            AnytimePipeline::new()
                .with_threads(self.threads)
                .with_exact_node_limit(self.exact_node_limit)
                .with_exact_time_limit(Duration::MAX)
                .with_restarts(self.restarts)
                .with_seed(seed)
                .with_clock(VirtualClock::new())
                .solve_traced(&problem, recorder)
        })();
        match solved {
            Ok(outcome) if outcome.solution.objective < greedy.planned_cost - 1e-12 => {
                if let Some(r) = recorder {
                    r.incr("center.pipeline.refined", 1);
                }
                let windows = &outcome.solution.windows;
                let assignments = reports
                    .iter()
                    .zip(windows)
                    .map(|(r, &window)| Assignment {
                        household: r.household,
                        window,
                    })
                    .collect();
                AllocationOutcome {
                    assignments,
                    planned_load: LoadProfile::from_windows(windows, enki.config().rate()),
                    planned_cost: outcome.solution.objective,
                    // Flexibility scores and placement order are derived
                    // from the reports (Eq. 4), not from the windows, so
                    // the greedy mechanism's values remain the truth.
                    predicted_flexibility: greedy.predicted_flexibility,
                    placement_order: greedy.placement_order,
                }
            }
            Ok(_) => {
                if let Some(r) = recorder {
                    r.incr("center.pipeline.kept_greedy", 1);
                }
                greedy
            }
            Err(_) => {
                if let Some(r) = recorder {
                    r.incr("center.pipeline.failed", 1);
                }
                greedy
            }
        }
    }
}

/// Everything the center recorded about one settled day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayRecord {
    /// Day number.
    pub day: u64,
    /// Households that reported in time and were allocated.
    pub participants: Vec<HouseholdId>,
    /// Roster members whose reports never arrived.
    pub missing_reports: Vec<HouseholdId>,
    /// Participants whose meter readings never arrived (settled as
    /// cooperative).
    pub missing_readings: Vec<HouseholdId>,
    /// Households whose reports were quarantined by admission control.
    /// Those with a standing profile participated through it; the rest
    /// were excluded (and so also appear in `missing_reports`).
    pub quarantined: Vec<HouseholdId>,
    /// Participants whose reports were admitted only after clamping.
    pub clamped: Vec<HouseholdId>,
    /// The settlement, when at least one household participated.
    pub settlement: Option<Settlement>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DayInProgress {
    day: u64,
    report_deadline: Tick,
    meter_deadline: Tick,
    /// Raw reports as received; validated only at the report deadline,
    /// then cleared (so checkpoints never persist unvalidated floats).
    /// Retransmissions overwrite idempotently (last write wins), so the
    /// duplicate-household quarantine applies to *batches*, not retries.
    reports: BTreeMap<HouseholdId, RawPreference>,
    /// Admitted reports and the allocation computed from them.
    allocation: Option<(Vec<Report>, AllocationOutcome)>,
    readings: BTreeMap<HouseholdId, Interval>,
    last_day_start: Tick,
    /// Admission decisions for this day, fixed at the report deadline.
    quarantined: Vec<HouseholdId>,
    clamped: Vec<HouseholdId>,
}

/// A durable snapshot of the center's protocol state, written at phase
/// boundaries and restored by [`CenterAgent::recover`].
///
/// Serializable, so a deployment can persist it across process restarts;
/// [`CenterAgent::restore`] rebuilds an agent from a deserialized
/// checkpoint plus the static configuration (mechanism, roster, plan).
///
/// # Commit contract
///
/// The center mutates protocol state freely between phase boundaries,
/// but a checkpoint is only ever taken at one of four commit points:
/// day start, allocation (report deadline), settlement (meter
/// deadline), and empty-day close. Each commit is a complete,
/// self-consistent snapshot — never a delta — and bumps
/// [`CenterAgent::commit_seq`], so a persistence layer can detect
/// "a phase boundary passed" and write the new snapshot *behind* a
/// write-ahead barrier before acknowledging the phase (log → flush →
/// apply). States between commits are volatile by design: a crash
/// rolls back to the previous boundary, and the protocol's idempotent
/// message handling absorbs the replay. Checkpoints never contain
/// unvalidated floats in `current` (raw reports are cleared at the
/// report deadline), but `last_raw` intentionally preserves each
/// household's last submission verbatim — NaN and all — which is why
/// durable serialization uses the bit-exact snapshot codec rather
/// than JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CenterCheckpoint {
    next_day: u64,
    rng_state: [u64; 4],
    records: Vec<DayRecord>,
    current: Option<DayInProgress>,
    /// The center's standing model of each household's demand: the last
    /// preference admission accepted (or clamped) from it. Used as the
    /// fallback when a household's report is quarantined.
    profiles: BTreeMap<HouseholdId, Preference>,
    /// The last *raw* preference each household ever submitted, kept
    /// across days so admission can flag bit-exact cross-day replays
    /// (a stuck or replaying reporter) without affecting verdicts.
    last_raw: BTreeMap<HouseholdId, RawPreference>,
}

impl CenterCheckpoint {
    /// The settled day records this checkpoint carries — what a
    /// post-recovery audit verifies against the mechanism invariants.
    #[must_use]
    pub fn records(&self) -> &[DayRecord] {
        &self.records
    }

    /// The day the restored center will run next.
    #[must_use]
    pub fn next_day(&self) -> u64 {
        self.next_day
    }
}

/// Ticks between repeated `DayStart` broadcasts to households that have
/// not reported yet.
const REBROADCAST_INTERVAL: Tick = 5;

/// The center agent.
#[derive(Debug)]
pub struct CenterAgent {
    enki: Enki,
    roster: Vec<HouseholdId>,
    plan: DayPlan,
    rng: StdRng,
    next_day: u64,
    current: Option<DayInProgress>,
    records: Vec<DayRecord>,
    profiles: BTreeMap<HouseholdId, Preference>,
    last_raw: BTreeMap<HouseholdId, RawPreference>,
    durable: CenterCheckpoint,
    /// Monotone count of phase-boundary commits over the agent's
    /// lifetime (not protocol state: survives crashes, not persisted).
    commit_seq: u64,
    down: bool,
    /// Optional telemetry: admission counters, phase timings, day
    /// outcomes. `None` records nothing and costs nothing.
    recorder: Option<Recorder>,
    /// Seed for deriving deterministic [`TraceContext`]s. Static
    /// configuration (like `plan`): not checkpointed, defaults to 0.
    trace_seed: u64,
    /// Optional allocation refinement through the solver pipeline.
    /// Static configuration (like `plan`), not protocol state: it is not
    /// checkpointed and must be re-supplied on [`CenterAgent::restore`].
    pipeline: Option<PipelineConfig>,
}

impl CenterAgent {
    /// Creates a center driving the given roster.
    ///
    /// # Panics
    ///
    /// Panics if the plan's deadlines are not strictly ordered.
    #[must_use]
    pub fn new(enki: Enki, roster: Vec<HouseholdId>, plan: DayPlan, seed: u64) -> Self {
        assert!(plan.is_valid(), "day plan deadlines must be ordered");
        let rng = StdRng::seed_from_u64(seed);
        let durable = CenterCheckpoint {
            next_day: 0,
            rng_state: rng.state(),
            records: Vec::new(),
            current: None,
            profiles: BTreeMap::new(),
            last_raw: BTreeMap::new(),
        };
        Self {
            enki,
            roster,
            plan,
            rng,
            next_day: 0,
            current: None,
            records: Vec::new(),
            profiles: BTreeMap::new(),
            last_raw: BTreeMap::new(),
            durable,
            commit_seq: 0,
            down: false,
            recorder: None,
            trace_seed: 0,
            pipeline: None,
        }
    }

    /// Enables allocation refinement: at each report deadline the greedy
    /// outcome is handed to the anytime solver pipeline and replaced when
    /// the pipeline finds a strictly cheaper schedule. See
    /// [`PipelineConfig`] for the determinism contract.
    #[must_use]
    pub fn with_pipeline(mut self, config: PipelineConfig) -> Self {
        self.pipeline = Some(config);
        self
    }

    /// The configured refinement pipeline, if any.
    #[must_use]
    pub fn pipeline(&self) -> Option<PipelineConfig> {
        self.pipeline
    }

    /// Rebuilds a center from a previously persisted checkpoint plus the
    /// static configuration. The result is up and resumes exactly where
    /// the checkpoint left off.
    ///
    /// # Panics
    ///
    /// Panics if the plan's deadlines are not strictly ordered.
    #[must_use]
    pub fn restore(
        enki: Enki,
        roster: Vec<HouseholdId>,
        plan: DayPlan,
        checkpoint: CenterCheckpoint,
    ) -> Self {
        assert!(plan.is_valid(), "day plan deadlines must be ordered");
        Self {
            enki,
            roster,
            plan,
            rng: StdRng::from_state(checkpoint.rng_state),
            next_day: checkpoint.next_day,
            current: checkpoint.current.clone(),
            records: checkpoint.records.clone(),
            profiles: checkpoint.profiles.clone(),
            last_raw: checkpoint.last_raw.clone(),
            durable: checkpoint,
            commit_seq: 0,
            down: false,
            recorder: None,
            trace_seed: 0,
            pipeline: None,
        }
    }

    /// Attaches a telemetry recorder. The center emits admission
    /// counters (`center.admission.*`), day-outcome counters
    /// (`center.day.*`), and allocate/settle latency histograms.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    /// Sets the seed from which the center derives deterministic
    /// [`TraceContext`]s — the same run seed the households use, so
    /// both ends of the wire derive identical causal ids.
    pub fn set_trace_seed(&mut self, seed: u64) {
        self.trace_seed = seed;
    }

    /// The mechanism this center runs (e.g. so an oracle can verify
    /// settlements against its configuration).
    #[must_use]
    pub fn enki(&self) -> &Enki {
        &self.enki
    }

    /// The center's network address.
    #[must_use]
    pub fn node_id(&self) -> NodeId {
        NodeId::Center
    }

    /// The households this center drives.
    #[must_use]
    pub fn roster(&self) -> &[HouseholdId] {
        &self.roster
    }

    /// Settled day records so far.
    #[must_use]
    pub fn records(&self) -> &[DayRecord] {
        &self.records
    }

    /// The last committed checkpoint, by reference — for inspection.
    /// Use [`CenterAgent::snapshot`] when the checkpoint must outlive
    /// the borrow (e.g. to hand it to a durability layer).
    #[must_use]
    pub fn checkpoint(&self) -> &CenterCheckpoint {
        &self.durable
    }

    /// An owned copy of the last committed checkpoint: the one
    /// snapshot API both persistence ([`crate::durable::Journal`])
    /// and recovery paths share, so "what gets written" and "what
    /// gets restored" can never drift apart.
    #[must_use]
    pub fn snapshot(&self) -> CenterCheckpoint {
        self.durable.clone()
    }

    /// How many phase-boundary commits have happened over this
    /// agent's lifetime. A persistence layer polls this after each
    /// tick: a change means the durable checkpoint is new and must be
    /// logged (see the [`CenterCheckpoint`] commit contract).
    #[must_use]
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq
    }

    /// Whether the center is currently crashed.
    #[must_use]
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Commits the current in-memory state as the durable checkpoint.
    /// Called at phase boundaries only.
    fn commit(&mut self) {
        self.durable = CenterCheckpoint {
            next_day: self.next_day,
            rng_state: self.rng.state(),
            records: self.records.clone(),
            current: self.current.clone(),
            profiles: self.profiles.clone(),
            last_raw: self.last_raw.clone(),
        };
        self.commit_seq += 1;
    }

    /// Simulates a process crash: all in-memory protocol state is wiped.
    /// The agent ignores messages and ticks until [`CenterAgent::recover`].
    pub fn crash(&mut self) {
        self.down = true;
        self.current = None;
        self.records = Vec::new();
        self.profiles = BTreeMap::new();
        self.last_raw = BTreeMap::new();
        self.next_day = 0;
        self.rng = StdRng::seed_from_u64(0);
    }

    /// Restarts after a crash, restoring protocol state — including the
    /// allocation RNG — from the last durable checkpoint.
    pub fn recover(&mut self) {
        let checkpoint = self.snapshot();
        self.recover_from(checkpoint);
    }

    /// Restarts from an externally recovered checkpoint (e.g. one
    /// replayed out of a write-ahead log), adopting it as the durable
    /// state. [`CenterAgent::recover`] is exactly this applied to the
    /// agent's own [`CenterAgent::snapshot`] — one restore path, two
    /// sources.
    pub fn recover_from(&mut self, checkpoint: CenterCheckpoint) {
        self.down = false;
        self.next_day = checkpoint.next_day;
        self.rng = StdRng::from_state(checkpoint.rng_state);
        self.records = checkpoint.records.clone();
        self.current = checkpoint.current.clone();
        self.profiles = checkpoint.profiles.clone();
        self.last_raw = checkpoint.last_raw.clone();
        self.durable = checkpoint;
    }

    /// The center's standing model of a household's demand: the last
    /// preference admission accepted (or clamped) from it, if any.
    #[must_use]
    pub fn standing_profile(&self, household: HouseholdId) -> Option<Preference> {
        self.profiles.get(&household).copied()
    }

    /// Substitutes the center's standing profile for a household whose
    /// fresh report was shed upstream (e.g. by an overloaded ingestion
    /// front end that classified it replaceable). The profile enters the
    /// day exactly as a submitted report would — idempotently, and only
    /// while reports for `day` are still open. A later real report from
    /// the household overwrites it (last write wins).
    ///
    /// Returns whether a profile was submitted: `false` when the center
    /// is down, the day does not match or already allocated, the
    /// household is unknown, or no standing profile exists.
    pub fn submit_standing(&mut self, day: u64, household: HouseholdId) -> bool {
        if self.down || !self.roster.contains(&household) {
            return false;
        }
        let Some(profile) = self.profiles.get(&household).copied() else {
            return false;
        };
        let Some(current) = self.current.as_mut() else {
            return false;
        };
        if day != current.day || current.allocation.is_some() {
            return false;
        }
        current.reports.entry(household).or_insert(profile.into());
        if let Some(r) = self.recorder.as_ref() {
            r.incr("center.admission.standing_submitted", 1);
        }
        true
    }

    /// Handles a delivered message.
    ///
    /// Handling is idempotent per day and phase: duplicate reports and
    /// readings overwrite identically, messages for a day other than the
    /// one in progress are ignored, and messages for a phase that already
    /// closed (reports after allocation, readings before it) are ignored.
    pub fn on_message(
        &mut self,
        _now: Tick,
        from: NodeId,
        message: Message,
        _outbox: &mut Vec<Envelope>,
    ) {
        if self.down {
            return;
        }
        let NodeId::Household(household) = from else {
            return;
        };
        if !self.roster.contains(&household) {
            return; // unknown sender: never let it into an allocation
        }
        let Some(current) = self.current.as_mut() else {
            return;
        };
        match message {
            Message::SubmitReport { day, preference }
                if day == current.day && current.allocation.is_none() => {
                    current.reports.insert(household, preference);
                }
            Message::MeterReading { day, window }
                if day == current.day && current.allocation.is_some() => {
                    current.readings.insert(household, window);
                }
            _ => {}
        }
    }

    /// Advances the protocol: starts days, allocates at the report
    /// deadline, settles at the meter deadline. Each transition commits
    /// a durable checkpoint before its messages leave the outbox queue.
    pub fn on_tick(&mut self, now: Tick, outbox: &mut Vec<Envelope>) {
        if self.down {
            return;
        }
        // Start a new day once its boundary has been reached. The
        // common case hits the boundary tick exactly; the `>=` form
        // also catches a center that comes back from crash recovery
        // just after a boundary — the missed day then starts late,
        // with its deadlines re-anchored to the present tick, instead
        // of being silently skipped.
        if self.current.is_none() && now / self.plan.day_length.max(1) >= self.next_day {
            let day = self.next_day;
            debug_assert!(
                self.records.iter().all(|r| r.day != day),
                "a recorded day must never restart"
            );
            self.next_day += 1;
            let report_deadline = now + self.plan.report_offset;
            let meter_deadline = now + self.plan.meter_offset;
            self.current = Some(DayInProgress {
                day,
                report_deadline,
                meter_deadline,
                reports: BTreeMap::new(),
                allocation: None,
                readings: BTreeMap::new(),
                last_day_start: now,
                quarantined: Vec::new(),
                clamped: Vec::new(),
            });
            self.commit();
            if let Some(r) = self.recorder.as_ref() {
                r.incr("center.day.started", 1);
            }
            let day_start_ctx = TraceContext::day_root(self.trace_seed, day).child("day_start");
            for &h in &self.roster {
                outbox.push(Envelope {
                    from: NodeId::Center,
                    to: NodeId::Household(h),
                    message: Message::DayStart {
                        day,
                        report_deadline,
                        meter_deadline,
                    },
                    trace: Some(day_start_ctx),
                });
            }
            return;
        }

        let Some(current) = self.current.as_mut() else {
            return;
        };

        // Re-broadcast DayStart to silent households while reports are
        // still open — the original broadcast may have been lost.
        if current.allocation.is_none()
            && now < current.report_deadline
            && now >= current.last_day_start + REBROADCAST_INTERVAL
        {
            current.last_day_start = now;
            let day_start_ctx =
                TraceContext::day_root(self.trace_seed, current.day).child("day_start");
            for &h in &self.roster {
                if !current.reports.contains_key(&h) {
                    outbox.push(Envelope {
                        from: NodeId::Center,
                        to: NodeId::Household(h),
                        message: Message::DayStart {
                            day: current.day,
                            report_deadline: current.report_deadline,
                            meter_deadline: current.meter_deadline,
                        },
                        trace: Some(day_start_ctx),
                    });
                }
            }
        }

        // Allocate once the report deadline passes. The raw batch runs
        // through admission control exactly once, here; the decisions are
        // fixed for the day and the raw floats never outlive this tick.
        if current.allocation.is_none() && now >= current.report_deadline {
            let allocate_started = self.recorder.as_ref().map(enki_telemetry::Recorder::now);
            let day = current.day;
            let raw: Vec<RawReport> = current
                .reports
                .iter()
                .map(|(&h, &p)| RawReport::new(h, p))
                .collect();
            current.reports.clear();
            // Admission sees each household's previous-day raw so exact
            // cross-day replays are flagged (counted below; verdicts are
            // unaffected — stable routines legitimately resend).
            let last_raw = &self.last_raw;
            let admission = self
                .enki
                .admit_with_history(&raw, |h| last_raw.get(&h).copied());
            for r in &raw {
                self.last_raw.insert(r.household, r.preference);
            }
            // Every admitted preference refreshes the center's standing
            // model of that household's demand — the quarantine fallback.
            for entry in &admission.entries {
                if let Some(p) = entry.admitted {
                    self.profiles.insert(entry.household, p);
                }
            }
            let profiles = &self.profiles;
            let reports = admission.admitted_with_fallback(|h| profiles.get(&h).copied());
            current.quarantined = admission.quarantined().map(|e| e.household).collect();
            current.clamped = admission.clamped().map(|e| e.household).collect();
            if let Some(r) = self.recorder.as_ref() {
                let quarantined = current.quarantined.len() as u64;
                let clamped = current.clamped.len() as u64;
                let accepted = (raw.len() as u64).saturating_sub(quarantined + clamped);
                r.incr("center.admission.accepted", accepted);
                r.incr("center.admission.clamped", clamped);
                r.incr("center.admission.quarantined", quarantined);
                r.incr(
                    "center.admission.cross_day_replay",
                    admission.cross_day_replays() as u64,
                );
                r.gauge("center.day.participants", reports.len() as f64);
                // One point span per admitted household at the `admit`
                // stage of its report's causal chain.
                for report in &reports {
                    let ctx = TraceContext::report_stage(
                        self.trace_seed,
                        day,
                        u64::from(report.household.index()),
                        stage::ADMIT,
                    );
                    drop(r.span_with_trace("center.admit", ctx));
                }
            }
            if reports.is_empty() {
                // Nobody reported, or nothing survived admission with a
                // usable fallback: close the day with an empty record.
                let record = DayRecord {
                    day,
                    participants: Vec::new(),
                    missing_reports: self.roster.clone(),
                    missing_readings: Vec::new(),
                    quarantined: std::mem::take(&mut current.quarantined),
                    clamped: std::mem::take(&mut current.clamped),
                    settlement: None,
                };
                self.records.push(record);
                self.current = None;
                self.commit();
                if let Some(r) = self.recorder.as_ref() {
                    r.incr("center.day.empty", 1);
                }
                return;
            }
            match self.enki.allocate(&reports, &mut self.rng) {
                Ok(outcome) => {
                    // Refinement draws its seed from the checkpointed RNG
                    // stream inside the same tick that commits the
                    // allocation, so a crash-recovered center replays the
                    // draw and re-derives the same refined windows.
                    let outcome = match self.pipeline {
                        Some(cfg) => {
                            let seed = self.rng.random();
                            // The solve hangs off the day root (shared by
                            // every household): push it as the ambient
                            // context so the pipeline's spans parent on it.
                            let solve_ctx =
                                TraceContext::day_root(self.trace_seed, day).child("solve");
                            if let Some(r) = self.recorder.as_ref() {
                                r.push_trace(solve_ctx);
                            }
                            let refined = cfg.refine(
                                &self.enki,
                                &reports,
                                outcome,
                                seed,
                                self.recorder.as_ref(),
                            );
                            if let Some(r) = self.recorder.as_ref() {
                                let _ = r.pop_trace();
                            }
                            refined
                        }
                        None => outcome,
                    };
                    let assignments = outcome.assignments.clone();
                    current.allocation = Some((reports, outcome));
                    self.commit();
                    if let Some(r) = self.recorder.as_ref() {
                        r.incr("center.day.allocated", 1);
                        if let Some(started) = allocate_started {
                            r.observe_duration(
                                "center.allocate_ns",
                                r.now().saturating_sub(started),
                            );
                        }
                    }
                    for assignment in &assignments {
                        outbox.push(Envelope {
                            from: NodeId::Center,
                            to: NodeId::Household(assignment.household),
                            message: Message::Allocation {
                                day,
                                window: assignment.window,
                            },
                            trace: Some(
                                TraceContext::day_root(self.trace_seed, day).child_salted(
                                    "allocation",
                                    u64::from(assignment.household.index()),
                                ),
                            ),
                        });
                    }
                }
                Err(_) => {
                    // Unreachable with admitted reports (non-empty and
                    // duplicate-free), but a solver failure must close
                    // the day, not take the center down.
                    let record = DayRecord {
                        day,
                        participants: Vec::new(),
                        missing_reports: self.roster.clone(),
                        missing_readings: Vec::new(),
                        quarantined: std::mem::take(&mut current.quarantined),
                        clamped: std::mem::take(&mut current.clamped),
                        settlement: None,
                    };
                    self.records.push(record);
                    self.current = None;
                    self.commit();
                    if let Some(r) = self.recorder.as_ref() {
                        r.incr("center.day.allocation_failed", 1);
                    }
                }
            }
            return;
        }

        // Settle once the meter deadline passes.
        if now >= current.meter_deadline {
            let settle_started = self.recorder.as_ref().map(enki_telemetry::Recorder::now);
            if let Some((reports, outcome)) = current.allocation.take() {
                let mut missing_readings = Vec::new();
                let consumption: Vec<Interval> = reports
                    .iter()
                    .zip(&outcome.assignments)
                    .map(|(r, a)| match current.readings.get(&r.household) {
                        Some(&w) => w,
                        None => {
                            missing_readings.push(r.household);
                            a.window // smart-meter fallback: cooperative
                        }
                    })
                    .collect();
                let day = current.day;
                let quarantined = std::mem::take(&mut current.quarantined);
                let clamped = std::mem::take(&mut current.clamped);
                let participants: Vec<HouseholdId> =
                    reports.iter().map(|r| r.household).collect();
                let missing_reports: Vec<HouseholdId> = self
                    .roster
                    .iter()
                    .copied()
                    .filter(|h| !participants.contains(h))
                    .collect();
                // A settlement failure (unreachable with inputs aligned
                // by construction) closes the day unbilled rather than
                // taking the center down.
                let settlement = self.enki.settle(&reports, &outcome, &consumption).ok();
                self.records.push(DayRecord {
                    day,
                    participants,
                    missing_reports,
                    missing_readings,
                    quarantined,
                    clamped,
                    settlement: settlement.clone(),
                });
                self.current = None;
                // The record and advanced state commit atomically with
                // billing: a crash after this point can never re-settle
                // the day or bill anyone twice.
                self.commit();
                if let Some(r) = self.recorder.as_ref() {
                    r.incr("center.day.settled", 1);
                    r.incr(
                        "center.readings.missing",
                        self.records
                            .last()
                            .map_or(0, |rec| rec.missing_readings.len() as u64),
                    );
                    if let Some(started) = settle_started {
                        r.observe_duration("center.settle_ns", r.now().saturating_sub(started));
                    }
                    // One point span per settled household at the
                    // `settle` stage of its report's causal chain.
                    if let Some(rec) = self.records.last() {
                        for &h in &rec.participants {
                            let ctx = TraceContext::report_stage(
                                self.trace_seed,
                                day,
                                u64::from(h.index()),
                                stage::SETTLE,
                            );
                            drop(r.span_with_trace("center.settle", ctx));
                        }
                    }
                }
                if let Some(settlement) = settlement {
                    if let Some(r) = self.recorder.as_ref() {
                        r.incr("center.bills.sent", settlement.entries.len() as u64);
                    }
                    for entry in &settlement.entries {
                        let ctx = TraceContext::report_stage(
                            self.trace_seed,
                            day,
                            u64::from(entry.household.index()),
                            stage::BILL,
                        );
                        if let Some(r) = self.recorder.as_ref() {
                            drop(r.span_with_trace("center.bill", ctx));
                        }
                        outbox.push(Envelope {
                            from: NodeId::Center,
                            to: NodeId::Household(entry.household),
                            message: Message::Bill {
                                day,
                                amount: entry.payment,
                            },
                            trace: Some(ctx),
                        });
                    }
                }
            } else {
                self.current = None;
                self.commit();
                if let Some(r) = self.recorder.as_ref() {
                    r.incr("center.day.unsettled", 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enki_core::config::EnkiConfig;

    fn center(n: u32) -> CenterAgent {
        CenterAgent::new(
            Enki::new(EnkiConfig::default()),
            (0..n).map(HouseholdId::new).collect(),
            DayPlan::default(),
            1,
        )
    }

    fn pref(b: f64, e: f64, v: f64) -> RawPreference {
        RawPreference::new(b, e, v)
    }

    #[test]
    fn day_plan_validation() {
        assert!(DayPlan::default().is_valid());
        assert!(!DayPlan {
            day_length: 10,
            report_offset: 8,
            meter_offset: 5,
        }
        .is_valid());
    }

    #[test]
    fn day_start_broadcasts_to_roster() {
        let mut c = center(3);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        assert_eq!(outbox.len(), 3);
        assert!(outbox
            .iter()
            .all(|e| matches!(e.message, Message::DayStart { day: 0, .. })));
    }

    #[test]
    fn reports_allocate_at_deadline() {
        let mut c = center(2);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        outbox.clear();
        for i in 0..2u32 {
            c.on_message(
                5,
                NodeId::Household(HouseholdId::new(i)),
                Message::SubmitReport {
                    day: 0,
                    preference: pref(18.0, 22.0, 2.0),
                },
                &mut outbox,
            );
        }
        c.on_tick(30, &mut outbox);
        let allocations: Vec<_> = outbox
            .iter()
            .filter(|e| matches!(e.message, Message::Allocation { .. }))
            .collect();
        assert_eq!(allocations.len(), 2);
    }

    #[test]
    fn pipeline_refinement_reaches_the_optimal_packing() {
        // Three 2-hour jobs sharing an 18–24 window pack disjointly; the
        // refined planned cost must hit that optimum and can never
        // exceed whatever the greedy mechanism planned.
        let drive = |pipeline: Option<PipelineConfig>| {
            let mut c = center(3);
            if let Some(cfg) = pipeline {
                c = c.with_pipeline(cfg);
            }
            let mut outbox = Vec::new();
            c.on_tick(0, &mut outbox);
            for i in 0..3u32 {
                c.on_message(
                    5,
                    NodeId::Household(HouseholdId::new(i)),
                    Message::SubmitReport {
                        day: 0,
                        preference: pref(18.0, 24.0, 2.0),
                    },
                    &mut outbox,
                );
            }
            c.on_tick(30, &mut outbox);
            let (_, outcome) = c.current.as_ref().unwrap().allocation.clone().unwrap();
            (outcome, c.enki.config().rate(), c.enki.config().sigma())
        };
        let (greedy, rate, sigma) = drive(None);
        let (refined, _, _) = drive(Some(PipelineConfig::default()));
        assert!(refined.planned_cost <= greedy.planned_cost + 1e-12);
        // Disjoint packing: 6 loaded hours at `rate` ⇒ κ = σ·6·rate².
        assert!(
            enki_core::float::approx_eq(refined.planned_cost, sigma * 6.0 * rate * rate),
            "refined cost {} is not the disjoint optimum",
            refined.planned_cost
        );
        assert_eq!(refined.assignments.len(), 3);
    }

    #[test]
    fn pipeline_refinement_replays_identically_after_crash_recovery() {
        // The refinement seed is drawn from the checkpointed RNG stream
        // inside the allocation tick, so a crash after allocation and a
        // recovery must settle the exact same records as an uncrashed run.
        let drive = |crash: bool| {
            let mut c = center(4).with_pipeline(PipelineConfig::default());
            let mut outbox = Vec::new();
            c.on_tick(0, &mut outbox);
            for i in 0..4u32 {
                c.on_message(
                    5,
                    NodeId::Household(HouseholdId::new(i)),
                    Message::SubmitReport {
                        day: 0,
                        preference: pref(17.0, 23.0, 2.0),
                    },
                    &mut outbox,
                );
            }
            c.on_tick(30, &mut outbox);
            if crash {
                c.crash();
                c.recover();
            }
            c.on_tick(70, &mut outbox);
            c.records().to_vec()
        };
        assert_eq!(drive(false), drive(true));
    }

    #[test]
    fn duplicate_reports_are_idempotent() {
        let mut c = center(1);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        for _ in 0..5 {
            c.on_message(
                3,
                NodeId::Household(HouseholdId::new(0)),
                Message::SubmitReport {
                    day: 0,
                    preference: pref(18.0, 22.0, 2.0),
                },
                &mut outbox,
            );
        }
        outbox.clear();
        c.on_tick(30, &mut outbox);
        assert_eq!(
            outbox
                .iter()
                .filter(|e| matches!(e.message, Message::Allocation { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn off_roster_senders_are_ignored() {
        let mut c = center(2);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        c.on_message(
            3,
            NodeId::Household(HouseholdId::new(99)),
            Message::SubmitReport {
                day: 0,
                preference: pref(18.0, 22.0, 2.0),
            },
            &mut outbox,
        );
        outbox.clear();
        c.on_tick(30, &mut outbox);
        c.on_tick(70, &mut outbox);
        let record = c.records().last().unwrap();
        assert!(record.settlement.is_none(), "no roster member reported");
    }

    #[test]
    fn missing_reading_settles_as_cooperative() {
        let mut c = center(2);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        for i in 0..2u32 {
            c.on_message(
                5,
                NodeId::Household(HouseholdId::new(i)),
                Message::SubmitReport {
                    day: 0,
                    preference: pref(18.0, 22.0, 2.0),
                },
                &mut outbox,
            );
        }
        c.on_tick(30, &mut outbox);
        // Only household 0 sends its reading.
        let alloc0 = outbox
            .iter()
            .find_map(|e| match (e.to, e.message) {
                (NodeId::Household(h), Message::Allocation { window, .. })
                    if h == HouseholdId::new(0) =>
                {
                    Some(window)
                }
                _ => None,
            })
            .unwrap();
        c.on_message(
            40,
            NodeId::Household(HouseholdId::new(0)),
            Message::MeterReading {
                day: 0,
                window: alloc0,
            },
            &mut outbox,
        );
        outbox.clear();
        c.on_tick(70, &mut outbox);
        let record = c.records().last().unwrap();
        assert_eq!(record.missing_readings, vec![HouseholdId::new(1)]);
        let st = record.settlement.as_ref().unwrap();
        assert!(st.entries.iter().all(|e| !e.defected));
        assert!(st.center_utility >= 0.0);
    }

    #[test]
    fn silent_household_is_excluded() {
        let mut c = center(2);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        c.on_message(
            5,
            NodeId::Household(HouseholdId::new(0)),
            Message::SubmitReport {
                day: 0,
                preference: pref(18.0, 22.0, 2.0),
            },
            &mut outbox,
        );
        c.on_tick(30, &mut outbox);
        c.on_tick(70, &mut outbox);
        let record = c.records().last().unwrap();
        assert_eq!(record.participants, vec![HouseholdId::new(0)]);
        assert_eq!(record.missing_reports, vec![HouseholdId::new(1)]);
    }

    #[test]
    fn empty_day_closes_cleanly() {
        let mut c = center(2);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        c.on_tick(30, &mut outbox);
        let record = c.records().last().unwrap();
        assert!(record.settlement.is_none());
        assert_eq!(record.missing_reports.len(), 2);
        // The next day still starts.
        outbox.clear();
        c.on_tick(100, &mut outbox);
        assert!(outbox
            .iter()
            .all(|e| matches!(e.message, Message::DayStart { day: 1, .. })));
    }

    #[test]
    fn late_reports_are_ignored_after_allocation() {
        let mut c = center(2);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        c.on_message(
            5,
            NodeId::Household(HouseholdId::new(0)),
            Message::SubmitReport {
                day: 0,
                preference: pref(18.0, 22.0, 2.0),
            },
            &mut outbox,
        );
        c.on_tick(30, &mut outbox); // allocates with household 0 only
        c.on_message(
            31,
            NodeId::Household(HouseholdId::new(1)),
            Message::SubmitReport {
                day: 0,
                preference: pref(18.0, 22.0, 2.0),
            },
            &mut outbox,
        );
        c.on_tick(70, &mut outbox);
        let record = c.records().last().unwrap();
        assert_eq!(record.participants, vec![HouseholdId::new(0)]);
    }

    #[test]
    fn crash_wipes_and_recovery_restores_phase_state() {
        let mut c = center(2);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        for i in 0..2u32 {
            c.on_message(
                5,
                NodeId::Household(HouseholdId::new(i)),
                Message::SubmitReport {
                    day: 0,
                    preference: pref(18.0, 22.0, 2.0),
                },
                &mut outbox,
            );
        }
        c.on_tick(30, &mut outbox); // allocation phase boundary: committed
        c.crash();
        assert!(c.is_down());
        // Down: messages and ticks are inert.
        c.on_message(
            35,
            NodeId::Household(HouseholdId::new(0)),
            Message::MeterReading {
                day: 0,
                window: Interval::new(18, 20).unwrap(),
            },
            &mut outbox,
        );
        c.on_tick(40, &mut outbox);
        c.recover();
        assert!(!c.is_down());
        outbox.clear();
        c.on_tick(70, &mut outbox);
        let record = c.records().last().unwrap();
        assert_eq!(record.day, 0);
        assert_eq!(record.participants.len(), 2, "allocation survived the crash");
        // The reading sent while down was lost; both settle cooperative.
        assert_eq!(record.missing_readings.len(), 2);
        assert_eq!(
            outbox
                .iter()
                .filter(|e| matches!(e.message, Message::Bill { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn recovery_after_settlement_never_duplicates_records_or_bills() {
        let mut c = center(1);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        c.on_message(
            5,
            NodeId::Household(HouseholdId::new(0)),
            Message::SubmitReport {
                day: 0,
                preference: pref(18.0, 22.0, 2.0),
            },
            &mut outbox,
        );
        c.on_tick(30, &mut outbox);
        c.on_tick(70, &mut outbox); // settles and commits atomically
        assert_eq!(c.records().len(), 1);
        c.crash();
        c.recover();
        outbox.clear();
        for t in 71..100 {
            c.on_tick(t, &mut outbox);
        }
        assert_eq!(c.records().len(), 1, "no duplicate record after recovery");
        assert!(
            !outbox.iter().any(|e| matches!(e.message, Message::Bill { .. })),
            "no re-billing after recovery"
        );
        // The next day starts normally.
        c.on_tick(100, &mut outbox);
        assert!(outbox
            .iter()
            .any(|e| matches!(e.message, Message::DayStart { day: 1, .. })));
    }

    #[test]
    fn malformed_report_is_quarantined_and_recorded() {
        let mut c = center(2);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        c.on_message(
            5,
            NodeId::Household(HouseholdId::new(0)),
            Message::SubmitReport {
                day: 0,
                preference: pref(18.0, 22.0, 2.0),
            },
            &mut outbox,
        );
        c.on_message(
            5,
            NodeId::Household(HouseholdId::new(1)),
            Message::SubmitReport {
                day: 0,
                preference: pref(f64::NAN, 22.0, 2.0),
            },
            &mut outbox,
        );
        c.on_tick(30, &mut outbox);
        c.on_tick(70, &mut outbox);
        let record = c.records().last().unwrap();
        // No standing profile yet, so the quarantined household sits out.
        assert_eq!(record.participants, vec![HouseholdId::new(0)]);
        assert_eq!(record.quarantined, vec![HouseholdId::new(1)]);
        assert!(record.missing_reports.contains(&HouseholdId::new(1)));
        let st = record.settlement.as_ref().unwrap();
        assert!(st.entries.iter().all(|e| e.household == HouseholdId::new(0)));
    }

    #[test]
    fn quarantined_household_falls_back_to_its_standing_profile() {
        let mut c = center(2);
        let mut outbox = Vec::new();
        // Day 0: both report cleanly, establishing standing profiles.
        c.on_tick(0, &mut outbox);
        for i in 0..2u32 {
            c.on_message(
                5,
                NodeId::Household(HouseholdId::new(i)),
                Message::SubmitReport {
                    day: 0,
                    preference: pref(18.0, 22.0, 2.0),
                },
                &mut outbox,
            );
        }
        c.on_tick(30, &mut outbox);
        c.on_tick(70, &mut outbox);
        // Day 1: household 1's ECC goes haywire.
        c.on_tick(100, &mut outbox);
        c.on_message(
            105,
            NodeId::Household(HouseholdId::new(0)),
            Message::SubmitReport {
                day: 1,
                preference: pref(16.0, 20.0, 2.0),
            },
            &mut outbox,
        );
        c.on_message(
            105,
            NodeId::Household(HouseholdId::new(1)),
            Message::SubmitReport {
                day: 1,
                preference: pref(22.0, 18.0, f64::INFINITY),
            },
            &mut outbox,
        );
        c.on_tick(130, &mut outbox);
        c.on_tick(170, &mut outbox);
        let record = c.records().last().unwrap();
        assert_eq!(record.day, 1);
        // Household 1 still participates, through its day-0 profile.
        assert_eq!(
            record.participants,
            vec![HouseholdId::new(0), HouseholdId::new(1)]
        );
        assert_eq!(record.quarantined, vec![HouseholdId::new(1)]);
        assert!(record.missing_reports.is_empty());
        let st = record.settlement.as_ref().unwrap();
        assert_eq!(st.entries.len(), 2);
        assert!(st.center_utility >= -1e-9);
    }

    #[test]
    fn clamped_report_participates_and_is_recorded() {
        let mut c = center(1);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        c.on_message(
            5,
            NodeId::Household(HouseholdId::new(0)),
            Message::SubmitReport {
                day: 0,
                // Out of horizon and fractional: admissible after clamping.
                preference: pref(17.5, 30.0, 2.0),
            },
            &mut outbox,
        );
        c.on_tick(30, &mut outbox);
        c.on_tick(70, &mut outbox);
        let record = c.records().last().unwrap();
        assert_eq!(record.participants, vec![HouseholdId::new(0)]);
        assert_eq!(record.clamped, vec![HouseholdId::new(0)]);
        assert!(record.quarantined.is_empty());
        assert!(record.settlement.is_some());
    }

    #[test]
    fn all_quarantined_day_closes_without_settlement() {
        let mut c = center(2);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        for i in 0..2u32 {
            c.on_message(
                5,
                NodeId::Household(HouseholdId::new(i)),
                Message::SubmitReport {
                    day: 0,
                    preference: pref(f64::NAN, f64::NAN, f64::NAN),
                },
                &mut outbox,
            );
        }
        outbox.clear();
        c.on_tick(30, &mut outbox);
        let record = c.records().last().unwrap();
        assert!(record.settlement.is_none());
        assert_eq!(record.quarantined.len(), 2);
        assert_eq!(record.missing_reports.len(), 2);
        assert!(outbox.is_empty(), "nothing to allocate");
        // The next day starts normally.
        c.on_tick(100, &mut outbox);
        assert!(outbox
            .iter()
            .any(|e| matches!(e.message, Message::DayStart { day: 1, .. })));
    }

    #[test]
    fn standing_profiles_survive_crash_and_recovery() {
        let mut c = center(1);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        c.on_message(
            5,
            NodeId::Household(HouseholdId::new(0)),
            Message::SubmitReport {
                day: 0,
                preference: pref(18.0, 22.0, 2.0),
            },
            &mut outbox,
        );
        c.on_tick(30, &mut outbox);
        c.on_tick(70, &mut outbox);
        c.crash();
        c.recover();
        // Day 1: garbage report; the recovered profile must cover it.
        c.on_tick(100, &mut outbox);
        c.on_message(
            105,
            NodeId::Household(HouseholdId::new(0)),
            Message::SubmitReport {
                day: 1,
                preference: pref(-3.0, 2.0, -1.0),
            },
            &mut outbox,
        );
        c.on_tick(130, &mut outbox);
        c.on_tick(170, &mut outbox);
        let record = c.records().last().unwrap();
        assert_eq!(record.participants, vec![HouseholdId::new(0)]);
        assert_eq!(record.quarantined, vec![HouseholdId::new(0)]);
        assert!(record.settlement.is_some());
    }

    #[test]
    fn checkpoint_roundtrips_through_serde() {
        let mut c = center(2);
        let mut outbox = Vec::new();
        c.on_tick(0, &mut outbox);
        for i in 0..2u32 {
            c.on_message(
                5,
                NodeId::Household(HouseholdId::new(i)),
                Message::SubmitReport {
                    day: 0,
                    preference: pref(18.0, 22.0, 2.0),
                },
                &mut outbox,
            );
        }
        c.on_tick(30, &mut outbox); // checkpoint now holds the allocation
        let json = serde_json::to_string(c.checkpoint()).unwrap();
        let back: CenterCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, c.checkpoint());

        // A center restored from the serialized checkpoint finishes the
        // day exactly like the original.
        let mut restored = CenterAgent::restore(
            Enki::new(EnkiConfig::default()),
            vec![HouseholdId::new(0), HouseholdId::new(1)],
            DayPlan::default(),
            back,
        );
        let mut a = Vec::new();
        let mut b = Vec::new();
        c.on_tick(70, &mut a);
        restored.on_tick(70, &mut b);
        assert_eq!(c.records(), restored.records());
        assert_eq!(a, b);
    }
}
