//! The household-side agent: an ECC unit.
//!
//! Per the paper (§I), an ECC "learns each household's daily power
//! consumption pattern through machine learning techniques; decides; and
//! reports the household's demand for the next day". This agent does all
//! three over the simulated network: it reports when a day starts
//! (re-sending until the allocation arrives — the network may drop
//! messages), consumes within its true preference as close to the
//! allocation as possible, feeds the realized consumption back into its
//! [`EccPredictor`], and submits the meter reading until billed.
//!
//! Retries use bounded exponential backoff with deterministic jitter
//! (see [`Backoff`]): the first retry fires after the base interval,
//! subsequent delays double up to a cap, and a small per-attempt jitter
//! decorrelates the retry trains of different households so a lossy
//! link is not hammered in lockstep. Message handling is idempotent —
//! duplicated `DayStart`, `Allocation`, or `Bill` envelopes (the fault
//! layer may replay any of them) never reset day state, double-consume,
//! or double-record a bill.

use enki_core::household::{HouseholdId, Preference};
use enki_core::time::Interval;
use enki_core::validation::RawPreference;
use enki_sim::behavior::{consume, ReportStrategy};
use enki_sim::ecc::EccPredictor;
use enki_sim::neighborhood::TruthSource;
use enki_sim::profile::UsageProfile;
use enki_telemetry::trace::{stage, TraceContext};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::message::{Envelope, Message, NodeId, Tick};

/// How the agent chooses what to report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReportSource {
    /// Report straight from the behaviour strategy (known preferences).
    Strategy,
    /// Let the ECC predictor generate the report once it has history,
    /// widening the predicted window by the given flexibility margin;
    /// falls back to the strategy until then.
    Ecc {
        /// Hours added on each side of the predicted window.
        margin: u8,
    },
}

// One retry contract for the whole system: `Backoff` now lives in the
// serve crate (ingestion producers pace themselves with the same
// exponential-plus-jitter schedule), re-exported here so
// `enki_agents::household::Backoff` keeps working.
pub use enki_serve::backoff::Backoff;

/// One household's view of the current day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
struct DayState {
    day: u64,
    report_deadline: Tick,
    meter_deadline: Tick,
    /// Tick the next report (re-)send is due; 0 means immediately.
    next_report_at: Tick,
    report_attempts: u32,
    allocation: Option<Interval>,
    consumed: Option<Interval>,
    /// Tick the next meter-reading (re-)send is due; 0 means immediately.
    next_reading_at: Tick,
    reading_attempts: u32,
    bill: Option<f64>,
}

/// A household ECC agent.
#[derive(Debug, Clone, PartialEq)]
pub struct HouseholdAgent {
    id: HouseholdId,
    profile: UsageProfile,
    truth_source: TruthSource,
    strategy: ReportStrategy,
    report_source: ReportSource,
    ecc: EccPredictor,
    backoff: Backoff,
    allocation_grace: Tick,
    rng: StdRng,
    state: Option<DayState>,
    bills: Vec<(u64, f64)>,
    /// When set, reports go out as this raw payload instead of the
    /// validated preference — modelling a compromised or buggy ECC. The
    /// appliance still consumes according to the household's truth.
    raw_report_override: Option<RawPreference>,
    /// Namespace for the causal contexts stamped onto outgoing
    /// envelopes; runtimes set it to their run seed so both ends of the
    /// wire derive identical ids.
    trace_seed: u64,
}

impl HouseholdAgent {
    /// Creates an agent. Retry jitter is seeded from the household id, so
    /// a roster of agents is deterministic as a whole.
    #[must_use]
    pub fn new(
        id: HouseholdId,
        profile: UsageProfile,
        truth_source: TruthSource,
        strategy: ReportStrategy,
        report_source: ReportSource,
    ) -> Self {
        Self {
            id,
            profile,
            truth_source,
            strategy,
            report_source,
            ecc: EccPredictor::new(0.3).expect("0.3 is a valid smoothing factor"),
            backoff: Backoff::default(),
            allocation_grace: 10,
            rng: StdRng::seed_from_u64(0xECC0 ^ u64::from(id.index())),
            state: None,
            bills: Vec::new(),
            raw_report_override: None,
            trace_seed: 0,
        }
    }

    /// Sets the namespace seed for outgoing causal trace contexts.
    /// Runtimes call this with their run seed so every agent derives
    /// the same ids for the same report journey.
    pub fn set_trace_seed(&mut self, seed: u64) {
        self.trace_seed = seed;
    }

    /// Makes the agent report the given raw payload every day instead of
    /// its real preference — fault injection for a compromised or buggy
    /// ECC. The appliance still consumes according to the household's
    /// truth, so the center's admission layer (not this agent) decides
    /// what the malformed report means.
    #[must_use]
    pub fn with_raw_report_override(mut self, raw: RawPreference) -> Self {
        self.raw_report_override = Some(raw);
        self
    }

    /// Sets or clears the raw-report override mid-run — compromising (or
    /// repairing) a running ECC. See
    /// [`with_raw_report_override`](Self::with_raw_report_override).
    pub fn set_raw_report_override(&mut self, raw: Option<RawPreference>) {
        self.raw_report_override = raw;
    }

    /// Overrides the retry backoff base (ticks before the first re-send
    /// while unanswered); the exponential cap is set to twice the base.
    #[must_use]
    pub fn with_retry_interval(mut self, retry_interval: Tick) -> Self {
        let base = retry_interval.max(1);
        self.backoff = Backoff::new(base, base.saturating_mul(2));
        self
    }

    /// Overrides the full retry backoff schedule.
    #[must_use]
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Ticks past the report deadline the agent waits for a late
    /// allocation before consuming without one (network latency slack).
    #[must_use]
    pub fn with_allocation_grace(mut self, grace: Tick) -> Self {
        self.allocation_grace = grace;
        self
    }

    /// The agent's network address.
    #[must_use]
    pub fn node_id(&self) -> NodeId {
        NodeId::Household(self.id)
    }

    /// The household id.
    #[must_use]
    pub fn id(&self) -> HouseholdId {
        self.id
    }

    /// Bills received so far, as `(day, amount)` pairs.
    #[must_use]
    pub fn bills(&self) -> &[(u64, f64)] {
        &self.bills
    }

    /// The ECC predictor (e.g. to inspect the learned pattern).
    #[must_use]
    pub fn ecc(&self) -> &EccPredictor {
        &self.ecc
    }

    /// The household's true preference for the day.
    #[must_use]
    pub fn truth(&self) -> Preference {
        match self.truth_source {
            TruthSource::Wide => self.profile.wide(),
            TruthSource::Narrow => self.profile.narrow(),
        }
    }

    fn report_preference(&self) -> Preference {
        match self.report_source {
            ReportSource::Strategy => self.strategy.report(&self.profile),
            ReportSource::Ecc { margin } => self
                .ecc
                .predict(self.truth().duration(), margin)
                .unwrap_or_else(|| self.strategy.report(&self.profile)),
        }
    }

    fn send_report(&mut self, now: Tick, outbox: &mut Vec<Envelope>) {
        let Some(state) = self.state else {
            return;
        };
        let preference = self
            .raw_report_override
            .unwrap_or_else(|| self.report_preference().into());
        outbox.push(Envelope {
            from: NodeId::Household(self.id),
            to: NodeId::Center,
            message: Message::SubmitReport {
                day: state.day,
                preference,
            },
            trace: Some(TraceContext::report_stage(
                self.trace_seed,
                state.day,
                u64::from(self.id.index()),
                stage::REPORT,
            )),
        });
        let delay = self.backoff.delay(state.report_attempts, &mut self.rng);
        if let Some(state) = self.state.as_mut() {
            state.report_attempts += 1;
            state.next_report_at = now + delay;
        }
    }

    /// Handles a delivered message.
    pub fn on_message(
        &mut self,
        now: Tick,
        from: NodeId,
        message: Message,
        outbox: &mut Vec<Envelope>,
    ) {
        if from != NodeId::Center {
            return; // households only talk to the center
        }
        match message {
            Message::DayStart {
                day,
                report_deadline,
                meter_deadline,
            } => {
                // Idempotent: a duplicated or re-broadcast DayStart for
                // the day already in progress (or an older, reordered
                // one) must not reset state — that would discard the
                // allocation and double-observe consumption.
                if self.state.is_some_and(|s| day <= s.day) {
                    return;
                }
                self.state = Some(DayState {
                    day,
                    report_deadline,
                    meter_deadline,
                    ..DayState::default()
                });
                self.send_report(now, outbox);
            }
            Message::Allocation { day, window } => {
                if let Some(state) = self.state.as_mut() {
                    if state.day == day {
                        state.allocation = Some(window);
                    }
                }
            }
            Message::Bill { day, amount } => {
                if let Some(state) = self.state.as_mut() {
                    if state.day == day && state.bill.is_none() {
                        state.bill = Some(amount);
                        self.bills.push((day, amount));
                    }
                }
            }
            Message::SubmitReport { .. } | Message::MeterReading { .. } => {}
        }
    }

    /// Advances local time: retries the report (with backoff) while
    /// unallocated, consumes once the reporting phase ends, and retries
    /// the meter reading until billed.
    pub fn on_tick(&mut self, now: Tick, outbox: &mut Vec<Envelope>) {
        let Some(state) = self.state else {
            return;
        };
        // Retry the report while no allocation has arrived.
        if state.allocation.is_none() && now < state.report_deadline {
            if now >= state.next_report_at {
                self.send_report(now, outbox);
            }
            return;
        }
        // Consume once the allocation is in hand, or once the grace
        // period after the report deadline expires without one.
        let may_consume = state.allocation.is_some()
            || now >= state.report_deadline + self.allocation_grace;
        if state.consumed.is_none() && now >= state.report_deadline && may_consume {
            let truth = self.truth();
            let window = match state.allocation {
                Some(s) => consume(&truth, s),
                // No allocation ever arrived: consume at the preferred
                // start, like a household without a mechanism.
                None => truth
                    .window_at_deferment(0)
                    .expect("deferment 0 is always feasible"),
            };
            self.ecc.observe(window);
            if let Some(state) = self.state.as_mut() {
                state.consumed = Some(window);
            }
        }
        // Send / retry the meter reading until the bill arrives.
        let Some(state) = self.state else { return };
        if let Some(window) = state.consumed {
            if state.bill.is_none() && now < state.meter_deadline && now >= state.next_reading_at
            {
                outbox.push(Envelope {
                    from: NodeId::Household(self.id),
                    to: NodeId::Center,
                    message: Message::MeterReading {
                        day: state.day,
                        window,
                    },
                    // Meter readings feed settlement but are not one of
                    // the canonical report stages: they hang off the
                    // day root on their own labelled branch.
                    trace: Some(
                        TraceContext::day_root(self.trace_seed, state.day)
                            .child_salted("meter", u64::from(self.id.index())),
                    ),
                });
                let delay = self.backoff.delay(state.reading_attempts, &mut self.rng);
                if let Some(state) = self.state.as_mut() {
                    state.reading_attempts += 1;
                    state.next_reading_at = now + delay;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> UsageProfile {
        UsageProfile::new(
            Preference::new(18, 20, 2).unwrap(),
            Preference::new(16, 24, 2).unwrap(),
            5.0,
        )
        .unwrap()
    }

    fn agent() -> HouseholdAgent {
        HouseholdAgent::new(
            HouseholdId::new(0),
            profile(),
            TruthSource::Narrow,
            ReportStrategy::TruthfulNarrow,
            ReportSource::Strategy,
        )
        .with_retry_interval(3)
    }

    fn day_start(day: u64) -> Message {
        Message::DayStart {
            day,
            report_deadline: 30,
            meter_deadline: 70,
        }
    }

    #[test]
    fn day_start_triggers_a_report() {
        let mut a = agent();
        let mut outbox = Vec::new();
        a.on_message(0, NodeId::Center, day_start(1), &mut outbox);
        assert_eq!(outbox.len(), 1);
        assert!(matches!(
            outbox[0].message,
            Message::SubmitReport { day: 1, .. }
        ));
    }

    #[test]
    fn report_is_retried_until_allocation_arrives() {
        let mut a = agent();
        let mut outbox = Vec::new();
        a.on_message(0, NodeId::Center, day_start(1), &mut outbox);
        outbox.clear();
        a.on_tick(1, &mut outbox);
        assert!(outbox.is_empty(), "retry waits for the interval");
        a.on_tick(3, &mut outbox);
        assert_eq!(outbox.len(), 1, "first retry fires after the base interval");
        // Allocation stops the retries.
        a.on_message(
            4,
            NodeId::Center,
            Message::Allocation {
                day: 1,
                window: Interval::new(18, 20).unwrap(),
            },
            &mut outbox,
        );
        outbox.clear();
        a.on_tick(10, &mut outbox);
        assert!(outbox.is_empty());
    }

    #[test]
    fn retry_delays_grow_exponentially_to_the_cap() {
        let mut a = HouseholdAgent::new(
            HouseholdId::new(0),
            profile(),
            TruthSource::Narrow,
            ReportStrategy::TruthfulNarrow,
            ReportSource::Strategy,
        )
        .with_backoff(Backoff::new(2, 8));
        let mut outbox = Vec::new();
        a.on_message(
            0,
            NodeId::Center,
            Message::DayStart {
                day: 1,
                report_deadline: 200,
                meter_deadline: 300,
            },
            &mut outbox,
        );
        assert_eq!(outbox.len(), 1, "initial report sent with the DayStart");
        outbox.clear();
        let mut sends = vec![0]; // the initial send, at tick 0
        for t in 1..100 {
            a.on_tick(t, &mut outbox);
            if !outbox.is_empty() {
                sends.push(t);
                outbox.clear();
            }
        }
        assert!(sends.len() >= 5, "retries keep firing: {sends:?}");
        let gaps: Vec<Tick> = sends.windows(2).map(|w| w[1] - w[0]).collect();
        // First gap is the base; gaps grow but never exceed cap + jitter.
        assert_eq!(gaps[0], 2);
        assert!(gaps[1] >= 4, "second delay doubles: {gaps:?}");
        assert!(
            gaps.iter().all(|&g| g <= 8 + 3),
            "delays stay bounded by cap + jitter: {gaps:?}"
        );
        // The tail is capped: late gaps stop growing.
        let tail = &gaps[3..];
        assert!(
            tail.iter().all(|&g| (8..=11).contains(&g)),
            "tail delays sit at the cap: {gaps:?}"
        );
    }

    #[test]
    fn duplicate_day_start_does_not_reset_state() {
        let mut a = agent();
        let mut outbox = Vec::new();
        a.on_message(0, NodeId::Center, day_start(1), &mut outbox);
        a.on_message(
            2,
            NodeId::Center,
            Message::Allocation {
                day: 1,
                window: Interval::new(18, 20).unwrap(),
            },
            &mut outbox,
        );
        outbox.clear();
        // A duplicated / re-broadcast DayStart for the same day arrives.
        a.on_message(3, NodeId::Center, day_start(1), &mut outbox);
        assert!(outbox.is_empty(), "no re-report for a replayed DayStart");
        a.on_tick(30, &mut outbox);
        assert_eq!(a.ecc().days_observed(), 1, "consumption observed once");
        // An older day's DayStart (reordered) is also ignored.
        a.on_message(31, NodeId::Center, day_start(0), &mut outbox);
        a.on_tick(32, &mut outbox);
        assert_eq!(a.ecc().days_observed(), 1);
    }

    #[test]
    fn consumption_follows_compatible_allocation() {
        let mut a = agent();
        let mut outbox = Vec::new();
        a.on_message(0, NodeId::Center, day_start(1), &mut outbox);
        a.on_message(
            2,
            NodeId::Center,
            Message::Allocation {
                day: 1,
                window: Interval::new(18, 20).unwrap(),
            },
            &mut outbox,
        );
        outbox.clear();
        a.on_tick(30, &mut outbox); // past the report deadline: consume
        assert_eq!(outbox.len(), 1);
        match outbox[0].message {
            Message::MeterReading { day: 1, window } => {
                assert_eq!(window, Interval::new(18, 20).unwrap());
            }
            ref m => panic!("expected a meter reading, got {m:?}"),
        }
        assert_eq!(a.ecc().days_observed(), 1);
    }

    #[test]
    fn missing_allocation_falls_back_to_preferred_start() {
        let mut a = agent();
        let mut outbox = Vec::new();
        a.on_message(0, NodeId::Center, day_start(1), &mut outbox);
        outbox.clear();
        // Never allocated: waits out the grace period, then falls back.
        a.on_tick(31, &mut outbox);
        assert!(outbox.is_empty(), "still within the allocation grace");
        a.on_tick(41, &mut outbox);
        match outbox.last().map(|e| e.message) {
            Some(Message::MeterReading { window, .. }) => {
                assert_eq!(window, Interval::new(18, 20).unwrap());
            }
            other => panic!("expected a meter reading, got {other:?}"),
        }
    }

    #[test]
    fn bill_is_recorded_once() {
        let mut a = agent();
        let mut outbox = Vec::new();
        a.on_message(0, NodeId::Center, day_start(1), &mut outbox);
        a.on_message(40, NodeId::Center, Message::Bill { day: 1, amount: 3.5 }, &mut outbox);
        a.on_message(41, NodeId::Center, Message::Bill { day: 1, amount: 3.5 }, &mut outbox);
        assert_eq!(a.bills(), &[(1, 3.5)]);
    }

    #[test]
    fn stale_messages_are_ignored() {
        let mut a = agent();
        let mut outbox = Vec::new();
        a.on_message(0, NodeId::Center, day_start(2), &mut outbox);
        a.on_message(
            1,
            NodeId::Center,
            Message::Allocation {
                day: 1, // previous day
                window: Interval::new(10, 12).unwrap(),
            },
            &mut outbox,
        );
        a.on_message(2, NodeId::Center, Message::Bill { day: 1, amount: 9.0 }, &mut outbox);
        assert!(a.bills().is_empty());
    }

    #[test]
    fn ecc_report_source_kicks_in_with_history() {
        let mut a = HouseholdAgent::new(
            HouseholdId::new(0),
            profile(),
            TruthSource::Narrow,
            ReportStrategy::TruthfulNarrow,
            ReportSource::Ecc { margin: 2 },
        );
        let mut outbox = Vec::new();
        // Day 1: no history, falls back to the strategy (narrow truth).
        a.on_message(0, NodeId::Center, day_start(1), &mut outbox);
        match outbox[0].message {
            Message::SubmitReport { preference, .. } => {
                assert_eq!(
                    preference,
                    RawPreference::from(Preference::new(18, 20, 2).unwrap())
                );
            }
            ref m => panic!("unexpected {m:?}"),
        }
        a.on_message(
            1,
            NodeId::Center,
            Message::Allocation {
                day: 1,
                window: Interval::new(18, 20).unwrap(),
            },
            &mut outbox,
        );
        a.on_tick(30, &mut outbox);
        outbox.clear();
        // Day 2: the ECC has one observation, so the report widens.
        a.on_message(100, NodeId::Center, day_start(2), &mut outbox);
        match outbox[0].message {
            Message::SubmitReport { preference, .. } => {
                assert_eq!((preference.begin, preference.end), (16.0, 22.0));
            }
            ref m => panic!("unexpected {m:?}"),
        }
    }

    #[test]
    fn raw_report_override_goes_out_verbatim() {
        let mut a = agent().with_raw_report_override(RawPreference::new(f64::NAN, 30.0, -1.0));
        let mut outbox = Vec::new();
        a.on_message(0, NodeId::Center, day_start(1), &mut outbox);
        match outbox[0].message {
            Message::SubmitReport { preference, .. } => {
                assert!(preference.begin.is_nan());
                assert_eq!(preference.end, 30.0);
            }
            ref m => panic!("unexpected {m:?}"),
        }
    }
}
